//! JIT compilation of element plans (the policy half of `adn-jit`).
//!
//! The mechanism crate (`adn-jit`) knows nothing about messages or state
//! tables: it executes a linear op IR with two escape thunks. This module
//! owns everything element-specific:
//!
//! * **Type inference** ([`STy`]): a sound static type for each plan
//!   expression. `None` means "boxed or unknown" and forces an escape.
//! * **Lowering**: each statement list becomes one [`Program`]. Numeric and
//!   boolean work (conditions, fault-injection draws, arithmetic, casts)
//!   lowers to inline ops; everything touching boxed values or state tables
//!   escapes through a [`ThunkSpec`] that calls straight back into the
//!   *same* interpreter functions (`exec`, `exec_pred`, `exec_stmt`,
//!   `exec_select`) the tree-walker uses — the two tiers cannot diverge on
//!   escaped constructs by construction.
//! * **Schema specialization**: field types are unknown until the first
//!   message arrives, so [`JitEngine`] re-lowers a direction the first time
//!   it sees a schema (and again if the schema ever changes). Classic
//!   type-feedback specialization, one recompile per direction in practice.
//! * **Tier selection** ([`compile_engine`]): `Auto` picks the x86-64
//!   template JIT where available and the direct-threaded tier elsewhere;
//!   `ADN_JIT=interp|threaded|native` overrides per process.
//!
//! Semantic contract: a `JitEngine` must be observably identical to the
//! `NativeEngine`/`FusedEngine` it replaces — verdicts, message mutations,
//! RNG streams, fault messages, and exported state images byte-for-byte.
//! The three-way differential suite in `crates/jit/tests` enforces this.

use std::ffi::c_void;
use std::sync::OnceLock;

use adn_ir::element::{ElementIr, JoinStrategy};
use adn_ir::expr::{EvalError, IrBinOp, IrUnOp};
use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::schema::RpcSchema;
use adn_rpc::transport::EndpointAddr;
use adn_rpc::value::{Value, ValueType};
use adn_wire::codec::{Decoder, Encoder};

use adn_jit::disasm::Listing;
use adn_jit::mem::AlignedMemory;
use adn_jit::program::{ArithKind, CmpKind, Label, NegKind, Program, ProgramBuilder, Slot};
use adn_jit::threaded::ThreadedProgram;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
use adn_jit::x86::NativeProgram;
pub use adn_jit::{native_available, JitTier};
use adn_jit::{ret, VmCtx};

use crate::eval::ExecError;
use crate::native::{
    coerce_store, compile_element, compile_fused, element_seed, exec_select, exec_stmt,
    CompileOpts, SelectFail, StepOutcome, ABORT_INTERNAL,
};
use crate::plan::{compile_stmt_for, exec, exec_pred, CExpr, CJoin, CRef, CStmt, UdfId};
use crate::state::StateTable;
use crate::udf_impl::UdfRuntime;

// ---------------------------------------------------------------------------
// Static types
// ---------------------------------------------------------------------------

/// Unboxed static type of a lowered expression slot. Expressions whose
/// value cannot be proven to stay in one of these four shapes never get a
/// slot — they escape whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum STy {
    U64,
    I64,
    F64,
    Bool,
}

fn sty_of(t: ValueType) -> Option<STy> {
    match t {
        ValueType::U64 => Some(STy::U64),
        ValueType::I64 => Some(STy::I64),
        ValueType::F64 => Some(STy::F64),
        ValueType::Bool => Some(STy::Bool),
        _ => None,
    }
}

fn bits_of(v: &Value) -> Option<(u64, STy)> {
    match v {
        Value::U64(x) => Some((*x, STy::U64)),
        Value::I64(x) => Some((*x as u64, STy::I64)),
        Value::F64(x) => Some((x.to_bits(), STy::F64)),
        Value::Bool(b) => Some((*b as u64, STy::Bool)),
        _ => None,
    }
}

fn value_from_bits(bits: u64, sty: STy) -> Value {
    match sty {
        STy::U64 => Value::U64(bits),
        STy::I64 => Value::I64(bits as i64),
        STy::F64 => Value::F64(f64::from_bits(bits)),
        STy::Bool => Value::Bool(bits != 0),
    }
}

fn bits_from_value(v: &Value, sty: STy) -> Result<u64, ExecError> {
    match (sty, v) {
        (STy::U64, Value::U64(x)) => Ok(*x),
        (STy::I64, Value::I64(x)) => Ok(*x as u64),
        (STy::F64, Value::F64(x)) => Ok(x.to_bits()),
        (STy::Bool, Value::Bool(b)) => Ok(*b as u64),
        _ => Err(EvalError::TypeError(format!("jit: expected {sty:?}, got {v}")).into()),
    }
}

// ---------------------------------------------------------------------------
// Thunk specs
// ---------------------------------------------------------------------------

/// What a failed SELECT produces, owned by the spec table.
#[derive(Debug, Clone)]
enum OwnedFail {
    Drop,
    Dynamic { code: CExpr, message: Option<CExpr> },
    Prebuilt(Verdict),
}

/// A precompiled INSERT column source: how to produce one row value
/// without walking a `CExpr`. Only sources that are side-effect-free
/// clones (plus the `now()` logical-clock tick) qualify — anything else
/// keeps the generic interpreter escape.
#[derive(Debug, Clone)]
enum ColSrc {
    /// `now()` into a `u64` column.
    Now,
    /// A literal, store-coerced at compile time.
    Const(Value),
    /// A message field whose schema type equals the column type exactly
    /// (so the interpreter's store coercion is the identity).
    Field(usize),
}

/// One leaf equality in a precompiled SELECT filter, checked with the
/// interpreter's own `dsl_eq` so the tiers agree bit-for-bit.
#[derive(Debug, Clone)]
enum EqCheck {
    /// `input.f == tab.c`
    FieldCol(usize, usize),
    /// `tab.c == <literal>`
    ColConst(usize, Value),
    /// `input.f == <literal>`
    FieldConst(usize, Value),
}

impl EqCheck {
    #[inline]
    fn eval(&self, fields: &[Value], row: &[Value]) -> bool {
        match self {
            EqCheck::FieldCol(f, c) => fields[*f].dsl_eq(&row[*c]),
            EqCheck::ColConst(c, v) => row[*c].dsl_eq(v),
            EqCheck::FieldConst(f, v) => fields[*f].dsl_eq(v),
        }
    }
}

/// One escape point. Spec ids are `CallExpr`/`CallStmt` immediates indexing
/// the per-direction spec table.
#[derive(Debug, Clone)]
enum ThunkSpec {
    /// Interpret a subtree via `exec`, return unboxed bits.
    ExprEval { elem: usize, expr: CExpr, out: STy },
    /// Interpret a predicate via `exec_pred`, return a bool bit.
    PredEval { elem: usize, expr: CExpr },
    /// One f64 draw from the element RNG (fault-injection fast path).
    RandomF64 { elem: usize },
    /// Raw bits of a message field whose schema type is unboxed.
    FieldBits { idx: usize, out: STy },
    /// `SET field = <arg>` with store coercion (condition checked inline).
    StoreField { field: usize, aty: STy },
    /// Whole-statement escape through the shared interpreter step.
    Stmt { elem: usize, stmt: CStmt },
    /// Specialized INSERT: build the row from precompiled column sources
    /// (no expression walk, no runtime coercion) and recycle the
    /// allocations of whatever row the insert displaces. The log-table
    /// hot path (`INSERT INTO log_tab VALUES (now(), 'req', ...)`).
    InsertRow {
        elem: usize,
        table: usize,
        cols: Vec<ColSrc>,
    },
    /// Specialized keyed-join filter SELECT (the ACL shape): one hash
    /// lookup plus leaf equality checks, no assignments, no expression
    /// walk. Anything more general keeps the `Select` escape.
    KeyJoinFilter {
        elem: usize,
        table: usize,
        /// Message fields forming the key, in key-column order.
        input_fields: Vec<usize>,
        /// The ON conjuncts followed by the WHERE conjuncts, in the
        /// interpreter's evaluation order.
        checks: Vec<EqCheck>,
        fail: OwnedFail,
    },
    /// SELECT via the shared `exec_select`, with a possibly prebuilt
    /// failure verdict.
    Select {
        elem: usize,
        assignments: Vec<(usize, CExpr)>,
        join: Option<CJoin>,
        condition: Option<CExpr>,
        fail: OwnedFail,
    },
    /// ROUTE key hashing (condition checked inline; replica emptiness
    /// checked here so rebinding stays possible).
    Route { elem: usize, key: CExpr },
    /// ABORT with dynamic code/message (condition checked inline).
    AbortBuild {
        elem: usize,
        code: CExpr,
        message: Option<CExpr>,
    },
    /// A verdict fully computed at compile time.
    Halt { verdict: Verdict },
}

// ---------------------------------------------------------------------------
// Runtime env + trampolines
// ---------------------------------------------------------------------------

/// Per-element runtime state (tables, RNG, replicas).
struct ElemState {
    name: String,
    request: Vec<CStmt>,
    response: Vec<CStmt>,
    tables: Vec<StateTable>,
    udf: UdfRuntime,
    replicas: Vec<EndpointAddr>,
}

fn build_elem(element: &ElementIr, seed: u64, replicas: Vec<EndpointAddr>) -> ElemState {
    let compile_all = |stmts: &[adn_ir::IrStmt]| -> Vec<CStmt> {
        stmts
            .iter()
            .map(|s| compile_stmt_for(s, &element.tables).expect("typechecked element compiles"))
            .collect()
    };
    ElemState {
        name: element.name.clone(),
        request: compile_all(&element.request),
        response: compile_all(&element.response),
        tables: element
            .tables
            .iter()
            .map(|t| StateTable::new(t.clone()))
            .collect(),
        udf: UdfRuntime::new(seed),
        replicas,
    }
}

/// The embedder env handed to generated code via [`VmCtx`]. Lives on the
/// `process()` stack for exactly one message.
///
/// `repr(C)` with the fault flag as the FIRST byte — the executors read it
/// through `VmCtx::env` at offset [`adn_jit::ENV_FAULT_OFFSET`].
#[repr(C)]
struct JitEnv {
    fault: u8,
    msg: *mut RpcMessage,
    elems: *mut ElemState,
    n_elems: usize,
    specs: *const ThunkSpec,
    n_specs: usize,
    /// Per-spec recycled-row storage (`InsertRow` keeps the displaced
    /// row's allocations here between messages); one slot per spec.
    scratch: *mut Vec<Value>,
    fault_err: Option<ExecError>,
    verdict: Option<Verdict>,
}

impl JitEnv {
    /// # Safety
    /// Caller guarantees `elem < n_elems` (spec tables are built against
    /// the same element list).
    unsafe fn elem_mut(&mut self, elem: usize) -> &mut ElemState {
        debug_assert!(elem < self.n_elems);
        &mut *self.elems.add(elem)
    }
}

extern "C" fn expr_tramp(env: *mut c_void, spec: u64, args: *const u64, argc: u64) -> u64 {
    // SAFETY: env points at the JitEnv on the process() stack; spec ids
    // were generated against this spec table.
    let env = unsafe { &mut *(env as *mut JitEnv) };
    debug_assert!((spec as usize) < env.n_specs);
    let spec = unsafe { &*env.specs.add(spec as usize) };
    let arg_bits = unsafe { std::slice::from_raw_parts(args, argc as usize) };
    match run_expr_spec(env, spec, arg_bits) {
        Ok(bits) => bits,
        Err(e) => {
            env.fault_err = Some(e);
            env.fault = 1;
            0
        }
    }
}

fn run_expr_spec(env: &mut JitEnv, spec: &ThunkSpec, args: &[u64]) -> Result<u64, ExecError> {
    // SAFETY: msg outlives the program run; elem indices are in range.
    let msg = unsafe { &mut *env.msg };
    match spec {
        ThunkSpec::ExprEval { elem, expr, out } => {
            let st = unsafe { env.elem_mut(*elem) };
            let v = exec(expr, &msg.fields, None, &mut st.udf)?;
            bits_from_value(v.as_ref(), *out)
        }
        ThunkSpec::PredEval { elem, expr } => {
            let st = unsafe { env.elem_mut(*elem) };
            Ok(exec_pred(expr, &msg.fields, None, &mut st.udf)? as u64)
        }
        ThunkSpec::RandomF64 { elem } => {
            let st = unsafe { env.elem_mut(*elem) };
            Ok(st.udf.random_f64().to_bits())
        }
        ThunkSpec::FieldBits { idx, out } => bits_from_value(&msg.fields[*idx], *out),
        ThunkSpec::StoreField { field, aty } => {
            let v = value_from_bits(args[0], *aty);
            let ty = msg.schema.fields()[*field].ty;
            msg.fields[*field] = coerce_store(v, ty)?;
            Ok(0)
        }
        _ => Err(EvalError::TypeError("jit: statement spec in expr thunk".into()).into()),
    }
}

extern "C" fn stmt_tramp(env: *mut c_void, spec: u64) -> u64 {
    // SAFETY: as expr_tramp.
    let env = unsafe { &mut *(env as *mut JitEnv) };
    debug_assert!((spec as usize) < env.n_specs);
    let idx = spec as usize;
    let spec = unsafe { &*env.specs.add(idx) };
    let elem = spec_elem(spec);
    match run_stmt_spec(env, spec, idx) {
        Ok(code) => code,
        Err(e) => {
            env.fault_err = Some(e);
            env.fault = 1;
            ret::encode_fault(elem, ret::FAULT_ENV)
        }
    }
}

fn spec_elem(spec: &ThunkSpec) -> usize {
    match spec {
        ThunkSpec::ExprEval { elem, .. }
        | ThunkSpec::PredEval { elem, .. }
        | ThunkSpec::RandomF64 { elem }
        | ThunkSpec::Stmt { elem, .. }
        | ThunkSpec::InsertRow { elem, .. }
        | ThunkSpec::KeyJoinFilter { elem, .. }
        | ThunkSpec::Select { elem, .. }
        | ThunkSpec::Route { elem, .. }
        | ThunkSpec::AbortBuild { elem, .. } => *elem,
        ThunkSpec::FieldBits { .. } | ThunkSpec::StoreField { .. } | ThunkSpec::Halt { .. } => 0,
    }
}

/// Clone-from that reuses the destination's heap allocations (the scratch
/// row carries String/Bytes buffers from the last displaced row).
fn write_reusing(slot: &mut Value, src: &Value) {
    match (&mut *slot, src) {
        (Value::Str(d), Value::Str(s)) => {
            d.clear();
            d.push_str(s);
        }
        (Value::Bytes(d), Value::Bytes(s)) => {
            d.clear();
            d.extend_from_slice(s);
        }
        (d, s) => *d = s.clone(),
    }
}

fn col_value(c: &ColSrc, msg: &RpcMessage, udf: &mut UdfRuntime) -> Value {
    match c {
        ColSrc::Now => Value::U64(udf.now()),
        ColSrc::Const(v) => v.clone(),
        ColSrc::Field(i) => msg.fields[*i].clone(),
    }
}

/// Fills `row` from the column sources, left to right (the interpreter's
/// evaluation order — `now()` draws must interleave identically).
fn fill_row(row: &mut Vec<Value>, cols: &[ColSrc], msg: &RpcMessage, udf: &mut UdfRuntime) {
    if row.len() != cols.len() {
        row.clear();
        row.reserve(cols.len());
        for c in cols {
            row.push(col_value(c, msg, udf));
        }
        return;
    }
    for (slot, c) in row.iter_mut().zip(cols) {
        match c {
            ColSrc::Now => *slot = Value::U64(udf.now()),
            ColSrc::Const(v) => write_reusing(slot, v),
            ColSrc::Field(i) => write_reusing(slot, &msg.fields[*i]),
        }
    }
}

fn run_stmt_spec(env: &mut JitEnv, spec: &ThunkSpec, idx: usize) -> Result<u64, ExecError> {
    // SAFETY: as run_expr_spec.
    let msg = unsafe { &mut *env.msg };
    match spec {
        ThunkSpec::InsertRow { elem, table, cols } => {
            let scratch = unsafe { &mut *env.scratch.add(idx) };
            let st = unsafe { env.elem_mut(*elem) };
            let mut row = std::mem::take(scratch);
            fill_row(&mut row, cols, msg, &mut st.udf);
            if let Some(displaced) = st.tables[*table].insert_if_absent_reclaim(row) {
                *scratch = displaced;
            }
            Ok(0)
        }
        ThunkSpec::KeyJoinFilter {
            elem,
            table,
            input_fields,
            checks,
            fail,
        } => {
            let st = unsafe { env.elem_mut(*elem) };
            let t = &st.tables[*table];
            let h = t.key_hash_of_iter(input_fields.iter().map(|&i| &msg.fields[i]));
            let pass = match t.lookup(h) {
                Some(row) => checks.iter().all(|c| c.eval(&msg.fields, row)),
                None => false,
            };
            if pass {
                Ok(0)
            } else {
                let fail = match fail {
                    OwnedFail::Drop => SelectFail::Drop,
                    OwnedFail::Dynamic { code, message } => SelectFail::Dynamic {
                        code,
                        message: message.as_ref(),
                        name: &st.name,
                    },
                    OwnedFail::Prebuilt(v) => SelectFail::Prebuilt(v),
                };
                env.verdict = Some(fail.verdict(msg, &mut st.udf)?);
                Ok(ret::VERDICT)
            }
        }
        ThunkSpec::Stmt { elem, stmt } => {
            let st = unsafe { env.elem_mut(*elem) };
            match exec_stmt(
                stmt,
                msg,
                &mut st.tables,
                &mut st.udf,
                &st.replicas,
                &st.name,
            )? {
                StepOutcome::Continue => Ok(0),
                StepOutcome::Verdict(v) => {
                    env.verdict = Some(v);
                    Ok(ret::VERDICT)
                }
            }
        }
        ThunkSpec::Select {
            elem,
            assignments,
            join,
            condition,
            fail,
        } => {
            let st = unsafe { env.elem_mut(*elem) };
            let fail = match fail {
                OwnedFail::Drop => SelectFail::Drop,
                OwnedFail::Dynamic { code, message } => SelectFail::Dynamic {
                    code,
                    message: message.as_ref(),
                    name: &st.name,
                },
                OwnedFail::Prebuilt(v) => SelectFail::Prebuilt(v),
            };
            match exec_select(
                assignments,
                join,
                condition,
                fail,
                msg,
                &mut st.tables,
                &mut st.udf,
            )? {
                StepOutcome::Continue => Ok(0),
                StepOutcome::Verdict(v) => {
                    env.verdict = Some(v);
                    Ok(ret::VERDICT)
                }
            }
        }
        ThunkSpec::Route { elem, key } => {
            let st = unsafe { env.elem_mut(*elem) };
            if !st.replicas.is_empty() {
                let k = exec(key, &msg.fields, None, &mut st.udf)?.into_owned();
                let idx = (k.stable_hash() % st.replicas.len() as u64) as usize;
                msg.dst = st.replicas[idx];
            }
            Ok(0)
        }
        ThunkSpec::AbortBuild {
            elem,
            code,
            message,
        } => {
            let st = unsafe { env.elem_mut(*elem) };
            let code_v = exec(code, &msg.fields, None, &mut st.udf)?.into_owned();
            let code = code_v.as_u64().unwrap_or(ABORT_INTERNAL as u64) as u32;
            let message = match message {
                Some(m) => match exec(m, &msg.fields, None, &mut st.udf)?.into_owned() {
                    Value::Str(s) => s,
                    other => other.to_string(),
                },
                None => format!("aborted by {}", st.name),
            };
            env.verdict = Some(Verdict::Abort { code, message });
            Ok(ret::VERDICT)
        }
        ThunkSpec::Halt { verdict } => {
            env.verdict = Some(verdict.clone());
            Ok(ret::VERDICT)
        }
        _ => Err(EvalError::TypeError("jit: expr spec in stmt thunk".into()).into()),
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Lowering counters, surfaced by `adn-lint --jit-dump` and the V0006
/// eligibility lint.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerStats {
    /// Ops executed without leaving generated code.
    pub inline_ops: usize,
    /// Escape calls back into the interpreter (expr or stmt thunks).
    pub escapes: usize,
    /// No-op `SELECT * FROM input` statements deleted outright.
    pub eliminated: usize,
    /// Statements replaced by specialized fast-path thunks (e.g. the
    /// precompiled INSERT row build) — not interpreter escapes.
    pub fast_stmts: usize,
}

struct Lowerer<'a> {
    b: ProgramBuilder,
    specs: Vec<ThunkSpec>,
    schema: Option<&'a RpcSchema>,
    elem: usize,
    elem_name: String,
    /// The current element's state tables (layouts drive the specialized
    /// INSERT lowering).
    tables: &'a [StateTable],
    // Lazily created per-element fault landing blocks, bound at the end.
    f_env: Option<Label>,
    f_of: Option<Label>,
    f_dz: Option<Label>,
    pending_blocks: Vec<(Label, u64)>,
    scratch: Slot,
    stats: LowerStats,
}

impl<'a> Lowerer<'a> {
    fn new(schema: Option<&'a RpcSchema>) -> Lowerer<'a> {
        let mut b = ProgramBuilder::new();
        let scratch = b.alloc_slot();
        Lowerer {
            b,
            specs: Vec::new(),
            schema,
            elem: 0,
            elem_name: String::new(),
            tables: &[],
            f_env: None,
            f_of: None,
            f_dz: None,
            pending_blocks: Vec::new(),
            scratch,
            stats: LowerStats::default(),
        }
    }

    fn spec(&mut self, s: ThunkSpec) -> u32 {
        self.specs.push(s);
        self.stats.escapes += 1;
        (self.specs.len() - 1) as u32
    }

    /// A spec that is a specialized fast path, not an interpreter escape.
    fn fast_spec(&mut self, s: ThunkSpec) -> u32 {
        self.specs.push(s);
        self.stats.fast_stmts += 1;
        (self.specs.len() - 1) as u32
    }

    fn fault_block(
        slot: &mut Option<Label>,
        b: &mut ProgramBuilder,
        pend: &mut Vec<(Label, u64)>,
        code: u64,
    ) -> Label {
        *slot.get_or_insert_with(|| {
            let l = b.new_label();
            pend.push((l, code));
            l
        })
    }

    fn f_env(&mut self) -> Label {
        Self::fault_block(
            &mut self.f_env,
            &mut self.b,
            &mut self.pending_blocks,
            ret::encode_fault(self.elem, ret::FAULT_ENV),
        )
    }

    fn f_of(&mut self) -> Label {
        Self::fault_block(
            &mut self.f_of,
            &mut self.b,
            &mut self.pending_blocks,
            ret::encode_fault(self.elem, ret::FAULT_OVERFLOW),
        )
    }

    fn f_dz(&mut self) -> Label {
        Self::fault_block(
            &mut self.f_dz,
            &mut self.b,
            &mut self.pending_blocks,
            ret::encode_fault(self.elem, ret::FAULT_DIV_ZERO),
        )
    }

    fn field_sty(&self, idx: usize) -> Option<STy> {
        self.schema.and_then(|s| sty_of(s.fields()[idx].ty))
    }

    /// Sound static type: `Some(t)` means every non-faulting evaluation of
    /// `e` yields exactly a `t`-typed value.
    fn infer(&self, e: &CExpr) -> Option<STy> {
        match e {
            CExpr::Const(v) => sty_of(v.value_type()),
            CExpr::Field(i) => self.field_sty(*i),
            CExpr::Col(_) => None,
            CExpr::Cmp { .. } | CExpr::RandomBelow(_) => Some(STy::Bool),
            CExpr::Udf { id, args } => match (id, args.len()) {
                (UdfId::Random, 0) => Some(STy::F64),
                (UdfId::Now, 0) => Some(STy::U64),
                (UdfId::Hash, 1) => Some(STy::U64),
                _ => None,
            },
            CExpr::Cast { to, .. } => sty_of(*to),
            CExpr::Unary { op, operand } => match op {
                IrUnOp::Not => Some(STy::Bool),
                IrUnOp::Neg => match self.infer(operand)? {
                    STy::I64 | STy::U64 => Some(STy::I64),
                    STy::F64 => Some(STy::F64),
                    STy::Bool => None,
                },
            },
            CExpr::Binary { op, left, right } => match op {
                IrBinOp::And
                | IrBinOp::Or
                | IrBinOp::Eq
                | IrBinOp::NotEq
                | IrBinOp::Lt
                | IrBinOp::Le
                | IrBinOp::Gt
                | IrBinOp::Ge => Some(STy::Bool),
                IrBinOp::Add | IrBinOp::Sub | IrBinOp::Mul | IrBinOp::Div | IrBinOp::Mod => {
                    let (l, r) = (self.infer(left)?, self.infer(right)?);
                    if l == STy::Bool || r == STy::Bool {
                        return None; // arithmetic on bools always faults
                    }
                    match (l, r) {
                        (STy::F64, _) | (_, STy::F64) => Some(STy::F64),
                        (STy::I64, _) | (_, STy::I64) => Some(STy::I64),
                        (STy::U64, STy::U64) => {
                            // U64 - U64 may go negative (I64 result): boxed.
                            if *op == IrBinOp::Sub {
                                None
                            } else {
                                Some(STy::U64)
                            }
                        }
                        _ => unreachable!("bool filtered above"),
                    }
                }
            },
            CExpr::Case { .. } => None,
        }
    }

    /// Escape: interpret `e` whole, producing `out` bits.
    fn escape_expr(&mut self, e: &CExpr, out: STy) -> Slot {
        let dst = self.b.alloc_slot();
        let spec = self.spec(ThunkSpec::ExprEval {
            elem: self.elem,
            expr: e.clone(),
            out,
        });
        let f = self.f_env();
        self.b.call_expr(spec, dst, &[], f);
        dst
    }

    fn inline(&mut self, n: usize) {
        self.stats.inline_ops += n;
    }

    fn lower_typed(&mut self, e: &CExpr, sty: STy) -> Slot {
        match e {
            CExpr::Const(v) => {
                let (bits, _) = bits_of(v).expect("infer guarantees unboxed const");
                let dst = self.b.alloc_slot();
                self.b.const_bits(dst, bits);
                self.inline(1);
                dst
            }
            CExpr::Field(i) => {
                let dst = self.b.alloc_slot();
                let spec = self.spec(ThunkSpec::FieldBits { idx: *i, out: sty });
                let f = self.f_env();
                self.b.call_expr(spec, dst, &[], f);
                dst
            }
            CExpr::RandomBelow(p) => self.lower_random_below(*p),
            CExpr::Cmp { op, left, right } => self.lower_cmp(e, *op, left, right),
            CExpr::Unary { op, operand } => match op {
                IrUnOp::Not => {
                    if self.infer(operand) == Some(STy::Bool) {
                        let s = self.lower_typed(operand, STy::Bool);
                        let dst = self.b.alloc_slot();
                        self.b.not_bool(dst, s);
                        self.inline(1);
                        dst
                    } else {
                        // NOT on a non-bool faults; interpret to reproduce
                        // the exact error.
                        self.escape_expr(e, sty)
                    }
                }
                IrUnOp::Neg => match self.infer(operand) {
                    Some(STy::I64) => {
                        let s = self.lower_typed(operand, STy::I64);
                        let dst = self.b.alloc_slot();
                        let of = self.f_of();
                        self.b.neg(NegKind::I64, dst, s, of);
                        self.inline(1);
                        dst
                    }
                    Some(STy::F64) => {
                        let s = self.lower_typed(operand, STy::F64);
                        let dst = self.b.alloc_slot();
                        let of = self.f_of();
                        self.b.neg(NegKind::F64, dst, s, of);
                        self.inline(1);
                        dst
                    }
                    Some(STy::U64) => {
                        // -(x as i64) after the range check; the negation
                        // itself cannot overflow once x <= i64::MAX.
                        let s = self.lower_typed(operand, STy::U64);
                        let cast = self.b.alloc_slot();
                        let of = self.f_of();
                        self.b.cast_u64_i64(cast, s, of);
                        let dst = self.b.alloc_slot();
                        let of = self.f_of();
                        self.b.neg(NegKind::I64, dst, cast, of);
                        self.inline(2);
                        dst
                    }
                    _ => self.escape_expr(e, sty),
                },
            },
            CExpr::Binary { op, left, right } => match op {
                IrBinOp::And | IrBinOp::Or => {
                    if self.infer(left) == Some(STy::Bool) && self.infer(right) == Some(STy::Bool) {
                        let dst = self.b.alloc_slot();
                        let l = self.lower_typed(left, STy::Bool);
                        self.b.mov(dst, l);
                        let done = self.b.new_label();
                        if *op == IrBinOp::And {
                            self.b.jump_if_false(dst, done);
                        } else {
                            self.b.jump_if_true(dst, done);
                        }
                        let r = self.lower_typed(right, STy::Bool);
                        self.b.mov(dst, r);
                        self.b.bind(done);
                        self.inline(3);
                        dst
                    } else {
                        self.escape_expr(e, sty)
                    }
                }
                IrBinOp::Eq
                | IrBinOp::NotEq
                | IrBinOp::Lt
                | IrBinOp::Le
                | IrBinOp::Gt
                | IrBinOp::Ge => self.escape_expr(e, STy::Bool),
                IrBinOp::Add | IrBinOp::Sub | IrBinOp::Mul | IrBinOp::Div | IrBinOp::Mod => {
                    self.lower_arith(*op, left, right, sty)
                }
            },
            CExpr::Cast { to, inner } => {
                let inner_sty = match self.infer(inner) {
                    Some(s) => s,
                    None => return self.escape_expr(e, sty),
                };
                let to_sty = sty_of(*to);
                match (to_sty, inner_sty) {
                    (Some(t), i) if t == i => self.lower_typed(inner, i), // identity
                    (Some(STy::I64), STy::U64) => {
                        let s = self.lower_typed(inner, STy::U64);
                        let dst = self.b.alloc_slot();
                        let of = self.f_of();
                        self.b.cast_u64_i64(dst, s, of);
                        self.inline(1);
                        dst
                    }
                    (Some(STy::F64), STy::U64) => {
                        let s = self.lower_typed(inner, STy::U64);
                        let dst = self.b.alloc_slot();
                        self.b.cast_u64_f64(dst, s);
                        self.inline(1);
                        dst
                    }
                    (Some(STy::F64), STy::I64) => {
                        let s = self.lower_typed(inner, STy::I64);
                        let dst = self.b.alloc_slot();
                        self.b.cast_i64_f64(dst, s);
                        self.inline(1);
                        dst
                    }
                    // Unsupported combos fault at runtime; interpret for
                    // the exact "cannot cast" message.
                    _ => self.escape_expr(e, sty),
                }
            }
            CExpr::Udf { .. } | CExpr::Case { .. } | CExpr::Col(_) => self.escape_expr(e, sty),
        }
    }

    /// `random() < p`: one RNG thunk call plus an inline float compare.
    /// The draw is in `[0, 1)` (never NaN/-0), so the total-order compare
    /// agrees with the interpreter's plain `<` for every constant except a
    /// NaN threshold, which plain `<` answers `false`.
    fn lower_random_below(&mut self, p: f64) -> Slot {
        let draw = self.b.alloc_slot();
        let spec = self.spec(ThunkSpec::RandomF64 { elem: self.elem });
        let f = self.f_env();
        self.b.call_expr(spec, draw, &[], f);
        let dst = self.b.alloc_slot();
        if p.is_nan() {
            self.b.const_bits(dst, 0);
            self.inline(1);
        } else {
            let pc = self.b.alloc_slot();
            self.b.const_bits(pc, p.to_bits());
            self.b.cmp(CmpKind::LtF, dst, draw, pc);
            self.inline(2);
        }
        dst
    }

    fn cref_sty(&self, r: &CRef) -> Option<STy> {
        match r {
            CRef::Field(i) => self.field_sty(*i),
            CRef::Const(v) => sty_of(v.value_type()),
            CRef::Col(_) => None,
        }
    }

    fn lower_cref(&mut self, r: &CRef, sty: STy) -> Slot {
        match r {
            CRef::Const(v) => {
                let (bits, _) = bits_of(v).expect("unboxed cref const");
                let dst = self.b.alloc_slot();
                self.b.const_bits(dst, bits);
                self.inline(1);
                dst
            }
            CRef::Field(i) => {
                let dst = self.b.alloc_slot();
                let spec = self.spec(ThunkSpec::FieldBits { idx: *i, out: sty });
                let f = self.f_env();
                self.b.call_expr(spec, dst, &[], f);
                dst
            }
            CRef::Col(_) => unreachable!("cref_sty filtered cols"),
        }
    }

    /// Leaf-vs-leaf comparison: inline when both sides have the same
    /// unboxed static type (same-type `total_cmp` is a plain scalar
    /// compare, and same-type `dsl_eq` is bit equality).
    fn lower_cmp(&mut self, whole: &CExpr, op: IrBinOp, left: &CRef, right: &CRef) -> Slot {
        let (Some(l), Some(r)) = (self.cref_sty(left), self.cref_sty(right)) else {
            return self.escape_expr(whole, STy::Bool);
        };
        if l != r {
            // Cross-type numeric compares have sign-aware semantics;
            // interpret them.
            return self.escape_expr(whole, STy::Bool);
        }
        let kind = match (op, l) {
            (IrBinOp::Eq, _) => CmpKind::EqBits,
            (IrBinOp::NotEq, _) => CmpKind::NeBits,
            (IrBinOp::Lt, STy::U64 | STy::Bool) => CmpKind::LtU,
            (IrBinOp::Le, STy::U64 | STy::Bool) => CmpKind::LeU,
            (IrBinOp::Gt, STy::U64 | STy::Bool) => CmpKind::GtU,
            (IrBinOp::Ge, STy::U64 | STy::Bool) => CmpKind::GeU,
            (IrBinOp::Lt, STy::I64) => CmpKind::LtI,
            (IrBinOp::Le, STy::I64) => CmpKind::LeI,
            (IrBinOp::Gt, STy::I64) => CmpKind::GtI,
            (IrBinOp::Ge, STy::I64) => CmpKind::GeI,
            (IrBinOp::Lt, STy::F64) => CmpKind::LtF,
            (IrBinOp::Le, STy::F64) => CmpKind::LeF,
            (IrBinOp::Gt, STy::F64) => CmpKind::GtF,
            (IrBinOp::Ge, STy::F64) => CmpKind::GeF,
            _ => return self.escape_expr(whole, STy::Bool),
        };
        let a = self.lower_cref(left, l);
        let b = self.lower_cref(right, r);
        let dst = self.b.alloc_slot();
        self.b.cmp(kind, dst, a, b);
        self.inline(1);
        dst
    }

    fn lower_arith(&mut self, op: IrBinOp, left: &CExpr, right: &CExpr, sty: STy) -> Slot {
        let (Some(l), Some(r)) = (self.infer(left), self.infer(right)) else {
            return self.escape_expr(
                &CExpr::Binary {
                    op,
                    left: Box::new(left.clone()),
                    right: Box::new(right.clone()),
                },
                sty,
            );
        };
        // Operands evaluate fully (left then right) before any conversion
        // faults, matching `exec` + `eval_arith`.
        let ls = self.lower_typed(left, l);
        let rs = self.lower_typed(right, r);
        let is_divmod = matches!(op, IrBinOp::Div | IrBinOp::Mod);
        match sty {
            STy::F64 => {
                let lf = self.coerce_f64(ls, l);
                let rf = self.coerce_f64(rs, r);
                let kind = match op {
                    IrBinOp::Add => ArithKind::AddF,
                    IrBinOp::Sub => ArithKind::SubF,
                    IrBinOp::Mul => ArithKind::MulF,
                    IrBinOp::Div => ArithKind::DivF,
                    IrBinOp::Mod => ArithKind::ModF,
                    _ => unreachable!(),
                };
                let dst = self.b.alloc_slot();
                let of = self.f_of();
                let dz = if is_divmod { self.f_dz() } else { of };
                self.b.arith(kind, dst, lf, rf, of, dz);
                self.inline(1);
                dst
            }
            STy::I64 => {
                // as_i64 converts the left operand first, then the right.
                let li = self.coerce_i64(ls, l);
                let ri = self.coerce_i64(rs, r);
                let kind = match op {
                    IrBinOp::Add => ArithKind::AddI,
                    IrBinOp::Sub => ArithKind::SubI,
                    IrBinOp::Mul => ArithKind::MulI,
                    IrBinOp::Div => ArithKind::DivI,
                    IrBinOp::Mod => ArithKind::ModI,
                    _ => unreachable!(),
                };
                let dst = self.b.alloc_slot();
                let of = self.f_of();
                let dz = if is_divmod { self.f_dz() } else { of };
                self.b.arith(kind, dst, li, ri, of, dz);
                self.inline(1);
                dst
            }
            STy::U64 => {
                let kind = match op {
                    IrBinOp::Add => ArithKind::AddU,
                    IrBinOp::Mul => ArithKind::MulU,
                    IrBinOp::Div => ArithKind::DivU,
                    IrBinOp::Mod => ArithKind::ModU,
                    _ => unreachable!("U64 Sub is boxed"),
                };
                let dst = self.b.alloc_slot();
                let of = self.f_of();
                let dz = if is_divmod { self.f_dz() } else { of };
                self.b.arith(kind, dst, ls, rs, of, dz);
                self.inline(1);
                dst
            }
            STy::Bool => unreachable!("bool arith filtered by infer"),
        }
    }

    fn coerce_f64(&mut self, s: Slot, from: STy) -> Slot {
        match from {
            STy::F64 => s,
            STy::U64 => {
                let dst = self.b.alloc_slot();
                self.b.cast_u64_f64(dst, s);
                self.inline(1);
                dst
            }
            STy::I64 => {
                let dst = self.b.alloc_slot();
                self.b.cast_i64_f64(dst, s);
                self.inline(1);
                dst
            }
            STy::Bool => unreachable!(),
        }
    }

    fn coerce_i64(&mut self, s: Slot, from: STy) -> Slot {
        match from {
            STy::I64 => s,
            STy::U64 => {
                let dst = self.b.alloc_slot();
                let of = self.f_of();
                self.b.cast_u64_i64(dst, s, of);
                self.inline(1);
                dst
            }
            _ => unreachable!(),
        }
    }

    /// Lowers a statement condition with `exec_pred` semantics. Total: a
    /// non-inlinable predicate escapes through `PredEval` (which also
    /// reproduces the "predicate yielded X, not bool" error).
    fn lower_pred(&mut self, e: &CExpr) -> Slot {
        match e {
            CExpr::Cmp { .. } | CExpr::RandomBelow(_) => self.lower_typed(e, STy::Bool),
            other => {
                if self.infer(other) == Some(STy::Bool) {
                    self.lower_typed(other, STy::Bool)
                } else {
                    let dst = self.b.alloc_slot();
                    let spec = self.spec(ThunkSpec::PredEval {
                        elem: self.elem,
                        expr: other.clone(),
                    });
                    let f = self.f_env();
                    self.b.call_expr(spec, dst, &[], f);
                    dst
                }
            }
        }
    }

    fn make_fail(&self, else_abort: &Option<(CExpr, Option<CExpr>)>) -> OwnedFail {
        match else_abort {
            None => OwnedFail::Drop,
            Some((code, message)) => {
                if let CExpr::Const(cv) = code {
                    let msg_const = match message {
                        None => Some(None),
                        Some(CExpr::Const(mv)) => Some(Some(match mv {
                            Value::Str(s) => s.clone(),
                            other => other.to_string(),
                        })),
                        _ => None,
                    };
                    if let Some(m) = msg_const {
                        let code = cv.as_u64().unwrap_or(ABORT_INTERNAL as u64) as u32;
                        let message =
                            m.unwrap_or_else(|| format!("rejected by {}", self.elem_name));
                        return OwnedFail::Prebuilt(Verdict::Abort { code, message });
                    }
                }
                OwnedFail::Dynamic {
                    code: code.clone(),
                    message: message.clone(),
                }
            }
        }
    }

    /// Emits the SELECT-failure tail: a plain drop returns inline; abort
    /// verdicts go through a halt/build thunk (which always terminates).
    fn emit_fail(&mut self, fail: OwnedFail) {
        match fail {
            OwnedFail::Drop => {
                self.b.ret(ret::DROP);
                self.inline(1);
            }
            OwnedFail::Prebuilt(verdict) => {
                let spec = self.spec(ThunkSpec::Halt { verdict });
                self.b.call_stmt(spec);
                // Unreachable (Halt always returns VERDICT); keeps the
                // block structurally terminated.
                self.b.ret(ret::VERDICT);
            }
            OwnedFail::Dynamic { code, message } => {
                let spec = self.spec(ThunkSpec::AbortBuild {
                    elem: self.elem,
                    code,
                    message,
                });
                self.b.call_stmt(spec);
                self.b.ret(ret::VERDICT);
            }
        }
    }

    fn lower_element(
        &mut self,
        elem: usize,
        name: &str,
        tables: &'a [StateTable],
        stmts: &[CStmt],
    ) {
        self.elem = elem;
        self.elem_name = name.to_string();
        self.tables = tables;
        self.f_env = None;
        self.f_of = None;
        self.f_dz = None;
        for stmt in stmts {
            self.lower_stmt(stmt);
        }
    }

    /// Tries to lower INSERT column expressions to precompiled sources.
    /// Every column must be a side-effect-free clone (a literal, or a
    /// field whose schema type equals the column type) or a `now()` call
    /// into a `u64` column; literals are store-coerced here, at compile
    /// time. Anything else — including a literal that would fail coercion
    /// — keeps the interpreter escape so errors reproduce exactly.
    fn insert_cols(&self, table: usize, values: &[CExpr]) -> Option<Vec<ColSrc>> {
        let layout = self.tables.get(table)?.layout();
        let schema = self.schema?;
        if values.len() != layout.column_types.len() {
            return None;
        }
        values
            .iter()
            .zip(&layout.column_types)
            .map(|(e, &ty)| match e {
                CExpr::Const(v) => coerce_store(v.clone(), ty).ok().map(ColSrc::Const),
                CExpr::Field(i) if schema.fields()[*i].ty == ty => Some(ColSrc::Field(*i)),
                CExpr::Udf {
                    id: UdfId::Now,
                    args,
                } if args.is_empty() && ty == ValueType::U64 => Some(ColSrc::Now),
                _ => None,
            })
            .collect()
    }

    fn lower_stmt(&mut self, stmt: &CStmt) {
        match stmt {
            CStmt::Select {
                assignments,
                join,
                condition,
                else_abort,
            } => {
                if assignments.is_empty() && join.is_none() && condition.is_none() {
                    // `SELECT * FROM input`: a no-op the interpreter still
                    // steps through. Delete it.
                    self.stats.eliminated += 1;
                    return;
                }
                let fail = self.make_fail(else_abort);
                if join.is_none() && assignments.is_empty() {
                    // Pure filter: inline the condition, branch to the
                    // failure tail.
                    let cond = condition.as_ref().expect("non-noop select has cond");
                    self.b.note(format!("{}: select filter", self.elem_name));
                    let s = self.lower_pred(cond);
                    let cont = self.b.new_label();
                    self.b.jump_if_true(s, cont);
                    self.inline(1);
                    self.emit_fail(fail);
                    self.b.bind(cont);
                    return;
                }
                if assignments.is_empty() {
                    if let Some(j) = join {
                        if let JoinStrategy::KeyLookup { input_fields } = &j.strategy {
                            let mut checks = Vec::new();
                            let ok = collect_eq_checks(&j.on, &mut checks)
                                && condition
                                    .as_ref()
                                    .is_none_or(|c| collect_eq_checks(c, &mut checks));
                            if ok {
                                self.b.note(format!(
                                    "{}: select (keyed join filter)",
                                    self.elem_name
                                ));
                                let spec = self.fast_spec(ThunkSpec::KeyJoinFilter {
                                    elem: self.elem,
                                    table: j.table,
                                    input_fields: input_fields.clone(),
                                    checks,
                                    fail,
                                });
                                self.b.call_stmt(spec);
                                return;
                            }
                        }
                    }
                }
                self.b
                    .note(format!("{}: select (join/projection)", self.elem_name));
                let spec = self.spec(ThunkSpec::Select {
                    elem: self.elem,
                    assignments: assignments.clone(),
                    join: join.clone(),
                    condition: condition.clone(),
                    fail,
                });
                self.b.call_stmt(spec);
            }
            CStmt::Drop { condition } => {
                self.b.note(format!("{}: drop", self.elem_name));
                match condition {
                    None => {
                        self.b.ret(ret::DROP);
                        self.inline(1);
                    }
                    Some(c) => {
                        let s = self.lower_pred(c);
                        let cont = self.b.new_label();
                        self.b.jump_if_false(s, cont);
                        self.b.ret(ret::DROP);
                        self.inline(2);
                        self.b.bind(cont);
                    }
                }
            }
            CStmt::Abort {
                code,
                message,
                condition,
            } => {
                self.b.note(format!("{}: abort", self.elem_name));
                let halt = match (code, message) {
                    (CExpr::Const(cv), m) => {
                        let msg_const = match m {
                            None => Some(format!("aborted by {}", self.elem_name)),
                            Some(CExpr::Const(mv)) => Some(match mv {
                                Value::Str(s) => s.clone(),
                                other => other.to_string(),
                            }),
                            _ => None,
                        };
                        match msg_const {
                            Some(message) => ThunkSpec::Halt {
                                verdict: Verdict::Abort {
                                    code: cv.as_u64().unwrap_or(ABORT_INTERNAL as u64) as u32,
                                    message,
                                },
                            },
                            None => ThunkSpec::AbortBuild {
                                elem: self.elem,
                                code: code.clone(),
                                message: message.clone(),
                            },
                        }
                    }
                    _ => ThunkSpec::AbortBuild {
                        elem: self.elem,
                        code: code.clone(),
                        message: message.clone(),
                    },
                };
                let spec = self.spec(halt);
                match condition {
                    None => self.b.call_stmt(spec),
                    Some(c) => {
                        let s = self.lower_pred(c);
                        let cont = self.b.new_label();
                        self.b.jump_if_false(s, cont);
                        self.inline(1);
                        self.b.call_stmt(spec);
                        self.b.bind(cont);
                    }
                }
            }
            CStmt::Set {
                field,
                value,
                condition,
            } => {
                if let Some(vsty) = self.infer(value) {
                    self.b
                        .note(format!("{}: set field {}", self.elem_name, field));
                    let cont = condition.as_ref().map(|c| {
                        let s = self.lower_pred(c);
                        let cont = self.b.new_label();
                        self.b.jump_if_false(s, cont);
                        self.inline(1);
                        cont
                    });
                    let vs = self.lower_typed(value, vsty);
                    let spec = self.spec(ThunkSpec::StoreField {
                        field: *field,
                        aty: vsty,
                    });
                    let f = self.f_env();
                    let scratch = self.scratch;
                    self.b.call_expr(spec, scratch, &[vs], f);
                    if let Some(cont) = cont {
                        self.b.bind(cont);
                    }
                } else {
                    // Boxed value: run the whole statement interpreted.
                    self.b.note(format!("{}: set (escape)", self.elem_name));
                    let spec = self.spec(ThunkSpec::Stmt {
                        elem: self.elem,
                        stmt: stmt.clone(),
                    });
                    self.b.call_stmt(spec);
                }
            }
            CStmt::Route { key, condition } => {
                self.b.note(format!("{}: route", self.elem_name));
                let spec = self.spec(ThunkSpec::Route {
                    elem: self.elem,
                    key: key.clone(),
                });
                match condition {
                    None => self.b.call_stmt(spec),
                    Some(c) => {
                        let s = self.lower_pred(c);
                        let cont = self.b.new_label();
                        self.b.jump_if_false(s, cont);
                        self.inline(1);
                        self.b.call_stmt(spec);
                        self.b.bind(cont);
                    }
                }
            }
            CStmt::Insert { table, values } => {
                if let Some(cols) = self.insert_cols(*table, values) {
                    self.b
                        .note(format!("{}: insert (precompiled row)", self.elem_name));
                    let spec = self.fast_spec(ThunkSpec::InsertRow {
                        elem: self.elem,
                        table: *table,
                        cols,
                    });
                    self.b.call_stmt(spec);
                } else {
                    self.b.note(format!("{}: insert (state)", self.elem_name));
                    let spec = self.spec(ThunkSpec::Stmt {
                        elem: self.elem,
                        stmt: stmt.clone(),
                    });
                    self.b.call_stmt(spec);
                }
            }
            CStmt::Update { .. } | CStmt::UpdateKeyed { .. } | CStmt::Delete { .. } => {
                self.b
                    .note(format!("{}: {} (state)", self.elem_name, stmt_kind(stmt)));
                let spec = self.spec(ThunkSpec::Stmt {
                    elem: self.elem,
                    stmt: stmt.clone(),
                });
                self.b.call_stmt(spec);
            }
        }
    }

    fn finish(mut self) -> (Program, Vec<ThunkSpec>, LowerStats) {
        self.b.ret(ret::FORWARD);
        for (label, code) in std::mem::take(&mut self.pending_blocks) {
            self.b.bind(label);
            self.b.ret(code);
        }
        let p = self.b.finish();
        p.validate();
        (p, self.specs, self.stats)
    }
}

/// Decomposes a predicate into a conjunction of leaf equalities, in the
/// interpreter's left-to-right evaluation order. Returns `false` (leaving
/// `out` unusable) when any conjunct is not a leaf `==`.
fn collect_eq_checks(e: &CExpr, out: &mut Vec<EqCheck>) -> bool {
    match e {
        CExpr::Binary {
            op: IrBinOp::And,
            left,
            right,
        } => collect_eq_checks(left, out) && collect_eq_checks(right, out),
        CExpr::Cmp {
            op: IrBinOp::Eq,
            left,
            right,
        } => {
            let check = match (left, right) {
                (CRef::Field(f), CRef::Col(c)) | (CRef::Col(c), CRef::Field(f)) => {
                    EqCheck::FieldCol(*f, *c)
                }
                (CRef::Col(c), CRef::Const(v)) | (CRef::Const(v), CRef::Col(c)) => {
                    EqCheck::ColConst(*c, v.clone())
                }
                (CRef::Field(f), CRef::Const(v)) | (CRef::Const(v), CRef::Field(f)) => {
                    EqCheck::FieldConst(*f, v.clone())
                }
                _ => return false,
            };
            out.push(check);
            true
        }
        _ => false,
    }
}

fn stmt_kind(s: &CStmt) -> &'static str {
    match s {
        CStmt::Select { .. } => "select",
        CStmt::Insert { .. } => "insert",
        CStmt::Update { .. } => "update",
        CStmt::UpdateKeyed { .. } => "update-keyed",
        CStmt::Delete { .. } => "delete",
        CStmt::Drop { .. } => "drop",
        CStmt::Route { .. } => "route",
        CStmt::Abort { .. } => "abort",
        CStmt::Set { .. } => "set",
    }
}

// ---------------------------------------------------------------------------
// Compiled engine
// ---------------------------------------------------------------------------

enum Artifact {
    Threaded(ThreadedProgram),
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Native(NativeProgram),
}

impl Artifact {
    fn run(&self, ctx: &mut VmCtx, slots: &mut [u64], args: &mut [u64]) -> u64 {
        match self {
            Artifact::Threaded(p) => p.run(ctx, slots, args),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            Artifact::Native(p) => p.run(ctx, slots, args),
        }
    }

    fn tier(&self) -> JitTier {
        match self {
            Artifact::Threaded(_) => JitTier::Threaded,
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            Artifact::Native(_) => JitTier::Native,
        }
    }
}

fn build_artifact(p: &Program, tier: JitTier) -> Artifact {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    if tier == JitTier::Native {
        // On error, fall through to the portable tier.
        if let Ok(np) = NativeProgram::compile(p) {
            return Artifact::Native(np);
        }
    }
    let _ = tier;
    Artifact::Threaded(ThreadedProgram::compile(p))
}

/// One compiled direction (request or response).
struct CompiledDir {
    program: Program,
    specs: Vec<ThunkSpec>,
    /// One recycled-row slot per spec (only `InsertRow` specs use theirs).
    scratch: Vec<Vec<Value>>,
    artifact: Artifact,
    mem: AlignedMemory,
    /// `Arc::as_ptr` of the schema this direction was specialized against
    /// (`None` until the first message re-lowers with field types).
    bound_schema: Option<usize>,
    stats: LowerStats,
}

fn lower_direction(
    elems: &[ElemState],
    kind: MessageKind,
    schema: Option<&RpcSchema>,
    tier: JitTier,
) -> CompiledDir {
    let mut lw = Lowerer::new(schema);
    for (i, e) in elems.iter().enumerate() {
        let stmts = match kind {
            MessageKind::Request => &e.request,
            MessageKind::Response => &e.response,
        };
        lw.lower_element(i, &e.name, &e.tables, stmts);
    }
    let (program, specs, stats) = lw.finish();
    let artifact = build_artifact(&program, tier);
    let mem = AlignedMemory::new(program.slot_count as usize, program.arg_buf_len as usize);
    let scratch = vec![Vec::new(); specs.len()];
    CompiledDir {
        program,
        specs,
        scratch,
        artifact,
        mem,
        bound_schema: schema.map(|s| s as *const RpcSchema as usize),
        stats,
    }
}

/// An element (or fused chain) compiled to a JIT execution tier.
///
/// Drop-in replacement for `NativeEngine`/`FusedEngine`: same name, same
/// verdicts, same exported state encoding.
pub struct JitEngine {
    name: String,
    fused: bool,
    tier: JitTier,
    elems: Vec<ElemState>,
    request: CompiledDir,
    response: CompiledDir,
}

impl JitEngine {
    /// Compiles one element at `tier` (`Threaded` or `Native`).
    pub fn single(element: &ElementIr, opts: &CompileOpts, tier: JitTier) -> JitEngine {
        let elems = vec![build_elem(element, opts.seed, opts.replicas.clone())];
        Self::from_elems(element.name.clone(), false, elems, tier)
    }

    /// Compiles a fused chain: one program runs every element's statements
    /// with per-element RNG streams and fault attribution.
    pub fn fused(elements: &[ElementIr], opts: &CompileOpts, tier: JitTier) -> JitEngine {
        let elems = elements
            .iter()
            .enumerate()
            .map(|(i, e)| build_elem(e, element_seed(opts.seed, i), opts.replicas.clone()))
            .collect();
        let name = format!(
            "fused[{}]",
            elements
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        );
        Self::from_elems(name, true, elems, tier)
    }

    fn from_elems(name: String, fused: bool, elems: Vec<ElemState>, tier: JitTier) -> JitEngine {
        let request = lower_direction(&elems, MessageKind::Request, None, tier);
        let response = lower_direction(&elems, MessageKind::Response, None, tier);
        JitEngine {
            name,
            fused,
            tier,
            elems,
            request,
            response,
        }
    }

    /// The execution tier actually in use for the request direction (the
    /// native emitter can decline a program and fall back).
    pub fn effective_tier(&self) -> JitTier {
        self.request.artifact.tier()
    }

    /// Lowering statistics for one direction.
    pub fn stats(&self, kind: MessageKind) -> LowerStats {
        match kind {
            MessageKind::Request => self.request.stats,
            MessageKind::Response => self.response.stats,
        }
    }

    /// Annotated listing of one direction: plan notes, op IR, and (on the
    /// native tier) the machine code bytes per op.
    pub fn listing(&self, kind: MessageKind) -> String {
        let dir = match kind {
            MessageKind::Request => &self.request,
            MessageKind::Response => &self.response,
        };
        match &dir.artifact {
            Artifact::Threaded(_) => Listing::of_program(&dir.program).to_string(),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            Artifact::Native(np) => {
                Listing::with_code(&dir.program, np.code(), np.spans()).to_string()
            }
        }
    }

    fn dir_and_elems(&mut self, kind: MessageKind) -> (&mut CompiledDir, &mut Vec<ElemState>) {
        match kind {
            MessageKind::Request => (&mut self.request, &mut self.elems),
            MessageKind::Response => (&mut self.response, &mut self.elems),
        }
    }

    /// Pre-binds `schema` for one direction, exactly as processing the
    /// first message of that direction would, so [`Self::stats`] and
    /// [`Self::listing`] reflect the type-specialized lowering that runs
    /// in steady state (field loads with static types, the precompiled
    /// INSERT row build, the keyed join filter).
    pub fn bind_schema(&mut self, kind: MessageKind, schema: &RpcSchema) {
        let tier = self.tier;
        let (dir, elems) = self.dir_and_elems(kind);
        *dir = lower_direction(elems, kind, Some(schema), tier);
    }
}

impl Engine for JitEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        let tier = self.tier;
        let kind = msg.kind;
        let (dir, elems) = self.dir_and_elems(kind);
        // Type-feedback specialization: (re)lower against the message
        // schema the first time we see it, so field reads and compares get
        // static types. One recompile per direction in steady state.
        let schema_key = msg.schema.as_ref() as *const RpcSchema as usize;
        if dir.bound_schema != Some(schema_key) {
            *dir = lower_direction(elems, kind, Some(msg.schema.as_ref()), tier);
        }
        let mut env = JitEnv {
            fault: 0,
            msg: msg as *mut RpcMessage,
            elems: elems.as_mut_ptr(),
            n_elems: elems.len(),
            specs: dir.specs.as_ptr(),
            n_specs: dir.specs.len(),
            scratch: dir.scratch.as_mut_ptr(),
            fault_err: None,
            verdict: None,
        };
        let mut ctx = VmCtx::new(
            &mut env as *mut JitEnv as *mut c_void,
            expr_tramp,
            stmt_tramp,
        );
        let (slots, args) = dir.mem.regions_mut();
        let code = dir.artifact.run(&mut ctx, slots, args);
        if let Err(which) = dir.mem.check() {
            panic!("jit memory corruption in {}: {which}", self.name);
        }
        match code {
            ret::FORWARD => Verdict::Forward,
            ret::VERDICT => env.verdict.take().unwrap_or(Verdict::Forward),
            ret::DROP => Verdict::Drop,
            other => match ret::decode_fault(other) {
                Some((elem, kind)) => {
                    let e: ExecError = match kind {
                        ret::FAULT_OVERFLOW => EvalError::Overflow.into(),
                        ret::FAULT_DIV_ZERO => EvalError::DivideByZero.into(),
                        _ => env.fault_err.take().unwrap_or_else(|| {
                            EvalError::TypeError("unknown jit fault".into()).into()
                        }),
                    };
                    let name = self
                        .elems
                        .get(elem)
                        .map(|s| s.name.as_str())
                        .unwrap_or(&self.name);
                    Verdict::Abort {
                        code: ABORT_INTERNAL,
                        message: format!("element {name} fault: {e}"),
                    }
                }
                None => Verdict::Abort {
                    code: ABORT_INTERNAL,
                    message: format!("jit: invalid return code {other}"),
                },
            },
        }
    }

    fn export_state(&self) -> Vec<u8> {
        let export_one = |st: &ElemState| {
            let mut enc = Encoder::new();
            enc.put_varint(st.tables.len() as u64);
            for t in &st.tables {
                enc.put_bytes(&t.snapshot());
            }
            enc.into_bytes()
        };
        if self.fused {
            // Mirror FusedEngine: outer count, then one image per element.
            let mut enc = Encoder::new();
            enc.put_varint(self.elems.len() as u64);
            for st in &self.elems {
                enc.put_bytes(&export_one(st));
            }
            enc.into_bytes()
        } else {
            export_one(&self.elems[0])
        }
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        fn import_one(st: &mut ElemState, image: &[u8]) -> Result<(), String> {
            let mut dec = Decoder::new(image);
            let count = dec.get_varint().map_err(|e| e.to_string())?;
            if count as usize != st.tables.len() {
                return Err(format!(
                    "image has {count} tables, engine has {}",
                    st.tables.len()
                ));
            }
            for t in &mut st.tables {
                let bytes = dec.get_bytes().map_err(|e| e.to_string())?;
                t.restore(bytes).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        if self.fused {
            let mut dec = Decoder::new(image);
            let count = dec.get_varint().map_err(|e| e.to_string())?;
            if count as usize != self.elems.len() {
                return Err("fused state arity mismatch".into());
            }
            for st in &mut self.elems {
                let bytes = dec.get_bytes().map_err(|e| e.to_string())?;
                import_one(st, bytes)?;
            }
            Ok(())
        } else {
            import_one(&mut self.elems[0], image)
        }
    }
}

// ---------------------------------------------------------------------------
// Tier selection
// ---------------------------------------------------------------------------

/// Resolves the effective tier: the `ADN_JIT` env var overrides the
/// requested tier; `Auto` means native where available, else threaded.
pub fn resolve_tier(requested: JitTier) -> JitTier {
    static ENV: OnceLock<Option<JitTier>> = OnceLock::new();
    let over = *ENV.get_or_init(|| {
        std::env::var("ADN_JIT")
            .ok()
            .and_then(|s| JitTier::from_env_str(&s))
    });
    match over.unwrap_or(requested) {
        JitTier::Auto => {
            if native_available() {
                JitTier::Native
            } else {
                JitTier::Threaded
            }
        }
        t => t,
    }
}

/// Compiles one element at the tier chosen by `opts.jit` / `ADN_JIT`.
/// This is the production entry point; `compile_element` remains for code
/// that needs the concrete interpreter type.
pub fn compile_engine(element: &ElementIr, opts: &CompileOpts) -> Box<dyn Engine> {
    match resolve_tier(opts.jit) {
        JitTier::Interp => Box::new(compile_element(element, opts)),
        tier => Box::new(JitEngine::single(element, opts, tier)),
    }
}

/// Compiles a fused chain at the tier chosen by `opts.jit` / `ADN_JIT`.
pub fn compile_fused_engine(elements: &[ElementIr], opts: &CompileOpts) -> Box<dyn Engine> {
    match resolve_tier(opts.jit) {
        JitTier::Interp => Box::new(compile_fused(elements, opts)),
        tier => Box::new(JitEngine::fused(elements, opts, tier)),
    }
}

/// JIT eligibility report for one element, used by the V0006 lint: how
/// much of each direction runs inline vs escapes to interpreter thunks.
/// Pass the message schemas when known — type-specialized lowering (fast
/// INSERT rows, keyed join filters) only engages against a schema, so
/// stats without one overstate the escape count.
pub fn jit_eligibility(
    element: &ElementIr,
    req: Option<&RpcSchema>,
    resp: Option<&RpcSchema>,
) -> (LowerStats, LowerStats) {
    let opts = CompileOpts::default();
    let mut e = JitEngine::single(element, &opts, JitTier::Threaded);
    if let Some(s) = req {
        e.bind_schema(MessageKind::Request, s);
    }
    if let Some(s) = resp {
        e.bind_schema(MessageKind::Response, s);
    }
    (
        e.stats(MessageKind::Request),
        e.stats(MessageKind::Response),
    )
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn lower_src(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn request(object_id: u64, username: &str, payload: &[u8]) -> RpcMessage {
        let (req, _) = schemas();
        RpcMessage::request(1, 1, req)
            .with("object_id", object_id)
            .with("username", username)
            .with("payload", payload.to_vec())
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string) init {
                ('alice', 'W'), ('bob', 'R')
            };
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;

    fn tiers() -> Vec<JitTier> {
        let mut t = vec![JitTier::Threaded];
        if native_available() {
            t.push(JitTier::Native);
        }
        t
    }

    #[test]
    fn jit_engine_matches_interpreter_on_acl() {
        for tier in tiers() {
            let ir = lower_src(ACL);
            let mut interp = compile_element(&ir, &CompileOpts::default());
            let mut jit = JitEngine::single(&ir, &CompileOpts::default(), tier);
            for (i, user) in ["alice", "bob", "eve", "alice"].iter().enumerate() {
                let mut a = request(i as u64, user, b"x");
                let mut b = a.clone();
                assert_eq!(
                    Engine::process(&mut interp, &mut a),
                    jit.process(&mut b),
                    "verdict diverged for {user} on {tier:?}"
                );
                assert_eq!(a.fields, b.fields);
            }
            assert_eq!(interp.export_state(), jit.export_state());
        }
    }

    #[test]
    fn jit_matches_interpreter_rng_stream() {
        let src = "element F(p: f64 = 0.3) { on request { ABORT(3, 'fault') WHERE random() < p; SELECT * FROM input; } }";
        for tier in tiers() {
            let ir = lower_src(src);
            let opts = CompileOpts {
                seed: 7,
                ..Default::default()
            };
            let mut interp = compile_element(&ir, &opts);
            let mut jit = JitEngine::single(&ir, &opts, tier);
            for i in 0..500 {
                let mut a = request(i, "alice", b"x");
                let mut b = a.clone();
                assert_eq!(
                    Engine::process(&mut interp, &mut a),
                    jit.process(&mut b),
                    "rng stream diverged at {i} on {tier:?}"
                );
            }
        }
    }

    #[test]
    fn jit_inline_arithmetic_and_faults() {
        // Overflow and division faults must carry the interpreter's exact
        // abort message.
        let src = "element E() { on request { SET object_id = input.object_id / 0; SELECT * FROM input; } }";
        for tier in tiers() {
            let ir = lower_src(src);
            let mut interp = compile_element(&ir, &CompileOpts::default());
            let mut jit = JitEngine::single(&ir, &CompileOpts::default(), tier);
            let mut a = request(1, "alice", b"x");
            let mut b = a.clone();
            let va = Engine::process(&mut interp, &mut a);
            let vb = jit.process(&mut b);
            assert_eq!(va, vb, "fault verdicts diverge on {tier:?}");
            assert!(matches!(vb, Verdict::Abort { code: 13, .. }));
        }
    }

    #[test]
    fn jit_set_field_with_inline_value() {
        let src = "element E() { on request { SET object_id = input.object_id * 2 WHERE input.object_id > 10; SELECT * FROM input; } }";
        for tier in tiers() {
            let ir = lower_src(src);
            let mut interp = compile_element(&ir, &CompileOpts::default());
            let mut jit = JitEngine::single(&ir, &CompileOpts::default(), tier);
            for v in [0u64, 10, 11, 1000, u64::MAX / 2 + 5] {
                let mut a = request(v, "alice", b"x");
                let mut b = a.clone();
                assert_eq!(Engine::process(&mut interp, &mut a), jit.process(&mut b));
                assert_eq!(a.fields, b.fields, "fields diverge for {v}");
            }
        }
    }

    #[test]
    fn fused_jit_matches_fused_interpreter() {
        let elements = vec![
            lower_src(ACL),
            lower_src("element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }"),
        ];
        for tier in tiers() {
            let mut interp = compile_fused(&elements, &CompileOpts::default());
            let mut jit = JitEngine::fused(&elements, &CompileOpts::default(), tier);
            assert_eq!(Engine::name(&interp), jit.name());
            for i in 0..50 {
                let user = if i % 3 == 0 { "alice" } else { "bob" };
                let mut a = request(i, user, &[i as u8; 64]);
                let mut b = a.clone();
                assert_eq!(Engine::process(&mut interp, &mut a), jit.process(&mut b));
                assert_eq!(a.fields, b.fields);
            }
            assert_eq!(interp.export_state(), jit.export_state());
            // And the images are interchangeable.
            let img = jit.export_state();
            let mut fresh = JitEngine::fused(&elements, &CompileOpts::default(), tier);
            fresh.import_state(&img).unwrap();
            assert_eq!(fresh.export_state(), img);
        }
    }

    #[test]
    fn noop_selects_are_eliminated() {
        let ir = lower_src("element N() { on request { SELECT * FROM input; } }");
        let e = JitEngine::single(&ir, &CompileOpts::default(), JitTier::Threaded);
        assert_eq!(e.stats(MessageKind::Request).eliminated, 1);
        assert_eq!(e.stats(MessageKind::Request).escapes, 0);
    }

    #[test]
    fn listing_has_notes_and_code() {
        let ir = lower_src(
            "element E() { on request { DROP WHERE input.object_id > 100; SELECT * FROM input; } }",
        );
        let mut e = JitEngine::single(&ir, &CompileOpts::default(), *tiers().last().unwrap());
        // Bind the schema so the compare inlines.
        let mut msg = request(5, "alice", b"x");
        assert_eq!(e.process(&mut msg), Verdict::Forward);
        let text = e.listing(MessageKind::Request);
        assert!(text.contains("drop"), "{text}");
        if e.effective_tier() == JitTier::Native {
            assert!(
                text.contains('|'),
                "native listing should carry bytes: {text}"
            );
        }
    }

    #[test]
    fn tier_resolution_respects_interp() {
        let ir = lower_src("element N() { on request { SELECT * FROM input; } }");
        let eng = compile_engine(
            &ir,
            &CompileOpts {
                jit: JitTier::Interp,
                ..Default::default()
            },
        );
        assert_eq!(eng.name(), "N");
    }
}
