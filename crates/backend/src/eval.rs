//! The reference IR-expression evaluator.
//!
//! Used by the native engine (and as the semantic oracle the eBPF and P4
//! simulators are property-tested against). Evaluation never panics;
//! runtime faults (overflow, division by zero, UDF failure) surface as
//! [`ExecError`] and the engine aborts the message with code 13 (internal).

use adn_ir::expr::{eval_binop, eval_cast, eval_unop, EvalError, IrExpr};
use adn_rpc::value::Value;

use crate::udf_impl::{UdfError, UdfRuntime};

/// Runtime evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Operator-level fault.
    Eval(EvalError),
    /// UDF-level fault.
    Udf(UdfError),
    /// A joined-row column was referenced with no row bound (compiler bug).
    NoRowBound,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Eval(e) => write!(f, "{e}"),
            ExecError::Udf(e) => write!(f, "{e}"),
            ExecError::NoRowBound => write!(f, "column reference with no row bound"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

impl From<UdfError> for ExecError {
    fn from(e: UdfError) -> Self {
        ExecError::Udf(e)
    }
}

/// Evaluates `expr` against message `fields`, an optional joined state
/// `row`, and the engine's UDF runtime.
pub fn eval(
    expr: &IrExpr,
    fields: &[Value],
    row: Option<&[Value]>,
    udf: &mut UdfRuntime,
) -> Result<Value, ExecError> {
    Ok(eval_cow(expr, fields, row, udf)?.into_owned())
}

/// Borrow-when-possible evaluation. Leaf references (constants, message
/// fields, joined-row columns) are returned borrowed; only computation
/// (UDFs, arithmetic, casts) allocates. This keeps the per-message cost of
/// predicate-heavy elements (ACL lookups, filters) allocation-free.
pub fn eval_cow<'a>(
    expr: &'a IrExpr,
    fields: &'a [Value],
    row: Option<&'a [Value]>,
    udf: &mut UdfRuntime,
) -> Result<std::borrow::Cow<'a, Value>, ExecError> {
    use std::borrow::Cow;
    Ok(match expr {
        IrExpr::Const(v) => Cow::Borrowed(v),
        IrExpr::Field(i) => Cow::Borrowed(&fields[*i]),
        IrExpr::Col(c) => Cow::Borrowed(&row.ok_or(ExecError::NoRowBound)?[*c]),
        IrExpr::Udf { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_cow(a, fields, row, udf)?.into_owned());
            }
            Cow::Owned(udf.call(name, &vals)?)
        }
        IrExpr::Cast { to, inner } => {
            let v = eval_cow(inner, fields, row, udf)?;
            Cow::Owned(eval_cast(*to, &v)?)
        }
        IrExpr::Unary { op, operand } => {
            let v = eval_cow(operand, fields, row, udf)?;
            Cow::Owned(eval_unop(*op, &v)?)
        }
        IrExpr::Binary { op, left, right } => {
            use adn_ir::expr::IrBinOp;
            match op {
                IrBinOp::And => match eval_cow(left, fields, row, udf)?.as_ref() {
                    Value::Bool(false) => Cow::Owned(Value::Bool(false)),
                    Value::Bool(true) => {
                        let r = eval_cow(right, fields, row, udf)?;
                        match r.as_ref() {
                            Value::Bool(b) => Cow::Owned(Value::Bool(*b)),
                            other => {
                                return Err(EvalError::TypeError(format!("AND on {other}")).into())
                            }
                        }
                    }
                    other => return Err(EvalError::TypeError(format!("AND on {other}")).into()),
                },
                IrBinOp::Or => match eval_cow(left, fields, row, udf)?.as_ref() {
                    Value::Bool(true) => Cow::Owned(Value::Bool(true)),
                    Value::Bool(false) => {
                        let r = eval_cow(right, fields, row, udf)?;
                        match r.as_ref() {
                            Value::Bool(b) => Cow::Owned(Value::Bool(*b)),
                            other => {
                                return Err(EvalError::TypeError(format!("OR on {other}")).into())
                            }
                        }
                    }
                    other => return Err(EvalError::TypeError(format!("OR on {other}")).into()),
                },
                other => {
                    let l = eval_cow(left, fields, row, udf)?;
                    let r = eval_cow(right, fields, row, udf)?;
                    Cow::Owned(eval_binop(*other, &l, &r)?)
                }
            }
        }
        IrExpr::Case { arms, otherwise } => {
            for (cond, value) in arms {
                if eval_cow(cond, fields, row, udf)?.is_truthy() {
                    return eval_cow(value, fields, row, udf);
                }
            }
            match otherwise {
                Some(e) => eval_cow(e, fields, row, udf)?,
                // CASE with no matching arm and no ELSE yields false (the
                // only context this can reach is a predicate).
                None => Cow::Owned(Value::Bool(false)),
            }
        }
    })
}

/// Evaluates a predicate; non-boolean results are an error. Allocation-free
/// for comparison/logic trees over fields, columns, and constants.
pub fn eval_pred(
    expr: &IrExpr,
    fields: &[Value],
    row: Option<&[Value]>,
    udf: &mut UdfRuntime,
) -> Result<bool, ExecError> {
    match eval_cow(expr, fields, row, udf)?.as_ref() {
        Value::Bool(b) => Ok(*b),
        other => Err(EvalError::TypeError(format!("predicate yielded {other}, not bool")).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_ir::expr::{IrBinOp, IrUnOp};

    fn rt() -> UdfRuntime {
        UdfRuntime::new(1)
    }

    #[test]
    fn field_and_const() {
        let fields = vec![Value::U64(5), Value::Str("x".into())];
        let e = IrExpr::Binary {
            op: IrBinOp::Add,
            left: Box::new(IrExpr::Field(0)),
            right: Box::new(IrExpr::Const(Value::U64(3))),
        };
        assert_eq!(eval(&e, &fields, None, &mut rt()).unwrap(), Value::U64(8));
    }

    #[test]
    fn col_requires_row() {
        let e = IrExpr::Col(0);
        assert_eq!(eval(&e, &[], None, &mut rt()), Err(ExecError::NoRowBound));
        let row = vec![Value::Str("W".into())];
        assert_eq!(
            eval(&e, &[], Some(&row), &mut rt()).unwrap(),
            Value::Str("W".into())
        );
    }

    #[test]
    fn short_circuit_and_skips_rhs_errors() {
        // false AND (1/0 == 1) must not fault.
        let e = IrExpr::Binary {
            op: IrBinOp::And,
            left: Box::new(IrExpr::Const(Value::Bool(false))),
            right: Box::new(IrExpr::Binary {
                op: IrBinOp::Eq,
                left: Box::new(IrExpr::Binary {
                    op: IrBinOp::Div,
                    left: Box::new(IrExpr::Const(Value::U64(1))),
                    right: Box::new(IrExpr::Const(Value::U64(0))),
                }),
                right: Box::new(IrExpr::Const(Value::U64(1))),
            }),
        };
        assert_eq!(eval(&e, &[], None, &mut rt()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_or() {
        let e = IrExpr::Binary {
            op: IrBinOp::Or,
            left: Box::new(IrExpr::Const(Value::Bool(true))),
            right: Box::new(IrExpr::Unary {
                op: IrUnOp::Not,
                operand: Box::new(IrExpr::Const(Value::U64(1))), // would fault
            }),
        };
        assert_eq!(eval(&e, &[], None, &mut rt()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn udf_called_through_eval() {
        let e = IrExpr::Udf {
            name: "len".into(),
            args: vec![IrExpr::Field(0)],
        };
        let fields = vec![Value::Bytes(vec![1, 2, 3])];
        assert_eq!(eval(&e, &fields, None, &mut rt()).unwrap(), Value::U64(3));
    }

    #[test]
    fn case_without_match_or_else_is_false() {
        let e = IrExpr::Case {
            arms: vec![(
                IrExpr::Const(Value::Bool(false)),
                IrExpr::Const(Value::U64(1)),
            )],
            otherwise: None,
        };
        assert_eq!(eval(&e, &[], None, &mut rt()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn pred_rejects_non_bool() {
        let e = IrExpr::Const(Value::U64(1));
        assert!(eval_pred(&e, &[], None, &mut rt()).is_err());
        let e = IrExpr::Const(Value::Bool(true));
        assert!(eval_pred(&e, &[], None, &mut rt()).unwrap());
    }

    #[test]
    fn runtime_faults_are_errors() {
        let e = IrExpr::Binary {
            op: IrBinOp::Div,
            left: Box::new(IrExpr::Const(Value::U64(1))),
            right: Box::new(IrExpr::Const(Value::U64(0))),
        };
        assert!(matches!(
            eval(&e, &[], None, &mut rt()),
            Err(ExecError::Eval(EvalError::DivideByZero))
        ));
    }
}
