//! Engine adapters: run eBPF-sim and P4-sim programs behind the uniform
//! [`Engine`] interface so the data plane hosts them exactly like software
//! engines. The deployment layer picks the adapter matching the placement
//! decision; the processor code never knows the difference.

use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::transport::EndpointAddr;
use adn_wire::codec::{Decoder, Encoder};

use crate::ebpf::{self, EbpfElement, EbpfMaps, EbpfVerdict, RouteDecision};
use crate::p4::{P4Pipeline, P4Tables, P4Verdict};
use crate::udf_impl::UdfRuntime;

/// An eBPF-compiled element behind the Engine interface.
pub struct EbpfEngine {
    name: String,
    element: EbpfElement,
    maps: EbpfMaps,
    udf: UdfRuntime,
    replicas: Vec<EndpointAddr>,
}

impl EbpfEngine {
    /// Wraps a compiled element.
    pub fn new(element: EbpfElement, seed: u64, replicas: Vec<EndpointAddr>) -> Self {
        Self {
            name: format!("ebpf:{}", element.name),
            maps: EbpfMaps::for_element(&element),
            element,
            udf: UdfRuntime::new(seed),
            replicas,
        }
    }

    /// Read access to the maps (tests, telemetry).
    pub fn maps(&self) -> &EbpfMaps {
        &self.maps
    }
}

impl Engine for EbpfEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        let prog = match msg.kind {
            MessageKind::Request => &self.element.request,
            MessageKind::Response => &self.element.response,
        };
        let mut route = RouteDecision::default();
        let verdict = ebpf::execute(
            prog,
            &mut msg.fields,
            &mut self.maps,
            &mut self.udf,
            &mut route,
        );
        if let Some(hash) = route.key_hash {
            if !self.replicas.is_empty() {
                msg.dst = self.replicas[(hash % self.replicas.len() as u64) as usize];
            }
        }
        match verdict {
            EbpfVerdict::Forward => Verdict::Forward,
            EbpfVerdict::Drop => Verdict::Drop,
            EbpfVerdict::Abort { code } => Verdict::Abort {
                code,
                message: "aborted by ebpf element".to_owned(),
            },
        }
    }

    fn export_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.maps.maps.len() as u64);
        for map in &self.maps.maps {
            // Deterministic order for byte-stable snapshots.
            let mut entries: Vec<(&u64, &u64)> = map.iter().collect();
            entries.sort();
            enc.put_varint(entries.len() as u64);
            for (k, v) in entries {
                enc.put_varint(*k);
                enc.put_varint(*v);
            }
        }
        enc.into_bytes()
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(image);
        let count = dec.get_varint().map_err(|e| e.to_string())? as usize;
        if count != self.maps.maps.len() {
            return Err("map count mismatch".into());
        }
        let mut maps = Vec::with_capacity(count);
        for _ in 0..count {
            let entries = dec.get_varint().map_err(|e| e.to_string())?;
            let mut map = std::collections::HashMap::new();
            for _ in 0..entries {
                let k = dec.get_varint().map_err(|e| e.to_string())?;
                let v = dec.get_varint().map_err(|e| e.to_string())?;
                map.insert(k, v);
            }
            maps.push(map);
        }
        self.maps.maps = maps;
        Ok(())
    }
}

/// A P4-compiled element behind the Engine interface. The switch itself has
/// no general CPU; this adapter is the *model* of the switch forwarding
/// plane, and its tables are only written through [`SwitchEngine::tables_mut`]
/// (the control-plane channel).
pub struct SwitchEngine {
    name: String,
    pipeline: P4Pipeline,
    tables: P4Tables,
    replicas: Vec<EndpointAddr>,
}

impl SwitchEngine {
    /// Wraps a compiled pipeline with its initial table entries.
    pub fn new(pipeline: P4Pipeline, replicas: Vec<EndpointAddr>) -> Self {
        Self {
            name: format!("p4:{}", pipeline.name),
            tables: pipeline.initial_tables.clone(),
            pipeline,
            replicas,
        }
    }

    /// Control-plane access to the match tables.
    pub fn tables_mut(&mut self) -> &mut P4Tables {
        &mut self.tables
    }
}

impl Engine for SwitchEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        let stages = match msg.kind {
            MessageKind::Request => &self.pipeline.request,
            MessageKind::Response => &self.pipeline.response,
        };
        let P4Verdict {
            dropped,
            abort_code,
            route_hash,
        } = crate::p4::execute(stages, &self.tables, &mut msg.fields);
        if let Some(hash) = route_hash {
            if !self.replicas.is_empty() {
                msg.dst = self.replicas[(hash % self.replicas.len() as u64) as usize];
            }
        }
        if dropped {
            return Verdict::Drop;
        }
        if let Some(code) = abort_code {
            return Verdict::Abort {
                code,
                message: "aborted by switch element".to_owned(),
            };
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::{Value, ValueType};

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("user_id", ValueType::U64)
                    .field("object_id", ValueType::U64)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn lower(src: &str) -> adn_ir::ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn request(user: u64, oid: u64) -> RpcMessage {
        let (req, _) = schemas();
        RpcMessage::request(1, 1, req)
            .with("user_id", user)
            .with("object_id", oid)
    }

    #[test]
    fn ebpf_engine_enforces_acl_and_snapshots() {
        let element = lower(
            r#"element NumAcl() {
                state acl(user_id: u64 key, allowed: u64) init { (1, 1), (2, 0) };
                on request {
                    SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                    WHERE acl.allowed == 1;
                }
            }"#,
        );
        let (req, resp) = schemas();
        let types_req: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let types_resp: Vec<ValueType> = resp.fields().iter().map(|f| f.ty).collect();
        let compiled = ebpf::compile_for_schema(&element, &types_req, &types_resp).unwrap();
        let mut engine = EbpfEngine::new(compiled, 0, vec![]);
        let mut ok = request(1, 5);
        assert_eq!(engine.process(&mut ok), Verdict::Forward);
        let mut denied = request(2, 5);
        assert_eq!(engine.process(&mut denied), Verdict::Drop);

        let image = engine.export_state();
        let mut other = EbpfEngine::new(
            ebpf::compile_for_schema(&element, &types_req, &types_resp).unwrap(),
            0,
            vec![],
        );
        other.import_state(&image).unwrap();
        assert_eq!(other.export_state(), image);
        assert!(other.import_state(&[9]).is_err());
    }

    #[test]
    fn ebpf_engine_routes_like_native() {
        let element =
            lower("element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }");
        let (req, resp) = schemas();
        let types_req: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let types_resp: Vec<ValueType> = resp.fields().iter().map(|f| f.ty).collect();
        let compiled = ebpf::compile_for_schema(&element, &types_req, &types_resp).unwrap();
        let mut e = EbpfEngine::new(compiled, 0, vec![100, 200, 300]);
        let mut native = crate::native::compile_element(
            &element,
            &crate::native::CompileOpts {
                seed: 0,
                replicas: vec![100, 200, 300],
                ..Default::default()
            },
        );
        use adn_rpc::engine::Engine as _;
        for oid in 0..50 {
            let mut m1 = request(1, oid);
            let mut m2 = m1.clone();
            e.process(&mut m1);
            native.process(&mut m2);
            assert_eq!(m1.dst, m2.dst, "replica choice diverged for {oid}");
        }
    }

    #[test]
    fn switch_engine_runs_pipeline() {
        let element = lower(
            "element Fw() { on request { DROP WHERE input.object_id == 13; SELECT * FROM input; } }",
        );
        let pipeline = crate::p4::compile(&element).unwrap();
        let mut engine = SwitchEngine::new(pipeline, vec![]);
        let mut blocked = request(1, 13);
        assert_eq!(engine.process(&mut blocked), Verdict::Drop);
        let mut ok = request(1, 14);
        assert_eq!(engine.process(&mut ok), Verdict::Forward);
    }

    #[test]
    fn switch_table_updates_take_effect() {
        let element = lower(
            r#"element NumAcl() {
                state acl(user_id: u64 key, allowed: u64) init { (1, 1) };
                on request {
                    SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                    WHERE acl.allowed == 1;
                }
            }"#,
        );
        let pipeline = crate::p4::compile(&element).unwrap();
        let mut engine = SwitchEngine::new(pipeline, vec![]);
        let mut unknown = request(9, 1);
        assert_eq!(engine.process(&mut unknown), Verdict::Drop);
        // Control plane installs a new entry.
        engine.tables_mut().tables[0].push((Value::U64(9), crate::p4::Action::Continue));
        let mut now_ok = request(9, 1);
        assert_eq!(engine.process(&mut now_ok), Verdict::Forward);
    }
}
