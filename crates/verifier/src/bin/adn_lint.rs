//! `adn-lint` — static verification for ADN element sources.
//!
//! Lints `.adn` files (or directories of them) through every layer:
//! lex/parse/typecheck (`E00xx`), chain dataflow verification (`V00xx`),
//! an audit of what the optimizer would do to the chain (`A00xx`), and —
//! with `--ebpf` — the offload verifier (`B00xx`, reported as warnings
//! here since "not offloadable" only costs performance, not correctness).
//!
//! All elements in one file are linted as one chain, in file order,
//! against the standard demo schemas (`object_id`, `username`, `payload`
//! requests; `ok`, `payload` responses).
//!
//! Exit status: 0 clean, 1 diagnostics reported (errors, or warnings
//! under `--deny-warnings`), 2 usage or I/O failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use adn_dsl::diag::{Diagnostic, Severity};
use adn_dsl::parser::parse_program;
use adn_dsl::typecheck::check_element;
use adn_ir::{lower_element, optimize, ChainIr, ElementIr, PassConfig};
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;
use adn_verifier::{absint, audit_headers, audit_report, ebpf, verify_chain, ChainVerifyOptions};

const USAGE: &str = "usage: adn-lint [options] <file.adn | dir>...
options:
  --json            emit one JSON object per diagnostic instead of text
  --deny-warnings   exit with status 1 on warnings, not only errors
  --shard-field N   check state partitionability against request field N
  --ebpf            report which elements would not offload to eBPF
  --ebpf-disasm     dump each element's encoded eBPF programs: disassembly,
                    per-block abstract states, and the offload verdict
  --jit-audit       warn on elements that escape the JIT fast path (V0006)
  --jit-dump        dump each element's JIT program: plan notes, op IR, and
                    (on x86-64) the emitted machine code bytes per op
  --catalog         also lint every element in the standard catalog
  -h, --help        show this help";

struct Options {
    json: bool,
    deny_warnings: bool,
    shard_field: Option<usize>,
    ebpf: bool,
    ebpf_disasm: bool,
    jit_audit: bool,
    jit_dump: bool,
    catalog: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        shard_field: None,
        ebpf: false,
        ebpf_disasm: false,
        jit_audit: false,
        jit_dump: false,
        catalog: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--ebpf" => opts.ebpf = true,
            "--ebpf-disasm" => opts.ebpf_disasm = true,
            "--jit-audit" => opts.jit_audit = true,
            "--jit-dump" => opts.jit_dump = true,
            "--catalog" => opts.catalog = true,
            "--shard-field" => {
                let v = args.next().ok_or("--shard-field needs a field index")?;
                opts.shard_field = Some(v.parse().map_err(|_| format!("bad field index {v:?}"))?);
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() && !opts.catalog {
        return Err("no inputs given".into());
    }
    Ok(opts)
}

fn collect_adn_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() || entry.extension().is_some_and(|x| x == "adn") {
                collect_adn_files(&entry, out)?;
            }
        }
        Ok(())
    } else if path.is_file() {
        out.push(path.to_path_buf());
        Ok(())
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    let req = Arc::new(
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .expect("demo request schema"),
    );
    let resp = Arc::new(
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .expect("demo response schema"),
    );
    (req, resp)
}

#[derive(Default)]
struct Tally {
    errors: usize,
    warnings: usize,
}

impl Tally {
    /// Prints `diag` against `source` (the text its span indexes into) and
    /// counts it.
    fn emit(&mut self, opts: &Options, diag: &Diagnostic, origin: &str, source: &str) {
        match diag.severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
        if opts.json {
            println!("{}", diag.to_json(origin, Some(source)));
        } else {
            println!("{}", diag.render(origin, source));
        }
    }
}

/// Lints one source unit (a file or the catalog pseudo-unit). The unit's
/// elements form one chain.
fn lint_unit(opts: &Options, origin: &str, source: &str, tally: &mut Tally) {
    let (req, resp) = schemas();

    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            tally.emit(opts, &e.to_diagnostic(), origin, source);
            return;
        }
    };

    // Front end: typecheck and lower each element. Spans from this stage
    // index into the unit's own text.
    let mut lowered: Vec<ElementIr> = Vec::new();
    let mut frontend_clean = true;
    for element in &program.elements {
        let checked = match check_element(element, &req, &resp) {
            Ok(c) => c,
            Err(e) => {
                tally.emit(opts, &e.to_diagnostic(), origin, source);
                frontend_clean = false;
                continue;
            }
        };
        match lower_element(&checked, &[], &req, &resp) {
            Ok(ir) => lowered.push(ir),
            Err(e) => {
                let diag = Diagnostic::error(
                    adn_dsl::diag::codes::INVALID_CONTEXT,
                    format!("element `{}` does not lower: {e}", element.name),
                );
                tally.emit(opts, &diag, origin, source);
                frontend_clean = false;
            }
        }
    }
    if !frontend_clean {
        return; // chain-level results would be noise on a partial chain
    }

    let chain = ChainIr::new(lowered, req, resp);

    // Chain dataflow lints. Spans index into the element's canonical
    // source, so render against that, labelled `origin:Element`.
    let copts = ChainVerifyOptions {
        shard_field: opts.shard_field,
        jit_audit: opts.jit_audit,
    };
    for finding in verify_chain(&chain, &copts) {
        match finding.element {
            Some(i) => {
                let e = &chain.elements[i];
                let label = format!("{origin}:{}", e.name);
                tally.emit(opts, &finding.diagnostic, &label, &e.source);
            }
            None => tally.emit(opts, &finding.diagnostic, origin, ""),
        }
    }

    // Optimizer audit: run the default passes, then re-validate the report
    // and every minimal header the optimized chain implies.
    let (optimized, report) = optimize(chain.clone(), &PassConfig::default());
    for diag in audit_report(&chain, &optimized, &report) {
        tally.emit(opts, &diag, origin, "");
    }
    for diag in audit_headers(&optimized) {
        tally.emit(opts, &diag, origin, "");
    }

    // Offload report: B-codes are demoted to warnings here — an element
    // that stays on a native processor is slower, not wrong.
    if opts.ebpf {
        let policy = ebpf::EbpfPolicy::default();
        for element in &chain.elements {
            if let Err(diags) = ebpf::audit_element(element, &policy) {
                for mut diag in diags {
                    diag.severity = Severity::Warning;
                    let label = format!("{origin}:{}", element.name);
                    tally.emit(opts, &diag, &label, &element.source);
                }
            }
        }
    }

    if opts.ebpf_disasm {
        dump_ebpf_disasm(origin, &chain);
    }

    if opts.jit_dump {
        dump_jit(origin, &chain);
    }
}

/// Dumps the compiled JIT program for every element in the chain: the
/// lowering statistics line, then the annotated listing — plan notes, op
/// IR, and (when the native tier is available) the machine code bytes
/// emitted for each op.
fn dump_jit(origin: &str, chain: &ChainIr) {
    use adn_backend::jit::{resolve_tier, JitEngine, JitTier};
    use adn_backend::native::CompileOpts;
    use adn_rpc::message::MessageKind;

    let tier = resolve_tier(JitTier::Auto);
    for element in &chain.elements {
        let mut engine = JitEngine::single(element, &CompileOpts::default(), tier);
        engine.bind_schema(MessageKind::Request, &chain.request_schema);
        engine.bind_schema(MessageKind::Response, &chain.response_schema);
        for kind in [MessageKind::Request, MessageKind::Response] {
            let dir = match kind {
                MessageKind::Request => "request",
                MessageKind::Response => "response",
            };
            let st = engine.stats(kind);
            println!(
                ";; {origin}:{} {dir} — tier {:?}: {} inline op(s), {} fast-path stmt(s), {} escape(s), {} eliminated",
                element.name,
                engine.effective_tier(),
                st.inline_ops,
                st.fast_stmts,
                st.escapes,
                st.eliminated,
            );
            print!("{}", engine.listing(kind));
        }
    }
}

/// Dumps the encoded eBPF programs for every offloadable element in the
/// chain: the real-ISA disassembly with the abstract interpreter's entry
/// state printed above each basic block, then the verdict line whose cost
/// bounds the placement solver consumes.
fn dump_ebpf_disasm(origin: &str, chain: &ChainIr) {
    use adn_backend::{ebpf as kernel, isa};

    for element in &chain.elements {
        let compiled = match kernel::compile(element) {
            Ok(c) => c,
            Err(why) => {
                println!(";; {origin}:{}: not offloadable: {why}", element.name);
                continue;
            }
        };
        for (dir, prog) in [
            ("request", &compiled.request),
            ("response", &compiled.response),
        ] {
            let assembled = match isa::assemble(prog) {
                Ok(a) => a,
                Err(why) => {
                    println!(
                        ";; {origin}:{} {dir}: does not assemble: {why}",
                        element.name
                    );
                    continue;
                }
            };
            let analysis = absint::analyze(
                &assembled.insns,
                &absint::AbsintOptions {
                    num_maps: compiled.map_inits.len(),
                    ctx_bytes: None,
                },
            );
            println!(
                ";; {origin}:{} {dir} — {} slot(s), {} block(s), {} pruned edge(s)",
                element.name,
                assembled.insns.len(),
                analysis.block_states.len(),
                analysis.pruned_edges
            );
            let mut pc = 0;
            while pc < assembled.insns.len() {
                for (bi, b) in analysis.block_states.iter().enumerate() {
                    if b.start == pc {
                        println!(";;   block {bi} @ {pc}: {}", b.entry);
                    }
                }
                let (text, used) =
                    isa::disasm_one(assembled.insns[pc], assembled.insns.get(pc + 1).copied());
                println!("{pc:4}: {text}");
                pc += used;
            }
            let verdict = match &analysis.verdict {
                absint::OffloadVerdict::Safe { cost } => format!(
                    "safe — worst path {} insn(s), {} stack byte(s), {} helper call(s)",
                    cost.max_insns, cost.stack_bytes, cost.helper_calls
                ),
                absint::OffloadVerdict::Conditional {
                    required_ctx_bytes,
                    cost,
                } => format!(
                    "conditional on >= {required_ctx_bytes} context byte(s) — worst path {} insn(s), {} stack byte(s), {} helper call(s)",
                    cost.max_insns, cost.stack_bytes, cost.helper_calls
                ),
                absint::OffloadVerdict::Unsafe { diags } => format!(
                    "unsafe — {}",
                    diags
                        .iter()
                        .map(|d| d.code)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            println!(";; verdict: {verdict}");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("adn-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for path in &opts.paths {
        if let Err(e) = collect_adn_files(path, &mut files) {
            eprintln!("adn-lint: {e}");
            return ExitCode::from(2);
        }
    }

    let mut tally = Tally::default();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("adn-lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        lint_unit(&opts, &file.display().to_string(), &source, &mut tally);
    }

    if opts.catalog {
        // Each catalog element lints as its own single-element chain: the
        // catalog is a library, not a chain, so cross-element lints (dead
        // writes etc.) do not apply between entries.
        for (name, source) in adn_elements::sources::ALL {
            lint_unit(&opts, &format!("catalog:{name}"), source, &mut tally);
        }
    }

    if !opts.json {
        println!(
            "adn-lint: {} error(s), {} warning(s)",
            tally.errors, tally.warnings
        );
    }
    if tally.errors > 0 || (opts.deny_warnings && tally.warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
