//! Abstract value domain: per-register value tracking.
//!
//! Every register holds an [`AbsVal`]: a scalar with unsigned **and**
//! signed interval bounds ([`Range`]), or a pointer into one of the
//! interpreter's memory regions (context, stack, map handle, map value)
//! with a tracked offset range. This mirrors the kernel verifier's
//! `bpf_reg_state` (umin/umax/smin/smax without the tnum) and the `track`
//! layer of yesh0's ebpf-analyzer.

use adn_backend::isa::{self, BpfInsn};

/// Interval bounds on a 64-bit value, tracked in both signednesses.
/// Invariant: a `Range` produced by this module is never empty
/// (`umin <= umax && smin <= smax`) except transiently inside branch
/// refinement, where emptiness means "this edge is infeasible".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    pub umin: u64,
    pub umax: u64,
    pub smin: i64,
    pub smax: i64,
}

impl Range {
    pub fn exact(v: u64) -> Self {
        Range {
            umin: v,
            umax: v,
            smin: v as i64,
            smax: v as i64,
        }
    }

    pub fn unknown() -> Self {
        Range {
            umin: 0,
            umax: u64::MAX,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    /// Range from unsigned bounds, deriving signed bounds when the
    /// interval does not straddle the sign bit.
    pub fn unsigned(umin: u64, umax: u64) -> Self {
        let (smin, smax) = if umax <= i64::MAX as u64 || umin > i64::MAX as u64 {
            // Entirely non-negative, or entirely negative as i64: the cast
            // is monotone over the interval.
            (umin as i64, umax as i64)
        } else {
            (i64::MIN, i64::MAX)
        };
        Range {
            umin,
            umax,
            smin,
            smax,
        }
    }

    /// Range from signed bounds, deriving unsigned bounds when the
    /// interval does not straddle zero.
    pub fn signed(smin: i64, smax: i64) -> Self {
        let (umin, umax) = if smin >= 0 || smax < 0 {
            (smin as u64, smax as u64)
        } else {
            (0, u64::MAX)
        };
        Range {
            umin,
            umax,
            smin,
            smax,
        }
    }

    pub fn as_const(&self) -> Option<u64> {
        (self.umin == self.umax).then_some(self.umin)
    }

    pub fn is_empty(&self) -> bool {
        self.umin > self.umax || self.smin > self.smax
    }

    /// Least upper bound.
    pub fn join(a: Range, b: Range) -> Range {
        Range {
            umin: a.umin.min(b.umin),
            umax: a.umax.max(b.umax),
            smin: a.smin.min(b.smin),
            smax: a.smax.max(b.smax),
        }
    }

    /// Widening: any bound that moved since `prev` goes straight to the
    /// extreme, guaranteeing termination at join points.
    pub fn widen(prev: Range, next: Range) -> Range {
        Range {
            umin: if next.umin < prev.umin { 0 } else { next.umin },
            umax: if next.umax > prev.umax {
                u64::MAX
            } else {
                next.umax
            },
            smin: if next.smin < prev.smin {
                i64::MIN
            } else {
                next.smin
            },
            smax: if next.smax > prev.smax {
                i64::MAX
            } else {
                next.smax
            },
        }
    }

    /// Greatest lower bound — may be empty (used by branch refinement).
    pub fn intersect(a: Range, b: Range) -> Range {
        Range {
            umin: a.umin.max(b.umin),
            umax: a.umax.min(b.umax),
            smin: a.smin.max(b.smin),
            smax: a.smax.min(b.smax),
        }
    }

    fn add(a: Range, b: Range) -> Range {
        match (
            a.umax.checked_add(b.umax),
            a.smin.checked_add(b.smin),
            a.smax.checked_add(b.smax),
        ) {
            (Some(umax), Some(smin), Some(smax)) => Range {
                umin: a.umin + b.umin, // cannot overflow if umax + umax didn't
                umax,
                smin,
                smax,
            },
            _ => Range::unknown(),
        }
    }

    fn sub(a: Range, b: Range) -> Range {
        match (
            a.umin.checked_sub(b.umax),
            a.smin.checked_sub(b.smax),
            a.smax.checked_sub(b.smin),
        ) {
            (Some(umin), Some(smin), Some(smax)) => Range {
                umin,
                umax: a.umax - b.umin,
                smin,
                smax,
            },
            _ => Range::unknown(),
        }
    }

    /// Clamp to the low 32 bits (result of every ALU32 operation).
    fn low32(self) -> Range {
        if let Some(c) = self.as_const() {
            return Range::exact(c as u32 as u64);
        }
        if self.umax <= u32::MAX as u64 {
            return Range::unsigned(self.umin, self.umax);
        }
        Range::unsigned(0, u32::MAX as u64)
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(c) = self.as_const() {
            return write!(f, "{c}");
        }
        if *self == Range::unknown() {
            return write!(f, "?");
        }
        write!(f, "[{}..{}]", self.umin, self.umax)?;
        if (self.smin, self.smax) != (self.umin as i64, self.umax as i64) {
            write!(f, "/s[{}..{}]", self.smin, self.smax)?;
        }
        Ok(())
    }
}

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Never written on some path reaching here.
    Uninit,
    /// A plain number with interval bounds.
    Scalar(Range),
    /// Pointer into the message context; `off` is the byte offset range.
    CtxPtr { off: Range },
    /// Pointer into the 512-byte stack frame; `off` is relative to the
    /// frame *base* (0 = lowest byte, 512 = `r10`).
    StackPtr { off: Range },
    /// A map handle loaded by the pseudo `lddw` — only valid as a helper
    /// argument, never dereferenced.
    MapPtr { map: u32 },
    /// Verified non-null pointer to a map value (8 bytes).
    MapValPtr { map: u32, off: Range },
    /// `map_lookup_elem` result before its null check.
    MapValOrNull { map: u32 },
}

impl AbsVal {
    pub fn scalar_range(&self) -> Option<Range> {
        match self {
            AbsVal::Scalar(r) => Some(*r),
            _ => None,
        }
    }

    /// Least upper bound. Joining different kinds degrades to an unknown
    /// scalar — sound, because every later *pointer* use of a scalar is
    /// rejected by the memory checks.
    pub fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (a, b) {
            (Uninit, _) | (_, Uninit) => Uninit,
            (Scalar(x), Scalar(y)) => Scalar(Range::join(x, y)),
            (CtxPtr { off: x }, CtxPtr { off: y }) => CtxPtr {
                off: Range::join(x, y),
            },
            (StackPtr { off: x }, StackPtr { off: y }) => StackPtr {
                off: Range::join(x, y),
            },
            (MapPtr { map: m }, MapPtr { map: n }) if m == n => MapPtr { map: m },
            (MapValPtr { map: m, off: x }, MapValPtr { map: n, off: y }) if m == n => MapValPtr {
                map: m,
                off: Range::join(x, y),
            },
            (MapValOrNull { map: m }, MapValOrNull { map: n }) if m == n => MapValOrNull { map: m },
            _ => Scalar(Range::unknown()),
        }
    }

    /// Widening counterpart of [`AbsVal::join`].
    pub fn widen(prev: AbsVal, next: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (prev, next) {
            (Scalar(p), Scalar(n)) => Scalar(Range::widen(p, n)),
            (CtxPtr { off: p }, CtxPtr { off: n }) => CtxPtr {
                off: Range::widen(p, n),
            },
            (StackPtr { off: p }, StackPtr { off: n }) => StackPtr {
                off: Range::widen(p, n),
            },
            (MapValPtr { map: m, off: p }, MapValPtr { map: n, off: q }) if m == n => MapValPtr {
                map: m,
                off: Range::widen(p, q),
            },
            _ => next,
        }
    }
}

impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsVal::Uninit => write!(f, "uninit"),
            AbsVal::Scalar(r) => write!(f, "{r}"),
            AbsVal::CtxPtr { off } => write!(f, "ctx+{off}"),
            AbsVal::StackPtr { off } => write!(f, "fp@{off}"),
            AbsVal::MapPtr { map } => write!(f, "map#{map}"),
            AbsVal::MapValPtr { map, off } => write!(f, "mapval#{map}+{off}"),
            AbsVal::MapValOrNull { map } => write!(f, "mapval#{map}|null"),
        }
    }
}

/// Transfer function for a scalar ALU operation (both operands scalars).
/// `signed_off` selects the cpuv4 `sdiv`/`smod` variants.
pub fn alu_scalar(insn: BpfInsn, a: Range, b: Range) -> Range {
    let is64 = insn.class() == isa::BPF_ALU64;
    let signed = insn.off == isa::OFF_SDIV;
    let (a, b) = if is64 { (a, b) } else { (a.low32(), b.low32()) };
    let out = match insn.op() {
        isa::BPF_MOV => b,
        isa::BPF_ADD => {
            if is64 {
                Range::add(a, b)
            } else {
                // 32-bit wrap handled by the final low32 clamp.
                Range::add(a, b)
            }
        }
        isa::BPF_SUB => Range::sub(a, b),
        isa::BPF_MUL => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Range::exact(x.wrapping_mul(y)),
            _ => match a.umax.checked_mul(b.umax) {
                Some(hi) => Range::unsigned(a.umin.saturating_mul(b.umin), hi),
                None => Range::unknown(),
            },
        },
        isa::BPF_DIV if signed => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Range::exact(if y == 0 {
                0
            } else {
                (x as i64).wrapping_div(y as i64) as u64
            }),
            _ => Range::unknown(),
        },
        isa::BPF_DIV => {
            if let Some(c) = b.as_const() {
                match (a.umin.checked_div(c), a.umax.checked_div(c)) {
                    (Some(lo), Some(hi)) => Range::unsigned(lo, hi),
                    _ => Range::exact(0), // div by zero yields 0
                }
            } else {
                // Divisor ≥ 1 shrinks; divisor 0 yields 0.
                Range::unsigned(0, a.umax)
            }
        }
        isa::BPF_MOD if signed => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Range::exact(if y == 0 {
                x
            } else {
                (x as i64).wrapping_rem(y as i64) as u64
            }),
            _ => Range::unknown(),
        },
        isa::BPF_MOD => {
            if b.umin > 0 {
                Range::unsigned(0, a.umax.min(b.umax - 1))
            } else if let (Some(x), Some(0)) = (a.as_const(), b.as_const()) {
                Range::exact(x) // mod by zero leaves dst unchanged
            } else {
                // May be `mod 0` (dst unchanged) or a real mod.
                Range::join(a, Range::unsigned(0, b.umax.saturating_sub(1)))
            }
        }
        isa::BPF_AND => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Range::exact(x & y),
            _ => Range::unsigned(0, a.umax.min(b.umax)),
        },
        isa::BPF_OR | isa::BPF_XOR => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Range::exact(if insn.op() == isa::BPF_OR {
                x | y
            } else {
                x ^ y
            }),
            _ => {
                let hi = a.umax.max(b.umax);
                let bound = if hi >= 1 << 63 {
                    u64::MAX
                } else {
                    (hi + 1).next_power_of_two() - 1
                };
                let lo = if insn.op() == isa::BPF_OR {
                    a.umin.max(b.umin)
                } else {
                    0
                };
                Range::unsigned(lo, bound)
            }
        },
        isa::BPF_LSH => {
            let mask = if is64 { 63 } else { 31 };
            match b.as_const() {
                Some(s) => {
                    let s = s as u32 & mask;
                    match (a.as_const(), a.umax.checked_shl(s)) {
                        (Some(x), _) => Range::exact(if is64 {
                            x.wrapping_shl(s)
                        } else {
                            (x as u32).wrapping_shl(s) as u64
                        }),
                        (None, Some(hi)) if a.umax <= (u64::MAX >> s) => {
                            Range::unsigned(a.umin << s, hi)
                        }
                        _ => Range::unknown(),
                    }
                }
                None => Range::unknown(),
            }
        }
        isa::BPF_RSH => {
            let mask = if is64 { 63 } else { 31 };
            match b.as_const() {
                Some(s) => {
                    let s = s as u32 & mask;
                    Range::unsigned(a.umin >> s, a.umax >> s)
                }
                None => Range::unsigned(0, a.umax),
            }
        }
        isa::BPF_ARSH => {
            let mask = if is64 { 63 } else { 31 };
            match b.as_const() {
                Some(s) => {
                    let s = s as u32 & mask;
                    Range::signed(a.smin >> s, a.smax >> s)
                }
                None => Range::unknown(),
            }
        }
        isa::BPF_NEG => match a.as_const() {
            Some(x) => Range::exact((x as i64).wrapping_neg() as u64),
            None => Range::signed(
                a.smax.checked_neg().unwrap_or(i64::MIN),
                a.smin.checked_neg().unwrap_or(i64::MAX),
            ),
        },
        _ => Range::unknown(),
    };
    if is64 {
        out
    } else {
        out.low32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_backend::isa::{alu64_imm, alu64_reg, BPF_ADD, BPF_AND, BPF_DIV, BPF_RSH};

    #[test]
    fn unsigned_range_derives_signed_bounds() {
        let r = Range::unsigned(3, 10);
        assert_eq!((r.smin, r.smax), (3, 10));
        let straddle = Range::unsigned(0, u64::MAX);
        assert_eq!((straddle.smin, straddle.smax), (i64::MIN, i64::MAX));
    }

    #[test]
    fn add_overflow_degrades_to_unknown() {
        let near = Range::exact(u64::MAX - 1);
        let out = alu_scalar(alu64_imm(BPF_ADD, 1, 5), near, Range::exact(5));
        assert_eq!(out, Range::unknown());
        let ok = alu_scalar(alu64_imm(BPF_ADD, 1, 5), Range::exact(7), Range::exact(5));
        assert_eq!(ok.as_const(), Some(12));
    }

    #[test]
    fn and_bounds_by_smaller_operand() {
        let out = alu_scalar(
            alu64_reg(BPF_AND, 1, 2),
            Range::unknown(),
            Range::exact(0xff),
        );
        assert_eq!((out.umin, out.umax), (0, 0xff));
    }

    #[test]
    fn div_by_constant_scales_bounds() {
        let out = alu_scalar(
            alu64_imm(BPF_DIV, 1, 4),
            Range::unsigned(8, 40),
            Range::exact(4),
        );
        assert_eq!((out.umin, out.umax), (2, 10));
    }

    #[test]
    fn rsh_bounds_shift_down() {
        let out = alu_scalar(alu64_imm(BPF_RSH, 1, 8), Range::unknown(), Range::exact(8));
        assert_eq!((out.umin, out.umax), (0, u64::MAX >> 8));
    }

    #[test]
    fn widen_moves_changed_bounds_to_extremes() {
        let prev = Range::unsigned(0, 10);
        let next = Range::unsigned(0, 12);
        let w = Range::widen(prev, next);
        assert_eq!(w.umax, u64::MAX);
        assert_eq!(w.umin, 0);
    }

    #[test]
    fn join_of_mismatched_kinds_is_scalar() {
        let j = AbsVal::join(
            AbsVal::CtxPtr {
                off: Range::exact(0),
            },
            AbsVal::Scalar(Range::exact(3)),
        );
        assert_eq!(j, AbsVal::Scalar(Range::unknown()));
    }
}
