//! # Abstract interpretation over the real eBPF encoding
//!
//! A worklist interpreter over the basic-block CFG of an encoded program
//! ([`adn_backend::isa`]): every register carries an abstract value
//! ([`track::AbsVal`]) — a scalar interval or a typed pointer — stack
//! slots are tracked individually, conditional branches refine operand
//! ranges on each outgoing edge ([`branch::refine`]) and prune edges
//! proved infeasible, and join points widen after repeated visits.
//!
//! The output is an [`OffloadVerdict`]:
//!
//! * **Safe** — every memory access proved in bounds on every feasible
//!   path, with a [`CostBound`] (worst-case instructions, exact stack
//!   high-water mark, worst-case helper calls).
//! * **Conditional** — safe *provided* the runtime context buffer holds at
//!   least `required_ctx_bytes` (the program's context accesses are
//!   bounded but the analysis was not told the buffer size).
//! * **Unsafe** — a spanned diagnostic per defect, naming the offending
//!   instruction (disassembled) and the abstract state that broke it.
//!   Spans index instruction *slots*, not source bytes.
//!
//! Soundness over precision throughout: anything the transfer functions
//! cannot bound degrades to an unknown scalar, and every pointer use of
//! an unknown scalar is rejected.

pub mod blocks;
pub mod branch;
pub mod track;

use adn_backend::isa::{self, BpfInsn};
use adn_dsl::diag::{Diagnostic, Span};

use blocks::Cfg;
use track::{AbsVal, Range};

use crate::codes;

/// Stack slots tracked (512 bytes / 8 per slot).
const STACK_SLOTS: usize = (isa::STACK_SIZE as usize) / 8;

/// Joins tolerated at one block entry before widening kicks in. Forward-
/// only CFGs converge without it; the threshold guards termination if the
/// flow model ever admits cycles.
const WIDEN_AFTER: usize = 8;

/// Worst-case resource bounds proved for every feasible path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBound {
    /// Instructions on the longest feasible path (an `lddw` counts once).
    pub max_insns: usize,
    /// Exact stack high-water mark in bytes (deepest byte written below
    /// `r10`).
    pub stack_bytes: usize,
    /// Helper calls on the heaviest feasible path.
    pub helper_calls: usize,
}

/// The verdict the placement layer consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum OffloadVerdict {
    /// Proved safe; `cost` bounds hold on every feasible path.
    Safe { cost: CostBound },
    /// Safe iff the runtime context buffer is at least this large.
    Conditional {
        required_ctx_bytes: usize,
        cost: CostBound,
    },
    /// Proved unsafe; one spanned diagnostic per defect.
    Unsafe { diags: Vec<Diagnostic> },
}

impl OffloadVerdict {
    pub fn cost(&self) -> Option<CostBound> {
        match self {
            OffloadVerdict::Safe { cost } | OffloadVerdict::Conditional { cost, .. } => Some(*cost),
            OffloadVerdict::Unsafe { .. } => None,
        }
    }

    pub fn is_safe(&self) -> bool {
        !matches!(self, OffloadVerdict::Unsafe { .. })
    }
}

/// Rendered abstract state at one block entry (for `--ebpf-disasm`).
#[derive(Debug, Clone)]
pub struct BlockState {
    /// First instruction slot of the block.
    pub start: usize,
    /// Entry state, e.g. `r1=5 r9=ctx+0 r10=fp@512`. Empty string for
    /// blocks proved unreachable.
    pub entry: String,
}

/// Everything the analysis learned about one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub verdict: OffloadVerdict,
    /// Distinct helper IDs called on any reachable path, sorted.
    pub helpers: Vec<i32>,
    /// Per-block entry states in slot order.
    pub block_states: Vec<BlockState>,
    /// Conditional edges proved infeasible and excluded from the cost.
    pub pruned_edges: usize,
}

/// Analysis configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbsintOptions {
    /// Number of maps the program may reference via pseudo `lddw`.
    pub num_maps: usize,
    /// Context buffer size in bytes, when known. `None` turns in-bounds
    /// context accesses into a `Conditional` verdict carrying the
    /// required size.
    pub ctx_bytes: Option<usize>,
}

/// Machine state at one program point.
#[derive(Clone, PartialEq)]
struct AbsState {
    regs: [AbsVal; 11],
    /// One entry per 8-byte stack slot, index 0 = lowest byte. `None` is
    /// never-written; a partial or misaligned write degrades the covered
    /// slots to unknown scalars.
    stack: [Option<AbsVal>; STACK_SLOTS],
}

impl AbsState {
    fn entry() -> Self {
        let mut regs = [AbsVal::Uninit; 11];
        regs[1] = AbsVal::CtxPtr {
            off: Range::exact(0),
        };
        regs[isa::FP_REG as usize] = AbsVal::StackPtr {
            off: Range::exact(isa::STACK_SIZE as u64),
        };
        AbsState {
            regs,
            stack: [None; STACK_SLOTS],
        }
    }

    fn join(a: &AbsState, b: &AbsState) -> AbsState {
        let mut regs = [AbsVal::Uninit; 11];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = AbsVal::join(a.regs[i], b.regs[i]);
        }
        let mut stack = [None; STACK_SLOTS];
        for (i, slot) in stack.iter_mut().enumerate() {
            *slot = match (a.stack[i], b.stack[i]) {
                (Some(x), Some(y)) => Some(AbsVal::join(x, y)),
                _ => None,
            };
        }
        AbsState { regs, stack }
    }

    fn widen(prev: &AbsState, next: &AbsState) -> AbsState {
        let mut out = next.clone();
        for i in 0..11 {
            out.regs[i] = AbsVal::widen(prev.regs[i], next.regs[i]);
        }
        for i in 0..STACK_SLOTS {
            out.stack[i] = match (prev.stack[i], next.stack[i]) {
                (Some(p), Some(n)) => Some(AbsVal::widen(p, n)),
                (_, n) => n,
            };
        }
        out
    }

    fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, v) in self.regs.iter().enumerate() {
            if !matches!(v, AbsVal::Uninit) {
                parts.push(format!("r{i}={v}"));
            }
        }
        if parts.is_empty() {
            "(all uninit)".into()
        } else {
            parts.join(" ")
        }
    }
}

/// Global facts accumulated across all paths.
#[derive(Default)]
struct Effects {
    stack_watermark: usize,
    required_ctx_bytes: usize,
    helpers: std::collections::BTreeSet<i32>,
}

struct Interp<'a> {
    insns: &'a [BpfInsn],
    opts: AbsintOptions,
    eff: Effects,
}

/// Width in slots of the instruction at `pc`.
fn width_at(insns: &[BpfInsn], pc: usize) -> usize {
    if insns[pc].is_lddw() {
        2
    } else {
        1
    }
}

impl<'a> Interp<'a> {
    fn diag(&self, code: &'static str, pc: usize, detail: String) -> Diagnostic {
        let width = width_at(self.insns, pc) as u32;
        let text = isa::disasm_one(self.insns[pc], self.insns.get(pc + 1).copied()).0;
        Diagnostic::error(code, format!("slot {pc}: `{text}` — {detail}"))
            .with_span(Span::new(pc as u32, pc as u32 + width))
            .with_help("spans index instruction slots in the encoded program, not source bytes")
    }

    fn read_reg(&self, st: &AbsState, r: u8, pc: usize) -> Result<AbsVal, Diagnostic> {
        if r as usize >= st.regs.len() {
            return Err(self.diag(codes::EBPF_OOB, pc, format!("invalid register r{r}")));
        }
        match st.regs[r as usize] {
            AbsVal::Uninit => Err(self.diag(
                codes::EBPF_UNINIT,
                pc,
                format!("r{r} is uninitialized here"),
            )),
            v => Ok(v),
        }
    }

    fn write_reg(&self, st: &mut AbsState, r: u8, v: AbsVal, pc: usize) -> Result<(), Diagnostic> {
        if r >= isa::FP_REG {
            return Err(self.diag(
                codes::EBPF_OOB,
                pc,
                format!("write to read-only register r{r}"),
            ));
        }
        st.regs[r as usize] = v;
        Ok(())
    }

    /// Shifts a pointer-offset range by a signed scalar range, saturating
    /// to unknown when a bound escapes `u64` — the bounds check then
    /// rejects the access.
    fn shift(off: Range, d: Range) -> Range {
        let lo = off.umin as i128 + d.smin as i128;
        let hi = off.umax as i128 + d.smax as i128;
        if lo < 0 || hi > u64::MAX as i128 || lo > hi {
            Range::unknown()
        } else {
            Range::unsigned(lo as u64, hi as u64)
        }
    }

    /// Validates one memory access and applies its effect. `store` is the
    /// value written (`None` for loads); the return value is the loaded
    /// abstract value (unknown scalar except for precise stack fills).
    fn mem_access(
        &mut self,
        st: &mut AbsState,
        pc: usize,
        base: AbsVal,
        insn_off: i16,
        size: u64,
        store: Option<AbsVal>,
    ) -> Result<AbsVal, Diagnostic> {
        let d = Range::exact(insn_off as i64 as u64);
        match base {
            AbsVal::CtxPtr { off } => {
                if size != 8 {
                    return Err(self.diag(
                        codes::EBPF_OOB,
                        pc,
                        format!("context access must be 8 bytes, got {size}"),
                    ));
                }
                let total = Self::shift(off, d);
                let Some(end) = total.umax.checked_add(size) else {
                    return Err(self.diag(
                        codes::EBPF_OOB,
                        pc,
                        format!("context offset overflows (base {base})"),
                    ));
                };
                if let Some(c) = total.as_const() {
                    if c % 8 != 0 {
                        return Err(self.diag(
                            codes::EBPF_OOB,
                            pc,
                            format!("misaligned context access at offset {c}"),
                        ));
                    }
                }
                match self.opts.ctx_bytes {
                    Some(limit) if end as usize > limit => {
                        return Err(self.diag(
                            codes::EBPF_OOB,
                            pc,
                            format!(
                                "context access at ctx+{total} size {size} exceeds the \
                                 {limit}-byte context"
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        self.eff.required_ctx_bytes = self.eff.required_ctx_bytes.max(end as usize);
                    }
                }
                Ok(AbsVal::Scalar(Range::unknown()))
            }
            AbsVal::StackPtr { off } => {
                let total = Self::shift(off, d);
                let end = total.umax.checked_add(size);
                if end.is_none()
                    || end.unwrap() > isa::STACK_SIZE as u64
                    || total == Range::unknown()
                {
                    return Err(self.diag(
                        codes::EBPF_OOB,
                        pc,
                        format!(
                            "stack access at fp@{total} size {size} outside the \
                             {}-byte frame",
                            isa::STACK_SIZE
                        ),
                    ));
                }
                let first = (total.umin / 8) as usize;
                let last = ((total.umax + size - 1) / 8) as usize;
                let precise = total.as_const().is_some() && total.umin % 8 == 0 && size == 8;
                if let Some(val) = store {
                    let depth = isa::STACK_SIZE as usize - total.umin as usize;
                    self.eff.stack_watermark = self.eff.stack_watermark.max(depth);
                    if precise {
                        st.stack[first] = Some(val);
                    } else {
                        for s in &mut st.stack[first..=last] {
                            *s = Some(AbsVal::Scalar(Range::unknown()));
                        }
                    }
                    Ok(AbsVal::Uninit)
                } else if precise {
                    st.stack[first].ok_or_else(|| {
                        self.diag(
                            codes::EBPF_UNINIT,
                            pc,
                            format!("read of uninitialized stack slot fp@{}", total.umin),
                        )
                    })
                } else {
                    for (i, s) in st.stack[first..=last].iter().enumerate() {
                        if s.is_none() {
                            return Err(self.diag(
                                codes::EBPF_UNINIT,
                                pc,
                                format!(
                                    "read may touch uninitialized stack slot fp@{}",
                                    (first + i) * 8
                                ),
                            ));
                        }
                    }
                    Ok(AbsVal::Scalar(Range::unknown()))
                }
            }
            AbsVal::MapValPtr { map, off } => {
                let total = Self::shift(off, d);
                match total.umax.checked_add(size) {
                    Some(end) if end <= 8 && total != Range::unknown() => {
                        Ok(AbsVal::Scalar(Range::unknown()))
                    }
                    _ => Err(self.diag(
                        codes::EBPF_OOB,
                        pc,
                        format!(
                            "access at mapval#{map}+{total} size {size} exceeds the \
                             8-byte map value"
                        ),
                    )),
                }
            }
            AbsVal::MapValOrNull { map } => Err(self.diag(
                codes::EBPF_NULL_DEREF,
                pc,
                format!("mapval#{map}|null dereferenced without a null check"),
            )),
            AbsVal::MapPtr { map } => Err(self.diag(
                codes::EBPF_OOB,
                pc,
                format!("map handle map#{map} dereferenced"),
            )),
            AbsVal::Scalar(r) => {
                Err(self.diag(codes::EBPF_OOB, pc, format!("scalar {r} used as a pointer")))
            }
            AbsVal::Uninit => Err(self.diag(
                codes::EBPF_UNINIT,
                pc,
                "uninitialized register used as a pointer".into(),
            )),
        }
    }

    /// Checks that `r` points at a fully initialized 8-byte stack window
    /// (a helper key/value argument).
    fn check_helper_stack_arg(
        &mut self,
        st: &mut AbsState,
        pc: usize,
        r: u8,
        what: &str,
    ) -> Result<(), Diagnostic> {
        let v = self.read_reg(st, r, pc)?;
        match v {
            AbsVal::StackPtr { .. } => {
                self.mem_access(st, pc, v, 0, 8, None).map_err(|d| {
                    Diagnostic::error(
                        codes::EBPF_HELPER,
                        format!("{} (while checking helper {what} argument r{r})", d.message),
                    )
                    .with_span(
                        d.span
                            .unwrap_or_else(|| Span::new(pc as u32, pc as u32 + 1)),
                    )
                })?;
                Ok(())
            }
            other => Err(self.diag(
                codes::EBPF_HELPER,
                pc,
                format!("helper {what} argument r{r} must point at the stack, got {other}"),
            )),
        }
    }

    fn transfer_call(
        &mut self,
        st: &mut AbsState,
        pc: usize,
        helper: i32,
    ) -> Result<(), Diagnostic> {
        self.eff.helpers.insert(helper);
        let r0 = match helper {
            isa::HELPER_MAP_LOOKUP => {
                let AbsVal::MapPtr { map } = self.read_reg(st, 1, pc)? else {
                    return Err(self.diag(
                        codes::EBPF_HELPER,
                        pc,
                        format!("map_lookup r1 must be a map handle, got {}", st.regs[1]),
                    ));
                };
                self.check_helper_stack_arg(st, pc, 2, "key")?;
                AbsVal::MapValOrNull { map }
            }
            isa::HELPER_MAP_UPDATE => {
                let AbsVal::MapPtr { .. } = self.read_reg(st, 1, pc)? else {
                    return Err(self.diag(
                        codes::EBPF_HELPER,
                        pc,
                        format!("map_update r1 must be a map handle, got {}", st.regs[1]),
                    ));
                };
                self.check_helper_stack_arg(st, pc, 2, "key")?;
                self.check_helper_stack_arg(st, pc, 3, "value")?;
                AbsVal::Scalar(Range::exact(0))
            }
            isa::HELPER_MAP_DELETE => {
                let AbsVal::MapPtr { .. } = self.read_reg(st, 1, pc)? else {
                    return Err(self.diag(
                        codes::EBPF_HELPER,
                        pc,
                        format!("map_delete r1 must be a map handle, got {}", st.regs[1]),
                    ));
                };
                self.check_helper_stack_arg(st, pc, 2, "key")?;
                AbsVal::Scalar(Range::exact(0))
            }
            isa::HELPER_KTIME_GET_NS | isa::HELPER_GET_PRANDOM => AbsVal::Scalar(Range::unknown()),
            isa::HELPER_HASH_FIELD | isa::HELPER_LEN_FIELD => {
                let v = self.read_reg(st, 1, pc)?;
                let Some(field) = v.scalar_range().and_then(|r| r.as_const()) else {
                    return Err(self.diag(
                        codes::EBPF_HELPER,
                        pc,
                        format!("field-helper index r1 must be a known constant, got {v}"),
                    ));
                };
                let Some(end) = field
                    .checked_add(1)
                    .and_then(|f| f.checked_mul(isa::CTX_SLOT_BYTES as u64))
                else {
                    return Err(self.diag(
                        codes::EBPF_OOB,
                        pc,
                        format!("field index {field} overflows the context"),
                    ));
                };
                match self.opts.ctx_bytes {
                    Some(limit) if end as usize > limit => {
                        return Err(self.diag(
                            codes::EBPF_OOB,
                            pc,
                            format!("field index {field} exceeds the {limit}-byte context"),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        self.eff.required_ctx_bytes = self.eff.required_ctx_bytes.max(end as usize);
                    }
                }
                AbsVal::Scalar(Range::unknown())
            }
            isa::HELPER_ROUTE => {
                let v = self.read_reg(st, 1, pc)?;
                if v.scalar_range().is_none() {
                    return Err(self.diag(
                        codes::EBPF_HELPER,
                        pc,
                        format!("route argument r1 must be a scalar, got {v}"),
                    ));
                }
                AbsVal::Scalar(Range::exact(0))
            }
            other => {
                return Err(self.diag(
                    codes::EBPF_HELPER,
                    pc,
                    format!("unknown helper id {other:#x}"),
                ));
            }
        };
        st.regs[0] = r0;
        for r in 1..=5 {
            st.regs[r] = AbsVal::Uninit; // caller-saved, clobbered by the call
        }
        Ok(())
    }

    fn transfer_alu(
        &mut self,
        st: &mut AbsState,
        pc: usize,
        insn: BpfInsn,
    ) -> Result<(), Diagnostic> {
        let is64 = insn.class() == isa::BPF_ALU64;
        let op = insn.op();
        let b = if insn.is_reg_src() {
            self.read_reg(st, insn.src, pc)?
        } else {
            AbsVal::Scalar(Range::exact(insn.imm as i64 as u64))
        };

        if op == isa::BPF_MOV {
            let v = if is64 {
                b
            } else {
                // ALU32 mov zero-extends and never transports a pointer.
                AbsVal::Scalar(track::alu_scalar(
                    insn,
                    Range::exact(0),
                    b.scalar_range().unwrap_or_else(Range::unknown),
                ))
            };
            return self.write_reg(st, insn.dst, v, pc);
        }

        let a = self.read_reg(st, insn.dst, pc)?;

        // Pointer ± scalar keeps the pointer kind with a shifted offset
        // (64-bit only, matching what the kernel verifier permits).
        if is64 && matches!(op, isa::BPF_ADD | isa::BPF_SUB) {
            if let Some(d) = b.scalar_range() {
                let d = if op == isa::BPF_SUB {
                    Range::signed(
                        d.smax.checked_neg().unwrap_or(i64::MIN),
                        d.smin.checked_neg().unwrap_or(i64::MAX),
                    )
                } else {
                    d
                };
                let shifted = |off| Self::shift(off, d);
                let out = match a {
                    AbsVal::CtxPtr { off } => Some(AbsVal::CtxPtr { off: shifted(off) }),
                    AbsVal::StackPtr { off } => Some(AbsVal::StackPtr { off: shifted(off) }),
                    AbsVal::MapValPtr { map, off } => Some(AbsVal::MapValPtr {
                        map,
                        off: shifted(off),
                    }),
                    _ => None,
                };
                if let Some(v) = out {
                    return self.write_reg(st, insn.dst, v, pc);
                }
            }
            // ADD is commutative: scalar dst + pointer src is also a
            // pointer.
            if op == isa::BPF_ADD {
                if let Some(d) = a.scalar_range() {
                    let out = match b {
                        AbsVal::CtxPtr { off } => Some(AbsVal::CtxPtr {
                            off: Self::shift(off, d),
                        }),
                        AbsVal::StackPtr { off } => Some(AbsVal::StackPtr {
                            off: Self::shift(off, d),
                        }),
                        AbsVal::MapValPtr { map, off } => Some(AbsVal::MapValPtr {
                            map,
                            off: Self::shift(off, d),
                        }),
                        _ => None,
                    };
                    if let Some(v) = out {
                        return self.write_reg(st, insn.dst, v, pc);
                    }
                }
            }
        }

        // Everything else is scalar arithmetic; pointer operands degrade
        // to unknown scalars (sound — a later deref is rejected).
        let ra = a.scalar_range().unwrap_or_else(Range::unknown);
        let rb = b.scalar_range().unwrap_or_else(Range::unknown);
        let out = if op == isa::BPF_NEG {
            track::alu_scalar(insn, ra, ra)
        } else {
            track::alu_scalar(insn, ra, rb)
        };
        self.write_reg(st, insn.dst, AbsVal::Scalar(out), pc)
    }

    /// Applies one non-branch instruction. Returns the slots consumed.
    fn step(&mut self, st: &mut AbsState, pc: usize) -> Result<usize, Diagnostic> {
        let insn = self.insns[pc];
        match insn.class() {
            isa::BPF_LD if insn.is_lddw() => {
                let hi = self.insns[pc + 1];
                let v = if insn.src == isa::BPF_PSEUDO_MAP_FD {
                    let map = insn.imm as u32;
                    if map as usize >= self.opts.num_maps {
                        return Err(self.diag(
                            codes::EBPF_OOB,
                            pc,
                            format!(
                                "map {map} out of range (program declares {})",
                                self.opts.num_maps
                            ),
                        ));
                    }
                    AbsVal::MapPtr { map }
                } else {
                    let imm = (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    AbsVal::Scalar(Range::exact(imm))
                };
                self.write_reg(st, insn.dst, v, pc)?;
                Ok(2)
            }
            isa::BPF_ALU | isa::BPF_ALU64 => {
                self.transfer_alu(st, pc, insn)?;
                Ok(1)
            }
            isa::BPF_LDX => {
                let base = self.read_reg(st, insn.src, pc)?;
                let v = self.mem_access(st, pc, base, insn.off, insn.size_bytes() as u64, None)?;
                self.write_reg(st, insn.dst, v, pc)?;
                Ok(1)
            }
            isa::BPF_STX => {
                let base = self.read_reg(st, insn.dst, pc)?;
                let val = self.read_reg(st, insn.src, pc)?;
                self.mem_access(st, pc, base, insn.off, insn.size_bytes() as u64, Some(val))?;
                Ok(1)
            }
            isa::BPF_ST => {
                let base = self.read_reg(st, insn.dst, pc)?;
                let val = AbsVal::Scalar(Range::exact(insn.imm as i64 as u64));
                self.mem_access(st, pc, base, insn.off, insn.size_bytes() as u64, Some(val))?;
                Ok(1)
            }
            isa::BPF_JMP if insn.op() == isa::BPF_CALL => {
                self.transfer_call(st, pc, insn.imm)?;
                Ok(1)
            }
            _ => Err(self.diag(
                codes::EBPF_UNSUPPORTED,
                pc,
                format!("unsupported instruction (opcode {:#04x})", insn.opcode),
            )),
        }
    }

    /// Checks the state at `exit`: `r0` must hold a scalar verdict.
    fn check_exit(&self, st: &AbsState, pc: usize) -> Result<(), Diagnostic> {
        match st.regs[0] {
            AbsVal::Scalar(_) => Ok(()),
            AbsVal::Uninit => {
                Err(self.diag(codes::EBPF_UNINIT, pc, "r0 is uninitialized at exit".into()))
            }
            other => Err(self.diag(
                codes::EBPF_OOB,
                pc,
                format!("r0 holds {other} at exit — pointers cannot leak"),
            )),
        }
    }
}

/// Runs the abstract interpreter over an encoded program.
pub fn analyze(insns: &[BpfInsn], opts: &AbsintOptions) -> Analysis {
    let cfg = match blocks::build(insns) {
        Ok(cfg) => cfg,
        Err(msg) => {
            return Analysis {
                verdict: OffloadVerdict::Unsafe {
                    diags: vec![Diagnostic::error(
                        codes::EBPF_UNBOUNDED,
                        format!("control flow rejected: {msg}"),
                    )],
                },
                helpers: Vec::new(),
                block_states: Vec::new(),
                pruned_edges: 0,
            };
        }
    };

    let nb = cfg.blocks.len();
    let mut interp = Interp {
        insns,
        opts: *opts,
        eff: Effects::default(),
    };

    let mut entry: Vec<Option<AbsState>> = vec![None; nb];
    let mut joins = vec![0usize; nb];
    entry[0] = Some(AbsState::entry());

    // Feasible successor edges actually taken, for the cost pass.
    let mut feasible: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut pruned_edges = 0usize;
    let mut diags: Vec<Diagnostic> = Vec::new();

    let propagate =
        |entry: &mut Vec<Option<AbsState>>, joins: &mut Vec<usize>, succ: usize, st: AbsState| {
            match &entry[succ] {
                None => entry[succ] = Some(st),
                Some(prev) => {
                    let mut joined = AbsState::join(prev, &st);
                    if joined != *prev {
                        joins[succ] += 1;
                        if joins[succ] > WIDEN_AFTER {
                            joined = AbsState::widen(prev, &joined);
                        }
                        entry[succ] = Some(joined);
                    }
                }
            }
        };

    // Blocks are in topological order (cycles were rejected), so a single
    // in-order pass is a complete worklist run: every predecessor of block
    // `i` has index < `i` and is finished before `i` starts.
    for bi in 0..nb {
        let Some(start_state) = entry[bi].clone() else {
            continue; // unreachable (all incoming edges pruned)
        };
        let b = &cfg.blocks[bi];
        let mut st = start_state;
        let mut pc = b.start;
        let mut failed = false;

        // Straight-line body up to (not including) the terminator.
        while pc < b.term {
            match interp.step(&mut st, pc) {
                Ok(w) => pc += w,
                Err(d) => {
                    diags.push(d);
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            continue; // no propagation from a faulting block
        }

        // Terminator.
        let t = insns[b.term];
        let is_branch =
            matches!(t.class(), isa::BPF_JMP | isa::BPF_JMP32) && t.op() != isa::BPF_CALL;
        if !is_branch {
            // A block can end at a leader boundary with an ordinary insn.
            match interp.step(&mut st, b.term) {
                Ok(_) => {
                    if let Some(succ) = b.fall {
                        feasible[bi].push(succ);
                        propagate(&mut entry, &mut joins, succ, st);
                    }
                }
                Err(d) => diags.push(d),
            }
        } else {
            match t.op() {
                isa::BPF_EXIT => {
                    if let Err(d) = interp.check_exit(&st, b.term) {
                        diags.push(d);
                    }
                }
                isa::BPF_JA => {
                    if let Some(succ) = b.taken {
                        feasible[bi].push(succ);
                        propagate(&mut entry, &mut joins, succ, st);
                    }
                }
                _ => {
                    // Conditional: read operands, refine per edge.
                    let a = match interp.read_reg(&st, t.dst, b.term) {
                        Ok(v) => v,
                        Err(d) => {
                            diags.push(d);
                            continue;
                        }
                    };
                    let bv = if t.is_reg_src() {
                        match interp.read_reg(&st, t.src, b.term) {
                            Ok(v) => v,
                            Err(d) => {
                                diags.push(d);
                                continue;
                            }
                        }
                    } else {
                        AbsVal::Scalar(Range::exact(t.imm as i64 as u64))
                    };
                    let (taken, fall) = branch::refine(t, a, bv);
                    let apply = |edge: branch::Edge,
                                 succ: Option<usize>,
                                 entry: &mut Vec<Option<AbsState>>,
                                 joins: &mut Vec<usize>,
                                 feas: &mut Vec<usize>,
                                 pruned: &mut usize| {
                        let Some(succ) = succ else { return };
                        match edge {
                            None => *pruned += 1,
                            Some((ra, rb)) => {
                                let mut next = st.clone();
                                next.regs[t.dst as usize] = ra;
                                if t.is_reg_src() {
                                    next.regs[t.src as usize] = rb;
                                }
                                feas.push(succ);
                                propagate(entry, joins, succ, next);
                            }
                        }
                    };
                    let mut feas = std::mem::take(&mut feasible[bi]);
                    apply(
                        taken,
                        b.taken,
                        &mut entry,
                        &mut joins,
                        &mut feas,
                        &mut pruned_edges,
                    );
                    apply(
                        fall,
                        b.fall,
                        &mut entry,
                        &mut joins,
                        &mut feas,
                        &mut pruned_edges,
                    );
                    feasible[bi] = feas;
                }
            }
        }
    }

    // Render per-block entry states for the disassembly dump.
    let block_states: Vec<BlockState> = cfg
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| BlockState {
            start: b.start,
            entry: entry[i].as_ref().map(|s| s.render()).unwrap_or_default(),
        })
        .collect();

    let helpers: Vec<i32> = interp.eff.helpers.iter().copied().collect();

    if !diags.is_empty() {
        return Analysis {
            verdict: OffloadVerdict::Unsafe { diags },
            helpers,
            block_states,
            pruned_edges,
        };
    }

    let cost = cost_bounds(&cfg, &feasible, &entry, &interp.eff);
    let verdict = match (opts.ctx_bytes, interp.eff.required_ctx_bytes) {
        (None, need) if need > 0 => OffloadVerdict::Conditional {
            required_ctx_bytes: need,
            cost,
        },
        _ => OffloadVerdict::Safe { cost },
    };

    Analysis {
        verdict,
        helpers,
        block_states,
        pruned_edges,
    }
}

/// Longest feasible path from block 0 (instructions and helper calls),
/// plus the exact stack watermark. Blocks are in topological order, so a
/// single backward pass suffices.
fn cost_bounds(
    cfg: &Cfg,
    feasible: &[Vec<usize>],
    entry: &[Option<AbsState>],
    eff: &Effects,
) -> CostBound {
    let nb = cfg.blocks.len();
    let mut insns_to_exit = vec![0usize; nb];
    let mut helpers_to_exit = vec![0usize; nb];
    for i in (0..nb).rev() {
        if entry[i].is_none() {
            continue; // unreachable
        }
        let b = &cfg.blocks[i];
        let best_i = feasible[i]
            .iter()
            .map(|&s| insns_to_exit[s])
            .max()
            .unwrap_or(0);
        let best_h = feasible[i]
            .iter()
            .map(|&s| helpers_to_exit[s])
            .max()
            .unwrap_or(0);
        insns_to_exit[i] = b.insn_count + best_i;
        helpers_to_exit[i] = b.helper_calls + best_h;
    }
    CostBound {
        max_insns: insns_to_exit[0],
        stack_bytes: eff.stack_watermark,
        helper_calls: helpers_to_exit[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_backend::isa::{
        alu64_imm, alu64_reg, call, exit, ja, jmp_imm, lddw_map, ldx, mov64_imm, mov64_reg, stx,
        BPF_ADD, BPF_DW, BPF_JEQ, BPF_JGE, BPF_JLT, BPF_SUB, CTX_REG, FP_REG, HELPER_MAP_LOOKUP,
        STACK_SIZE,
    };

    fn prog(mut body: Vec<BpfInsn>) -> Vec<BpfInsn> {
        let mut v = vec![mov64_reg(CTX_REG, 1)];
        v.append(&mut body);
        v
    }

    #[test]
    fn trivial_program_is_safe_with_exact_cost() {
        let p = prog(vec![mov64_imm(0, 0), exit()]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Safe { cost } = a.verdict else {
            panic!("expected safe, got {:?}", a.verdict);
        };
        assert_eq!(cost.max_insns, 3);
        assert_eq!(cost.stack_bytes, 0);
        assert_eq!(cost.helper_calls, 0);
    }

    #[test]
    fn ctx_read_without_known_size_is_conditional() {
        let p = prog(vec![ldx(BPF_DW, 1, CTX_REG, 16), mov64_imm(0, 0), exit()]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Conditional {
            required_ctx_bytes, ..
        } = a.verdict
        else {
            panic!("expected conditional, got {:?}", a.verdict);
        };
        assert_eq!(required_ctx_bytes, 24);
    }

    #[test]
    fn ctx_read_beyond_known_size_is_unsafe() {
        let p = prog(vec![ldx(BPF_DW, 1, CTX_REG, 16), mov64_imm(0, 0), exit()]);
        let a = analyze(
            &p,
            &AbsintOptions {
                num_maps: 0,
                ctx_bytes: Some(16),
            },
        );
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_OOB);
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn branch_pruning_proves_guarded_access_safe() {
        // r2 = ctx[0]; if r2 >= 2 goto exit0; r3 = ctx[8*r2 + 8] — the
        // guard bounds r2 < 2 so the scaled access stays inside 24 bytes.
        let p = prog(vec![
            ldx(BPF_DW, 2, CTX_REG, 0),
            jmp_imm(BPF_JGE, 2, 2, 3),
            alu64_imm(adn_backend::isa::BPF_LSH, 2, 3),
            alu64_reg(BPF_ADD, 2, CTX_REG),
            ldx(BPF_DW, 3, 2, 8),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(
            &p,
            &AbsintOptions {
                num_maps: 0,
                ctx_bytes: Some(24),
            },
        );
        assert!(
            a.verdict.is_safe(),
            "guarded scaled access should verify: {:?}",
            a.verdict
        );
    }

    #[test]
    fn unguarded_scaled_ctx_access_is_unsafe() {
        // Same as above but the guard is missing: r2 is unbounded.
        let p = prog(vec![
            ldx(BPF_DW, 2, CTX_REG, 0),
            alu64_imm(adn_backend::isa::BPF_LSH, 2, 3),
            alu64_reg(BPF_ADD, 2, CTX_REG),
            ldx(BPF_DW, 3, 2, 8),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(
            &p,
            &AbsintOptions {
                num_maps: 0,
                ctx_bytes: Some(24),
            },
        );
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_OOB);
    }

    #[test]
    fn oob_reachable_only_via_unpruned_branch_is_caught_with_span() {
        // if ctx[0] < 100 goto +1; (feasible) then OOB stack write.
        let bad_slot = 3usize; // slot of the stx below (after prologue + ldx + jmp)
        let p = prog(vec![
            ldx(BPF_DW, 2, CTX_REG, 0),
            jmp_imm(BPF_JLT, 2, 100, 1),
            stx(BPF_DW, FP_REG, 2, -(STACK_SIZE as i16) - 8),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_OOB);
        let span = diags[0].span.unwrap();
        assert_eq!(span.start as usize, bad_slot);
    }

    #[test]
    fn pruned_branch_excludes_dead_oob_and_its_cost() {
        // r2 = 5; if r2 >= 10 { OOB } else { ret } — the OOB arm is
        // infeasible, so the program is safe and its cost excludes it.
        let p = prog(vec![
            mov64_imm(2, 5),
            jmp_imm(BPF_JGE, 2, 10, 2),
            mov64_imm(0, 0),
            exit(),
            stx(BPF_DW, FP_REG, 2, 0), // fp@512 write: OOB if reached
            exit(),
        ]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Safe { cost } = a.verdict else {
            panic!("expected safe, got {:?}", a.verdict);
        };
        assert_eq!(a.pruned_edges, 1);
        assert_eq!(cost.max_insns, 5); // prologue, mov, jmp, mov, exit
    }

    #[test]
    fn stack_watermark_is_exact() {
        let p = prog(vec![
            mov64_imm(2, 7),
            stx(BPF_DW, FP_REG, 2, -24),
            ldx(BPF_DW, 3, FP_REG, -24),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Safe { cost } = a.verdict else {
            panic!("expected safe, got {:?}", a.verdict);
        };
        assert_eq!(cost.stack_bytes, 24);
    }

    #[test]
    fn uninit_stack_read_is_rejected() {
        let p = prog(vec![ldx(BPF_DW, 2, FP_REG, -8), mov64_imm(0, 0), exit()]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_UNINIT);
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let mut body = vec![mov64_imm(2, 1), stx(BPF_DW, FP_REG, 2, -8)];
        body.extend(lddw_map(1, 0));
        body.extend([
            mov64_reg(2, FP_REG),
            alu64_imm(BPF_ADD, 2, -8),
            call(HELPER_MAP_LOOKUP),
            ldx(BPF_DW, 3, 0, 0), // deref without null check
            mov64_imm(0, 0),
            exit(),
        ]);
        let p = prog(body);
        let a = analyze(
            &p,
            &AbsintOptions {
                num_maps: 1,
                ctx_bytes: None,
            },
        );
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_NULL_DEREF);
    }

    #[test]
    fn null_checked_lookup_verifies_and_counts_helper() {
        let mut body = vec![mov64_imm(2, 1), stx(BPF_DW, FP_REG, 2, -8)];
        body.extend(lddw_map(1, 0));
        body.extend([
            mov64_reg(2, FP_REG),
            alu64_imm(BPF_ADD, 2, -8),
            call(HELPER_MAP_LOOKUP),
            jmp_imm(BPF_JEQ, 0, 0, 1),
            ldx(BPF_DW, 3, 0, 0),
            mov64_imm(0, 0),
            exit(),
        ]);
        let p = prog(body);
        let a = analyze(
            &p,
            &AbsintOptions {
                num_maps: 1,
                ctx_bytes: None,
            },
        );
        let OffloadVerdict::Safe { cost } = a.verdict else {
            panic!("expected safe, got {:?}", a.verdict);
        };
        assert_eq!(cost.helper_calls, 1);
        assert_eq!(a.helpers, vec![HELPER_MAP_LOOKUP]);
        assert_eq!(cost.stack_bytes, 8);
    }

    #[test]
    fn r0_uninitialized_at_exit_is_rejected() {
        let p = prog(vec![exit()]);
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_UNINIT);
    }

    #[test]
    fn backward_branch_is_unbounded() {
        let p = vec![mov64_reg(CTX_REG, 1), mov64_imm(0, 0), ja(-2), exit()];
        let a = analyze(&p, &AbsintOptions::default());
        let OffloadVerdict::Unsafe { diags } = a.verdict else {
            panic!("expected unsafe, got {:?}", a.verdict);
        };
        assert_eq!(diags[0].code, codes::EBPF_UNBOUNDED);
    }

    #[test]
    fn cost_takes_longest_feasible_path() {
        // Two arms of different lengths; worst case is the longer one.
        let p = prog(vec![
            ldx(BPF_DW, 2, CTX_REG, 0),
            jmp_imm(BPF_JEQ, 2, 0, 3),
            alu64_imm(BPF_ADD, 2, 1),
            alu64_imm(BPF_SUB, 2, 1),
            ja(0),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(&p, &AbsintOptions::default());
        let cost = a.verdict.cost().expect("should be analyzable");
        // prologue + ldx + jmp + add + sub + ja + mov + exit = 8
        assert_eq!(cost.max_insns, 8);
    }

    #[test]
    fn block_states_are_rendered_for_reachable_blocks() {
        let p = prog(vec![
            mov64_imm(2, 3),
            jmp_imm(BPF_JEQ, 2, 3, 0),
            mov64_imm(0, 0),
            exit(),
        ]);
        let a = analyze(&p, &AbsintOptions::default());
        assert!(a.block_states.len() >= 2);
        assert!(a.block_states[0].entry.contains("r1=ctx+0"));
        assert!(a.block_states[1].entry.contains("r2=3"));
    }
}
