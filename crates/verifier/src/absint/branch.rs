//! Branch refinement: conditional jumps narrow operand ranges on both
//! outgoing edges, and edges whose refined ranges are empty are pruned as
//! infeasible — the mechanism that lets `if r1 < 8` prove a later
//! context access in bounds, and that keeps dead error paths out of the
//! worst-case cost.

use adn_backend::isa::{self, BpfInsn};

use super::track::{AbsVal, Range};

/// Refined `(a, b)` operand values on one edge, or `None` when the edge
/// is infeasible.
pub type Edge = Option<(AbsVal, AbsVal)>;

/// Splits the abstract operand values of a conditional jump into the
/// taken-edge and fall-through-edge refinements.
pub fn refine(insn: BpfInsn, a: AbsVal, b: AbsVal) -> (Edge, Edge) {
    // The canonical null-check: a `MapValOrNull` compared against 0.
    if let (AbsVal::MapValOrNull { map }, Some(0)) =
        (a, b.scalar_range().and_then(|r| r.as_const()))
    {
        let null = (AbsVal::Scalar(Range::exact(0)), b);
        let nonnull = (
            AbsVal::MapValPtr {
                map,
                off: Range::exact(0),
            },
            b,
        );
        match insn.op() {
            isa::BPF_JEQ => return (Some(null), Some(nonnull)),
            isa::BPF_JNE => return (Some(nonnull), Some(null)),
            _ => {}
        }
    }

    let (Some(ra), Some(rb)) = (a.scalar_range(), b.scalar_range()) else {
        // Pointer comparisons (or uninit operands — reported elsewhere):
        // no refinement, both edges feasible.
        return (Some((a, b)), Some((a, b)));
    };
    if insn.class() == isa::BPF_JMP32 {
        // 32-bit compares see only the low halves; refining the 64-bit
        // range from them is unsound in general, so skip.
        return (Some((a, b)), Some((a, b)));
    }

    let (taken, fall) = split(insn.op(), ra, rb);
    let pack = |e: Option<(Range, Range)>| -> Edge {
        e.map(|(x, y)| (AbsVal::Scalar(x), AbsVal::Scalar(y)))
    };
    (pack(taken), pack(fall))
}

fn nonempty(a: Range, b: Range) -> Option<(Range, Range)> {
    (!a.is_empty() && !b.is_empty()).then_some((a, b))
}

/// Refined `(dst, src)` ranges on one edge, or `None` when the edge is
/// infeasible.
type RangePair = Option<(Range, Range)>;

/// Range split for one comparison: `(taken, fall)`.
fn split(op: u8, a: Range, b: Range) -> (RangePair, RangePair) {
    match op {
        isa::BPF_JEQ => {
            let both = Range::intersect(a, b);
            let eq = nonempty(both, both);
            let ne = ne_split(a, b);
            (eq, ne)
        }
        isa::BPF_JNE => {
            let both = Range::intersect(a, b);
            let eq = nonempty(both, both);
            let ne = ne_split(a, b);
            (ne, eq)
        }
        isa::BPF_JGT => (ugt(a, b), ule(a, b)),
        isa::BPF_JLE => (ule(a, b), ugt(a, b)),
        isa::BPF_JLT => (ult(a, b), uge(a, b)),
        isa::BPF_JGE => (uge(a, b), ult(a, b)),
        isa::BPF_JSGT => (sgt(a, b), sle(a, b)),
        isa::BPF_JSLE => (sle(a, b), sgt(a, b)),
        isa::BPF_JSLT => (slt(a, b), sge(a, b)),
        isa::BPF_JSGE => (sge(a, b), slt(a, b)),
        isa::BPF_JSET => {
            // `a & b != 0` taken. Only the constant-vs-constant case is
            // decidable; otherwise leave both edges unrefined.
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                if x & y != 0 {
                    (Some((a, b)), None)
                } else {
                    (None, Some((a, b)))
                }
            } else {
                (Some((a, b)), Some((a, b)))
            }
        }
        _ => (Some((a, b)), Some((a, b))),
    }
}

/// `a != b`: refinable only when one side is a constant at an end of the
/// other's interval — then the interval shrinks by one.
fn ne_split(a: Range, b: Range) -> Option<(Range, Range)> {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return (x != y).then_some((a, b));
    }
    let mut a = a;
    if let Some(y) = b.as_const() {
        if a.umin == y && a.umin < a.umax {
            a = Range::intersect(a, Range::unsigned(y + 1, u64::MAX));
        } else if a.umax == y && a.umin < a.umax {
            a = Range::intersect(a, Range::unsigned(0, y - 1));
        }
    }
    let mut b = b;
    if let Some(x) = a.as_const() {
        if b.umin == x && b.umin < b.umax {
            b = Range::intersect(b, Range::unsigned(x + 1, u64::MAX));
        } else if b.umax == x && b.umin < b.umax {
            b = Range::intersect(b, Range::unsigned(0, x - 1));
        }
    }
    nonempty(a, b)
}

fn ugt(a: Range, b: Range) -> Option<(Range, Range)> {
    // a > b: a ≥ b.umin+1, b ≤ a.umax-1.
    if b.umin == u64::MAX || a.umax == 0 {
        return None;
    }
    nonempty(
        Range::intersect(a, Range::unsigned(b.umin + 1, u64::MAX)),
        Range::intersect(b, Range::unsigned(0, a.umax - 1)),
    )
}

fn uge(a: Range, b: Range) -> Option<(Range, Range)> {
    nonempty(
        Range::intersect(a, Range::unsigned(b.umin, u64::MAX)),
        Range::intersect(b, Range::unsigned(0, a.umax)),
    )
}

fn ult(a: Range, b: Range) -> Option<(Range, Range)> {
    ugt(b, a).map(|(y, x)| (x, y))
}

fn ule(a: Range, b: Range) -> Option<(Range, Range)> {
    uge(b, a).map(|(y, x)| (x, y))
}

fn sgt(a: Range, b: Range) -> Option<(Range, Range)> {
    if b.smin == i64::MAX || a.smax == i64::MIN {
        return None;
    }
    nonempty(
        Range::intersect(a, Range::signed(b.smin + 1, i64::MAX)),
        Range::intersect(b, Range::signed(i64::MIN, a.smax - 1)),
    )
}

fn sge(a: Range, b: Range) -> Option<(Range, Range)> {
    nonempty(
        Range::intersect(a, Range::signed(b.smin, i64::MAX)),
        Range::intersect(b, Range::signed(i64::MIN, a.smax)),
    )
}

fn slt(a: Range, b: Range) -> Option<(Range, Range)> {
    sgt(b, a).map(|(y, x)| (x, y))
}

fn sle(a: Range, b: Range) -> Option<(Range, Range)> {
    sge(b, a).map(|(y, x)| (x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_backend::isa::{jmp_imm, jmp_reg, BPF_JEQ, BPF_JGE, BPF_JLT, BPF_JNE, BPF_JSGT};

    fn sc(r: Range) -> AbsVal {
        AbsVal::Scalar(r)
    }

    #[test]
    fn jlt_narrows_both_edges() {
        let insn = jmp_imm(BPF_JLT, 1, 8, 0);
        let (taken, fall) = refine(insn, sc(Range::unknown()), sc(Range::exact(8)));
        let (t, _) = taken.unwrap();
        assert_eq!(t.scalar_range().unwrap().umax, 7);
        let (f, _) = fall.unwrap();
        assert_eq!(f.scalar_range().unwrap().umin, 8);
    }

    #[test]
    fn constant_compare_prunes_an_edge() {
        // r1 = 3; if r1 >= 10 — taken edge is infeasible.
        let insn = jmp_imm(BPF_JGE, 1, 10, 0);
        let (taken, fall) = refine(insn, sc(Range::exact(3)), sc(Range::exact(10)));
        assert!(taken.is_none());
        assert!(fall.is_some());
    }

    #[test]
    fn jeq_on_disjoint_ranges_prunes_taken() {
        let insn = jmp_reg(BPF_JEQ, 1, 2, 0);
        let (taken, fall) = refine(insn, sc(Range::unsigned(0, 4)), sc(Range::unsigned(10, 20)));
        assert!(taken.is_none());
        assert!(fall.is_some());
    }

    #[test]
    fn jne_shrinks_interval_endpoint() {
        let insn = jmp_imm(BPF_JNE, 1, 0, 0);
        let (taken, _) = refine(insn, sc(Range::unsigned(0, 5)), sc(Range::exact(0)));
        let (t, _) = taken.unwrap();
        assert_eq!(t.scalar_range().unwrap().umin, 1);
    }

    #[test]
    fn signed_compare_uses_signed_bounds() {
        let insn = jmp_imm(BPF_JSGT, 1, 0, 0);
        let neg = Range::signed(-5, 5);
        let (taken, fall) = refine(insn, sc(neg), sc(Range::exact(0)));
        assert_eq!(taken.unwrap().0.scalar_range().unwrap().smin, 1);
        assert_eq!(fall.unwrap().0.scalar_range().unwrap().smax, 0);
    }

    #[test]
    fn null_check_splits_maybe_null_pointer() {
        let insn = jmp_imm(BPF_JEQ, 0, 0, 0);
        let (taken, fall) = refine(insn, AbsVal::MapValOrNull { map: 0 }, sc(Range::exact(0)));
        assert_eq!(taken.unwrap().0, AbsVal::Scalar(Range::exact(0)));
        assert!(matches!(fall.unwrap().0, AbsVal::MapValPtr { map: 0, .. }));
    }
}
