//! Basic-block CFG construction over an encoded instruction stream.
//!
//! Leaders are slot 0, every branch target, and every slot following a
//! branch or `exit`. The two-slot `lddw` form is handled throughout: its
//! second slot is never an instruction boundary, and a branch landing on
//! one is a structural error. Cycles (backward edges) are rejected here —
//! the execution model is run-to-completion, so a loop means the program
//! is unbounded (`B0002`).

use adn_backend::isa::{self, BpfInsn};

/// One basic block: a maximal straight-line slot range.
#[derive(Debug, Clone)]
pub struct Block {
    /// First slot of the block.
    pub start: usize,
    /// Slot just past the last instruction.
    pub end: usize,
    /// Slot of the final instruction (`lddw`-aware).
    pub term: usize,
    /// Block reached when the terminating branch is taken.
    pub taken: Option<usize>,
    /// Block reached on fall-through.
    pub fall: Option<usize>,
    /// Number of instructions (an `lddw` pair counts once).
    pub insn_count: usize,
    /// Number of helper `call`s in the block.
    pub helper_calls: usize,
}

/// The control-flow graph. Blocks are stored in slot order, which for an
/// accepted (acyclic, forward-branching) program is also a topological
/// order.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
}

fn is_branch(insn: BpfInsn) -> bool {
    matches!(insn.class(), isa::BPF_JMP | isa::BPF_JMP32) && insn.op() != isa::BPF_CALL
}

/// Builds the CFG, or explains the structural defect. Errors here map to
/// `B0002` (malformed/unbounded flow) at the verdict layer.
pub fn build(insns: &[BpfInsn]) -> Result<Cfg, String> {
    if insns.is_empty() {
        return Err("empty program".into());
    }

    // Pass 1: instruction boundaries (lddw occupies two slots).
    let n = insns.len();
    let mut boundary = vec![false; n];
    let mut pc = 0;
    while pc < n {
        boundary[pc] = true;
        if insns[pc].is_lddw() {
            if pc + 1 >= n {
                return Err(format!("slot {pc}: truncated lddw"));
            }
            pc += 2;
        } else {
            pc += 1;
        }
    }

    // Pass 2: leaders.
    let mut leader = vec![false; n];
    leader[0] = true;
    let mut pc = 0;
    while pc < n {
        let insn = insns[pc];
        let width = if insn.is_lddw() { 2 } else { 1 };
        if is_branch(insn) {
            if insn.op() != isa::BPF_EXIT {
                let target = pc as i64 + 1 + insn.off as i64;
                if target < 0 || target as usize >= n {
                    return Err(format!("slot {pc}: branch target {target} out of range"));
                }
                if !boundary[target as usize] {
                    return Err(format!(
                        "slot {pc}: branch lands inside an lddw pair at {target}"
                    ));
                }
                leader[target as usize] = true;
            }
            if pc + width < n {
                leader[pc + width] = true;
            }
        }
        pc += width;
    }

    // Pass 3: carve blocks.
    let mut blocks = Vec::new();
    let mut block_of = vec![usize::MAX; n];
    let mut start = 0;
    let mut insn_count = 0;
    let mut helper_calls = 0;
    let mut term = 0;
    let mut pc = 0;
    while pc < n {
        let insn = insns[pc];
        let width = if insn.is_lddw() { 2 } else { 1 };
        insn_count += 1;
        if insn.class() == isa::BPF_JMP && insn.op() == isa::BPF_CALL {
            helper_calls += 1;
        }
        term = pc;
        let next = pc + width;
        let block_ends = next >= n || leader[next] || is_branch(insn);
        if block_ends {
            let idx = blocks.len();
            for slot in block_of.iter_mut().take(next).skip(start) {
                *slot = idx;
            }
            blocks.push(Block {
                start,
                end: next,
                term,
                taken: None,
                fall: None,
                insn_count,
                helper_calls,
            });
            start = next;
            insn_count = 0;
            helper_calls = 0;
        }
        pc = next;
    }
    let _ = term;

    // Pass 4: edges.
    for block in blocks.iter_mut() {
        let t = block.term;
        let insn = insns[t];
        let end = block.end;
        if is_branch(insn) {
            match insn.op() {
                isa::BPF_EXIT => {}
                isa::BPF_JA => {
                    let target = (t as i64 + 1 + insn.off as i64) as usize;
                    block.taken = Some(block_of[target]);
                }
                _ => {
                    let target = (t as i64 + 1 + insn.off as i64) as usize;
                    block.taken = Some(block_of[target]);
                    if end >= n {
                        return Err(format!("slot {t}: conditional branch falls off the end"));
                    }
                    block.fall = Some(block_of[end]);
                }
            }
        } else {
            if end >= n {
                return Err(format!("slot {t}: program falls off the end"));
            }
            block.fall = Some(block_of[end]);
        }
    }

    // Pass 5: reject cycles. Blocks are in slot order; any edge to a
    // block at or before the current one is a back edge.
    for (i, b) in blocks.iter().enumerate() {
        for succ in [b.taken, b.fall].into_iter().flatten() {
            if succ <= i {
                return Err(format!(
                    "block at slot {} branches backward to slot {} — loops are \
                     not run-to-completion",
                    b.start, blocks[succ].start
                ));
            }
        }
    }

    Ok(Cfg { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_backend::isa::{
        alu64_imm, exit, ja, jmp_imm, lddw, mov64_imm, mov64_reg, BPF_ADD, BPF_JEQ,
    };

    #[test]
    fn straight_line_is_one_block() {
        let insns = vec![mov64_reg(9, 1), mov64_imm(0, 0), exit()];
        let cfg = build(&insns).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].insn_count, 3);
        assert!(cfg.blocks[0].taken.is_none() && cfg.blocks[0].fall.is_none());
    }

    #[test]
    fn diamond_makes_four_blocks() {
        let insns = vec![
            mov64_imm(1, 5),           // b0
            jmp_imm(BPF_JEQ, 1, 5, 2), // b0 → b2 taken, b1 fall
            alu64_imm(BPF_ADD, 1, 1),  // b1
            ja(0),                     // b1 → b2  (ja +0 falls to next block)
            mov64_imm(0, 0),           // b2
            exit(),
        ];
        let cfg = build(&insns).unwrap();
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].taken, Some(2));
        assert_eq!(cfg.blocks[0].fall, Some(1));
        assert_eq!(cfg.blocks[1].taken, Some(2));
    }

    #[test]
    fn lddw_counts_as_one_insn_and_cannot_be_split() {
        let [lo, hi] = lddw(1, u64::MAX);
        let insns = vec![lo, hi, mov64_imm(0, 0), exit()];
        let cfg = build(&insns).unwrap();
        assert_eq!(cfg.blocks[0].insn_count, 3);

        // A branch into the second lddw slot is structural corruption.
        let bad = vec![jmp_imm(BPF_JEQ, 0, 0, 1), lo, hi, exit()];
        let err = build(&bad).unwrap_err();
        assert!(err.contains("lddw"), "{err}");
    }

    #[test]
    fn backward_edge_is_rejected() {
        let insns = vec![mov64_imm(1, 0), ja(-2), exit()];
        let err = build(&insns).unwrap_err();
        assert!(err.contains("backward"), "{err}");
    }

    #[test]
    fn fallthrough_off_the_end_is_rejected() {
        let insns = vec![mov64_imm(1, 0)];
        assert!(build(&insns).is_err());
    }
}
