//! Offload verifier for the eBPF backend.
//!
//! [`adn_backend::ebpf::compile`] already runs a kernel-style structural
//! verifier (register init, forward jumps, mandatory `Ret`). This module
//! is the *policy* layer on top: it re-walks the emitted instruction
//! stream and answers "should this program be trusted in the kernel at
//! this site?" under an operator-configurable [`EbpfPolicy`] — bounded
//! worst-case path length, helper whitelist, and a simulated stack
//! budget. The placement solver consults the verdict: an element that
//! compiles but fails the audit is kept on a native processor.

use adn_backend::ebpf::{compile, EbpfProgram, Insn};
use adn_dsl::diag::Diagnostic;
use adn_ir::element::ElementIr;

use crate::codes;

/// What a site's kernel is willing to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbpfPolicy {
    /// Longest permissible execution path, in instructions.
    pub max_path_insns: usize,
    /// Simulated stack budget: 8 bytes per live register slot.
    pub max_stack_bytes: usize,
    /// Allow the `Rand` helper (fault injection).
    pub allow_rand: bool,
    /// Allow the `Now` helper (logical clocks).
    pub allow_now: bool,
    /// Allow map helpers (stateful elements).
    pub allow_map_helpers: bool,
    /// Allow the `Route` helper (in-kernel load balancing).
    pub allow_route: bool,
}

impl Default for EbpfPolicy {
    fn default() -> Self {
        Self {
            max_path_insns: adn_backend::ebpf::MAX_INSNS,
            max_stack_bytes: 512,
            allow_rand: true,
            allow_now: true,
            allow_map_helpers: true,
            allow_route: true,
        }
    }
}

/// Resource usage of a verified element, for placement cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EbpfAuditReport {
    /// Longest request-path length in instructions.
    pub request_path_insns: usize,
    /// Longest response-path length in instructions.
    pub response_path_insns: usize,
    /// Simulated stack high-water mark across both programs.
    pub stack_bytes: usize,
}

/// Longest execution path through a forward-jump-only program, in
/// instructions. Jumps only go forward, so the flow graph is a DAG and a
/// single reverse pass computes the exact bound — the same argument the
/// kernel verifier uses to reject unbounded programs. Returns `None` for
/// malformed flow (a jump landing past the end).
fn longest_path(prog: &EbpfProgram) -> Option<usize> {
    let n = prog.insns.len();
    // longest[i] = max instructions executed starting at insn i.
    let mut longest = vec![0usize; n + 1];
    for i in (0..n).rev() {
        let mut succ_max = 0usize;
        let mut succs = 0usize;
        let mut push = |t: usize| -> Option<()> {
            if t > n {
                return None;
            }
            succ_max = succ_max.max(longest[t]);
            succs += 1;
            Some(())
        };
        match &prog.insns[i] {
            Insn::Ret { .. } => {}
            Insn::Jmp { off } => push(i + 1 + *off as usize)?,
            Insn::JmpIf { off, .. } => {
                push(i + 1 + *off as usize)?;
                push(i + 1)?;
            }
            Insn::MapLookup { miss_off, .. } => {
                push(i + 1 + *miss_off as usize)?;
                push(i + 1)?;
            }
            _ => push(i + 1)?,
        }
        let _ = succs;
        longest[i] = 1 + succ_max;
    }
    Some(longest.first().copied().unwrap_or(0))
}

/// Register the instruction writes, if any.
fn written_reg(insn: &Insn) -> Option<u8> {
    match insn {
        Insn::LdImm { dst, .. }
        | Insn::LdField { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::Neg { dst }
        | Insn::LogicalNot { dst }
        | Insn::HashField { dst, .. }
        | Insn::LenField { dst, .. }
        | Insn::Rand { dst }
        | Insn::Now { dst }
        | Insn::MapLookup { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn check_program(
    element: &str,
    dir: &str,
    prog: &EbpfProgram,
    policy: &EbpfPolicy,
) -> Result<(usize, usize), Vec<Diagnostic>> {
    let mut diags = Vec::new();

    let path = match longest_path(prog) {
        Some(p) => p,
        None => {
            diags.push(Diagnostic::error(
                codes::EBPF_UNBOUNDED,
                format!("element `{element}` {dir} program has a jump past the end"),
            ));
            0
        }
    };
    if path > policy.max_path_insns {
        diags.push(Diagnostic::error(
            codes::EBPF_UNBOUNDED,
            format!(
                "element `{element}` {dir} program's longest path is {path} \
                 instructions; the site allows {}",
                policy.max_path_insns
            ),
        ));
    }

    for insn in &prog.insns {
        let denied = match insn {
            Insn::Rand { .. } if !policy.allow_rand => Some("rand"),
            Insn::Now { .. } if !policy.allow_now => Some("now"),
            Insn::MapLookup { .. } | Insn::MapUpdate { .. } | Insn::MapDelete { .. }
                if !policy.allow_map_helpers =>
            {
                Some("map access")
            }
            Insn::Route { .. } if !policy.allow_route => Some("route"),
            _ => None,
        };
        if let Some(helper) = denied {
            diags.push(
                Diagnostic::error(
                    codes::EBPF_HELPER,
                    format!(
                        "element `{element}` {dir} program uses the `{helper}` helper, \
                         which this site's policy does not whitelist"
                    ),
                )
                .with_help("place the element on a native processor instead"),
            );
            break; // one diagnostic per program is enough
        }
    }

    // Stack model: 8 bytes per distinct register the program ever writes
    // (each live register spills to one stack slot in the worst case).
    let mut regs = 0u16;
    for insn in &prog.insns {
        if let Some(r) = written_reg(insn) {
            regs |= 1 << r;
        }
    }
    let stack = regs.count_ones() as usize * 8;
    if stack > policy.max_stack_bytes {
        diags.push(Diagnostic::error(
            codes::EBPF_STACK,
            format!(
                "element `{element}` {dir} program needs {stack} stack bytes; the \
                 site allows {}",
                policy.max_stack_bytes
            ),
        ));
    }

    if diags.is_empty() {
        Ok((path, stack))
    } else {
        Err(diags)
    }
}

/// Verifies that `element` can be offloaded under `policy`. `Ok` carries
/// resource usage for cost models; `Err` carries the diagnostics that
/// explain why the element must stay on a native processor.
pub fn audit_element(
    element: &ElementIr,
    policy: &EbpfPolicy,
) -> Result<EbpfAuditReport, Vec<Diagnostic>> {
    let compiled = match compile(element) {
        Ok(c) => c,
        Err(why) => {
            return Err(vec![Diagnostic::error(
                codes::EBPF_UNSUPPORTED,
                format!(
                    "element `{}` does not fit the kernel execution model: {why}",
                    element.name
                ),
            )]);
        }
    };

    let mut diags = Vec::new();
    let mut report = EbpfAuditReport::default();
    match check_program(&element.name, "request", &compiled.request, policy) {
        Ok((path, stack)) => {
            report.request_path_insns = path;
            report.stack_bytes = report.stack_bytes.max(stack);
        }
        Err(d) => diags.extend(d),
    }
    match check_program(&element.name, "response", &compiled.response, policy) {
        Ok((path, stack)) => {
            report.response_path_insns = path;
            report.stack_bytes = report.stack_bytes.max(stack);
        }
        Err(d) => diags.extend(d),
    }

    if diags.is_empty() {
        Ok(report)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::{check_element, parser::parse_element};
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn lower(src: &str) -> ElementIr {
        let req = RpcSchema::builder()
            .field("user_id", ValueType::U64)
            .field("object_id", ValueType::U64)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .build()
            .unwrap();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    const NUMERIC_ACL: &str = r#"
        element NumAcl() {
            state acl(user_id: u64 key, allowed: u64) init { (1, 1), (2, 0) };
            on request {
                SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                WHERE acl.allowed == 1;
            }
        }
    "#;

    #[test]
    fn offloadable_element_passes_default_policy() {
        let report = audit_element(&lower(NUMERIC_ACL), &EbpfPolicy::default()).unwrap();
        assert!(report.request_path_insns > 0);
        assert!(report.stack_bytes > 0);
        // Response handler is empty: just the implicit Ret.
        assert_eq!(report.response_path_insns, 1);
    }

    #[test]
    fn non_compilable_element_reports_unsupported() {
        let compress =
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }";
        let diags = audit_element(&lower(compress), &EbpfPolicy::default()).unwrap_err();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::EBPF_UNSUPPORTED);
    }

    #[test]
    fn map_helpers_can_be_denied_by_policy() {
        let policy = EbpfPolicy {
            allow_map_helpers: false,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_HELPER),
            "{diags:?}"
        );
    }

    #[test]
    fn rand_helper_denial_blocks_fault_injection() {
        let fault =
            "element F(p: f64 = 0.5) { on request { ABORT(3) WHERE random() < p; SELECT * FROM input; } }";
        let element = lower(fault);
        assert!(audit_element(&element, &EbpfPolicy::default()).is_ok());
        let policy = EbpfPolicy {
            allow_rand: false,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&element, &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_HELPER),
            "{diags:?}"
        );
    }

    #[test]
    fn path_budget_is_enforced() {
        let policy = EbpfPolicy {
            max_path_insns: 2,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_UNBOUNDED),
            "{diags:?}"
        );
    }

    #[test]
    fn stack_budget_is_enforced() {
        let policy = EbpfPolicy {
            max_stack_bytes: 8,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_STACK),
            "{diags:?}"
        );
    }

    #[test]
    fn longest_path_bounds_branching_programs() {
        // Path length accounts for the longer arm of a branch, not the sum.
        let set = "element S() { on request { SET object_id = CASE WHEN input.user_id > 1 THEN 1 ELSE 2 END; SELECT * FROM input; } }";
        let report = audit_element(&lower(set), &EbpfPolicy::default()).unwrap();
        let compiled = compile(&lower(set)).unwrap();
        assert!(report.request_path_insns <= compiled.request.insns.len());
    }
}
