//! Offload verifier for the eBPF backend.
//!
//! [`adn_backend::ebpf::compile`] already runs a kernel-style structural
//! verifier (register init, forward jumps, mandatory `Ret`). This module
//! is the *policy* layer on top: it assembles the element to the real
//! instruction encoding ([`adn_backend::isa`]), runs the abstract
//! interpreter ([`crate::absint`]) over the encoded stream, and answers
//! "should this program be trusted in the kernel at this site?" under an
//! operator-configurable [`EbpfPolicy`]. The audit report carries the
//! *proved* bounds — worst-case feasible-path length, the exact stack
//! high-water mark, worst-case helper calls — so the placement solver can
//! rank offload sites by verified cost instead of gating on a heuristic.
//!
//! When `policy.use_absint` is off, the audit falls back to the original
//! coarse model: a DAG longest-path over the legacy instruction stream
//! and a simulated stack of 8 bytes per written register. The fallback is
//! kept both as a baseline for comparison and as the escape hatch for
//! programs the abstract domains cannot bound.

use adn_backend::ebpf::{compile, EbpfProgram, Insn};
use adn_backend::isa;
use adn_dsl::diag::Diagnostic;
use adn_ir::element::ElementIr;

use crate::absint::{self, AbsintOptions, OffloadVerdict};
use crate::codes;

/// What a site's kernel is willing to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbpfPolicy {
    /// Longest permissible execution path, in instructions. Under the
    /// abstract interpreter this counts *encoded* instructions on the
    /// longest feasible path; under the fallback it counts legacy
    /// instructions on the longest structural path.
    pub max_path_insns: usize,
    /// Stack budget in bytes. The abstract interpreter checks the exact
    /// high-water mark; the fallback simulates 8 bytes per written
    /// register.
    pub max_stack_bytes: usize,
    /// Context buffer size this site guarantees, when known. `None`
    /// leaves context accesses unchecked and surfaces the requirement in
    /// [`EbpfAuditReport::required_ctx_bytes`] instead.
    pub max_ctx_bytes: Option<usize>,
    /// Allow the `Rand` helper (fault injection).
    pub allow_rand: bool,
    /// Allow the `Now` helper (logical clocks).
    pub allow_now: bool,
    /// Allow map helpers (stateful elements).
    pub allow_map_helpers: bool,
    /// Allow the `Route` helper (in-kernel load balancing).
    pub allow_route: bool,
    /// Verify with the abstract interpreter over the real encoding
    /// (default). Off = the original coarse heuristics.
    pub use_absint: bool,
}

impl Default for EbpfPolicy {
    fn default() -> Self {
        Self {
            max_path_insns: adn_backend::ebpf::MAX_INSNS,
            max_stack_bytes: 512,
            max_ctx_bytes: None,
            allow_rand: true,
            allow_now: true,
            allow_map_helpers: true,
            allow_route: true,
            use_absint: true,
        }
    }
}

/// Resource usage of a verified element, for placement cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EbpfAuditReport {
    /// Longest request-path length in instructions.
    pub request_path_insns: usize,
    /// Longest response-path length in instructions.
    pub response_path_insns: usize,
    /// Stack high-water mark across both programs: exact when `precise`,
    /// simulated (8 bytes per written register) otherwise.
    pub stack_bytes: usize,
    /// Worst-case helper calls on any feasible path, across both
    /// programs. Zero under the fallback (not modeled).
    pub helper_calls: usize,
    /// Context bytes the programs provably need. Zero when the policy
    /// pinned `max_ctx_bytes` (the accesses were checked instead) or
    /// under the fallback.
    pub required_ctx_bytes: usize,
    /// True when the bounds come from the abstract interpreter (proved),
    /// false when they come from the heuristic fallback (simulated).
    pub precise: bool,
}

// ---------------------------------------------------------------------------
// Abstract-interpretation path (default)
// ---------------------------------------------------------------------------

/// Helper-whitelist check over the distinct helper IDs the analysis saw.
fn check_helpers(
    element: &str,
    dir: &str,
    helpers: &[i32],
    policy: &EbpfPolicy,
) -> Option<Diagnostic> {
    for &h in helpers {
        let denied = match h {
            isa::HELPER_GET_PRANDOM if !policy.allow_rand => Some("rand"),
            isa::HELPER_KTIME_GET_NS if !policy.allow_now => Some("now"),
            isa::HELPER_MAP_LOOKUP | isa::HELPER_MAP_UPDATE | isa::HELPER_MAP_DELETE
                if !policy.allow_map_helpers =>
            {
                Some("map access")
            }
            isa::HELPER_ROUTE if !policy.allow_route => Some("route"),
            _ => None,
        };
        if let Some(helper) = denied {
            return Some(
                Diagnostic::error(
                    codes::EBPF_HELPER,
                    format!(
                        "element `{element}` {dir} program uses the `{helper}` helper, \
                         which this site's policy does not whitelist"
                    ),
                )
                .with_help("place the element on a native processor instead"),
            );
        }
    }
    None
}

/// Audits one direction's program through assemble → absint.
/// `Ok((path, stack, helpers, required_ctx))` on success.
fn check_program_absint(
    element: &str,
    dir: &str,
    prog: &EbpfProgram,
    num_maps: usize,
    policy: &EbpfPolicy,
) -> Result<(usize, usize, usize, usize), Vec<Diagnostic>> {
    let assembled = isa::assemble(prog).map_err(|why| {
        vec![Diagnostic::error(
            codes::EBPF_UNSUPPORTED,
            format!("element `{element}` {dir} program does not assemble: {why}"),
        )]
    })?;

    let analysis = absint::analyze(
        &assembled.insns,
        &AbsintOptions {
            num_maps,
            ctx_bytes: policy.max_ctx_bytes,
        },
    );

    let (cost, required_ctx) = match analysis.verdict {
        OffloadVerdict::Unsafe { diags } => {
            return Err(diags
                .into_iter()
                .map(|d| {
                    let mut out = Diagnostic::error(
                        d.code,
                        format!("element `{element}` {dir} program: {}", d.message),
                    );
                    out.span = d.span;
                    out.help = d.help;
                    out
                })
                .collect());
        }
        OffloadVerdict::Safe { cost } => (cost, 0),
        OffloadVerdict::Conditional {
            required_ctx_bytes,
            cost,
        } => (cost, required_ctx_bytes),
    };

    let mut diags = Vec::new();
    if cost.max_insns > policy.max_path_insns {
        diags.push(Diagnostic::error(
            codes::EBPF_UNBOUNDED,
            format!(
                "element `{element}` {dir} program's longest feasible path is \
                 {} instructions; the site allows {}",
                cost.max_insns, policy.max_path_insns
            ),
        ));
    }
    if cost.stack_bytes > policy.max_stack_bytes {
        diags.push(Diagnostic::error(
            codes::EBPF_STACK,
            format!(
                "element `{element}` {dir} program's proved stack high-water mark \
                 is {} bytes; the site allows {}",
                cost.stack_bytes, policy.max_stack_bytes
            ),
        ));
    }
    if let Some(d) = check_helpers(element, dir, &analysis.helpers, policy) {
        diags.push(d);
    }

    if diags.is_empty() {
        Ok((
            cost.max_insns,
            cost.stack_bytes,
            cost.helper_calls,
            required_ctx,
        ))
    } else {
        Err(diags)
    }
}

// ---------------------------------------------------------------------------
// Heuristic fallback (use_absint = false)
// ---------------------------------------------------------------------------

/// Longest execution path through a forward-jump-only program, in
/// instructions. Jumps only go forward, so the flow graph is a DAG and a
/// single reverse pass computes the exact bound — the same argument the
/// kernel verifier uses to reject unbounded programs. Returns `None` for
/// malformed flow (a jump landing past the end).
fn longest_path(prog: &EbpfProgram) -> Option<usize> {
    let n = prog.insns.len();
    // longest[i] = max instructions executed starting at insn i.
    let mut longest = vec![0usize; n + 1];
    for i in (0..n).rev() {
        let mut succ_max = 0usize;
        let mut push = |t: usize| -> Option<()> {
            if t > n {
                return None;
            }
            succ_max = succ_max.max(longest[t]);
            Some(())
        };
        match &prog.insns[i] {
            Insn::Ret { .. } => {}
            Insn::Jmp { off } => push(i + 1 + *off as usize)?,
            Insn::JmpIf { off, .. } => {
                push(i + 1 + *off as usize)?;
                push(i + 1)?;
            }
            Insn::MapLookup { miss_off, .. } => {
                push(i + 1 + *miss_off as usize)?;
                push(i + 1)?;
            }
            _ => push(i + 1)?,
        }
        longest[i] = 1 + succ_max;
    }
    Some(longest.first().copied().unwrap_or(0))
}

/// Register the instruction writes, if any.
fn written_reg(insn: &Insn) -> Option<u8> {
    match insn {
        Insn::LdImm { dst, .. }
        | Insn::LdField { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::Neg { dst }
        | Insn::LogicalNot { dst }
        | Insn::HashField { dst, .. }
        | Insn::LenField { dst, .. }
        | Insn::Rand { dst }
        | Insn::Now { dst }
        | Insn::MapLookup { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// The original coarse audit over the legacy instruction stream.
fn check_program_heuristic(
    element: &str,
    dir: &str,
    prog: &EbpfProgram,
    policy: &EbpfPolicy,
) -> Result<(usize, usize), Vec<Diagnostic>> {
    let mut diags = Vec::new();

    let path = match longest_path(prog) {
        Some(p) => p,
        None => {
            diags.push(Diagnostic::error(
                codes::EBPF_UNBOUNDED,
                format!("element `{element}` {dir} program has a jump past the end"),
            ));
            0
        }
    };
    if path > policy.max_path_insns {
        diags.push(Diagnostic::error(
            codes::EBPF_UNBOUNDED,
            format!(
                "element `{element}` {dir} program's longest path is {path} \
                 instructions; the site allows {}",
                policy.max_path_insns
            ),
        ));
    }

    for insn in &prog.insns {
        let denied = match insn {
            Insn::Rand { .. } if !policy.allow_rand => Some("rand"),
            Insn::Now { .. } if !policy.allow_now => Some("now"),
            Insn::MapLookup { .. } | Insn::MapUpdate { .. } | Insn::MapDelete { .. }
                if !policy.allow_map_helpers =>
            {
                Some("map access")
            }
            Insn::Route { .. } if !policy.allow_route => Some("route"),
            _ => None,
        };
        if let Some(helper) = denied {
            diags.push(
                Diagnostic::error(
                    codes::EBPF_HELPER,
                    format!(
                        "element `{element}` {dir} program uses the `{helper}` helper, \
                         which this site's policy does not whitelist"
                    ),
                )
                .with_help("place the element on a native processor instead"),
            );
            break; // one diagnostic per program is enough
        }
    }

    // Stack model: 8 bytes per distinct register the program ever writes
    // (each live register spills to one stack slot in the worst case).
    // The abstract interpreter replaces this with the real watermark.
    let mut regs = 0u16;
    for insn in &prog.insns {
        if let Some(r) = written_reg(insn) {
            regs |= 1 << r;
        }
    }
    let stack = regs.count_ones() as usize * 8;
    if stack > policy.max_stack_bytes {
        diags.push(Diagnostic::error(
            codes::EBPF_STACK,
            format!(
                "element `{element}` {dir} program needs {stack} stack bytes; the \
                 site allows {}",
                policy.max_stack_bytes
            ),
        ));
    }

    if diags.is_empty() {
        Ok((path, stack))
    } else {
        Err(diags)
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Verifies that `element` can be offloaded under `policy`. `Ok` carries
/// the proved (or, under the fallback, simulated) resource bounds for
/// cost models; `Err` carries the diagnostics that explain why the
/// element must stay on a native processor.
pub fn audit_element(
    element: &ElementIr,
    policy: &EbpfPolicy,
) -> Result<EbpfAuditReport, Vec<Diagnostic>> {
    let compiled = match compile(element) {
        Ok(c) => c,
        Err(why) => {
            return Err(vec![Diagnostic::error(
                codes::EBPF_UNSUPPORTED,
                format!(
                    "element `{}` does not fit the kernel execution model: {why}",
                    element.name
                ),
            )]);
        }
    };

    let num_maps = compiled.map_inits.len();
    let mut diags = Vec::new();
    let mut report = EbpfAuditReport {
        precise: policy.use_absint,
        ..EbpfAuditReport::default()
    };

    for (dir, prog, path_slot) in [
        ("request", &compiled.request, 0usize),
        ("response", &compiled.response, 1usize),
    ] {
        if policy.use_absint {
            match check_program_absint(&element.name, dir, prog, num_maps, policy) {
                Ok((path, stack, helpers, required_ctx)) => {
                    if path_slot == 0 {
                        report.request_path_insns = path;
                    } else {
                        report.response_path_insns = path;
                    }
                    report.stack_bytes = report.stack_bytes.max(stack);
                    report.helper_calls = report.helper_calls.max(helpers);
                    report.required_ctx_bytes = report.required_ctx_bytes.max(required_ctx);
                }
                Err(d) => diags.extend(d),
            }
        } else {
            match check_program_heuristic(&element.name, dir, prog, policy) {
                Ok((path, stack)) => {
                    if path_slot == 0 {
                        report.request_path_insns = path;
                    } else {
                        report.response_path_insns = path;
                    }
                    report.stack_bytes = report.stack_bytes.max(stack);
                }
                Err(d) => diags.extend(d),
            }
        }
    }

    if diags.is_empty() {
        Ok(report)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::{check_element, parser::parse_element};
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn lower(src: &str) -> ElementIr {
        let req = RpcSchema::builder()
            .field("user_id", ValueType::U64)
            .field("object_id", ValueType::U64)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .build()
            .unwrap();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    const NUMERIC_ACL: &str = r#"
        element NumAcl() {
            state acl(user_id: u64 key, allowed: u64) init { (1, 1), (2, 0) };
            on request {
                SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                WHERE acl.allowed == 1;
            }
        }
    "#;

    #[test]
    fn offloadable_element_passes_default_policy() {
        let report = audit_element(&lower(NUMERIC_ACL), &EbpfPolicy::default()).unwrap();
        assert!(report.precise);
        assert!(report.request_path_insns > 0);
        // The map lookup writes its key to the stack; the proved watermark
        // covers at least that slot.
        assert!(report.stack_bytes >= 8, "{report:?}");
        assert!(report.helper_calls >= 1, "{report:?}");
        // The element reads `user_id` (field 0), so it provably needs at
        // least one context slot.
        assert!(report.required_ctx_bytes >= 8, "{report:?}");
        // Response handler is empty: prologue, `r0 = 0`, `exit`.
        assert_eq!(report.response_path_insns, 3);
    }

    #[test]
    fn absint_and_heuristic_agree_on_acceptance() {
        let heuristic = EbpfPolicy {
            use_absint: false,
            ..EbpfPolicy::default()
        };
        let precise = audit_element(&lower(NUMERIC_ACL), &EbpfPolicy::default()).unwrap();
        let coarse = audit_element(&lower(NUMERIC_ACL), &heuristic).unwrap();
        assert!(precise.precise);
        assert!(!coarse.precise);
        assert_eq!(coarse.helper_calls, 0); // not modeled by the fallback
    }

    #[test]
    fn non_compilable_element_reports_unsupported() {
        let compress =
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }";
        let diags = audit_element(&lower(compress), &EbpfPolicy::default()).unwrap_err();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::EBPF_UNSUPPORTED);
    }

    #[test]
    fn map_helpers_can_be_denied_by_policy() {
        let policy = EbpfPolicy {
            allow_map_helpers: false,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_HELPER),
            "{diags:?}"
        );
    }

    #[test]
    fn rand_helper_denial_blocks_fault_injection() {
        let fault =
            "element F(p: f64 = 0.5) { on request { ABORT(3) WHERE random() < p; SELECT * FROM input; } }";
        let element = lower(fault);
        assert!(audit_element(&element, &EbpfPolicy::default()).is_ok());
        let policy = EbpfPolicy {
            allow_rand: false,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&element, &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_HELPER),
            "{diags:?}"
        );
    }

    #[test]
    fn path_budget_is_enforced() {
        let policy = EbpfPolicy {
            max_path_insns: 2,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_UNBOUNDED),
            "{diags:?}"
        );
    }

    #[test]
    fn stack_budget_is_enforced() {
        let policy = EbpfPolicy {
            max_stack_bytes: 8,
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&lower(NUMERIC_ACL), &policy).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_STACK),
            "{diags:?}"
        );
    }

    #[test]
    fn stateless_arithmetic_has_zero_proved_stack() {
        // The heuristic charges 8 bytes per written register, so a pure
        // arithmetic element busts a 16-byte budget. The abstract
        // interpreter proves it never touches the stack at all.
        let arith = "element A() { on request { SET object_id = input.object_id * 3 + input.user_id % 7; SELECT * FROM input; } }";
        let element = lower(arith);
        let tight = EbpfPolicy {
            max_stack_bytes: 16,
            ..EbpfPolicy::default()
        };
        let report = audit_element(&element, &tight).unwrap();
        assert_eq!(report.stack_bytes, 0, "{report:?}");

        let coarse = EbpfPolicy {
            use_absint: false,
            ..tight
        };
        let diags = audit_element(&element, &coarse).unwrap_err();
        assert!(
            diags.iter().any(|d| d.code == codes::EBPF_STACK),
            "heuristic should reject what absint proves safe: {diags:?}"
        );
    }

    #[test]
    fn ctx_budget_rejects_wide_schemas() {
        // `object_id` is field 1, so the program provably needs 16 context
        // bytes; a site guaranteeing only 8 must reject it.
        let e = lower(
            "element F() { on request { DROP WHERE input.object_id == 13; SELECT * FROM input; } }",
        );
        let tiny = EbpfPolicy {
            max_ctx_bytes: Some(8),
            ..EbpfPolicy::default()
        };
        let diags = audit_element(&e, &tiny).unwrap_err();
        assert!(diags.iter().any(|d| d.code == codes::EBPF_OOB), "{diags:?}");

        let wide = EbpfPolicy {
            max_ctx_bytes: Some(512),
            ..EbpfPolicy::default()
        };
        let report = audit_element(&e, &wide).unwrap();
        assert_eq!(report.required_ctx_bytes, 0); // checked, not deferred
    }

    #[test]
    fn longest_path_bounds_branching_programs() {
        // Path length accounts for the longer arm of a branch, not the sum.
        let set = "element S() { on request { SET object_id = CASE WHEN input.user_id > 1 THEN 1 ELSE 2 END; SELECT * FROM input; } }";
        let report = audit_element(&lower(set), &EbpfPolicy::default()).unwrap();
        let compiled = compile(&lower(set)).unwrap();
        let assembled = isa::assemble(&compiled.request).unwrap();
        // Slot count over-counts lddw pairs, so it upper-bounds any path.
        assert!(report.request_path_insns <= assembled.insns.len());
    }
}
