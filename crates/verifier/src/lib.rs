//! # adn-verifier — static verification for ADN chains
//!
//! The compiler's optimizer and placement layers make semantics-critical
//! decisions (element reordering, stage fusion, minimal wire headers,
//! kernel offload). This crate is the independent second opinion:
//!
//! * [`chain`] — dataflow verification over a lowered [`adn_ir::ChainIr`]:
//!   uninitialized-field reads, dead writes, dead elements, unreachable
//!   statements and elements, and state partitionability against a shard
//!   key (`V00xx` codes).
//! * [`audit`] — post-hoc re-derivation of every optimizer decision
//!   recorded in an [`adn_ir::OptReport`]: reorders re-validated against
//!   the commutativity judgment, stages checked for coverage, parallel
//!   pairs re-checked for read/write conflicts, and synthesized header
//!   layouts diffed against the fields genuinely needed downstream
//!   (`A00xx` codes).
//! * [`ebpf`] — a conservative verifier over the instruction programs the
//!   eBPF backend emits: bounded execution, helper whitelist, simulated
//!   stack depth (`B00xx` codes). Its verdicts are consumed by the
//!   controller's placement solver, so an element that compiles but does
//!   not verify falls back to a native processor.
//! * [`preflight`] — the same gate for machines: runtime-assembled chains
//!   (eval-matrix cells, generated tests) go through parse → typecheck →
//!   lower → chain lints and get structured findings plus the lowered IR
//!   back, so nothing synthesized ever bypasses verification.
//!
//! Front-end codes (`E00xx`) live in [`adn_dsl::diag::codes`]; the
//! `adn-lint` binary drives all layers over `.adn` sources.

pub mod absint;
pub mod audit;
pub mod chain;
pub mod ebpf;
pub mod preflight;

pub use absint::{analyze as analyze_ebpf, AbsintOptions, Analysis, CostBound, OffloadVerdict};
pub use adn_dsl::diag::{Diagnostic, Severity, Span};
pub use audit::{audit_header_layout, audit_headers, audit_report};
pub use chain::{verify_chain, ChainDiagnostic, ChainVerifyOptions};
pub use ebpf::{audit_element as audit_ebpf_element, EbpfAuditReport, EbpfPolicy};
pub use preflight::{
    preflight_elements, preflight_source, PreflightFinding, PreflightOptions, PreflightReport,
};

/// Stable diagnostic codes emitted by the verification layers.
pub mod codes {
    /// Element reads (or writes) a field the RPC schema does not provide.
    pub const UNINIT_READ: &str = "V0001";
    /// Field write overwritten downstream before any read.
    pub const DEAD_WRITE: &str = "V0002";
    /// Element with no observable effect in either direction.
    pub const DEAD_ELEMENT: &str = "V0003";
    /// Statement or element that can never execute.
    pub const UNREACHABLE: &str = "V0004";
    /// Mutable state not partitionable by the deployment's shard key.
    pub const NON_PARTITIONABLE: &str = "V0005";
    /// Element escapes the JIT fast path back into the interpreter.
    pub const JIT_ESCAPES: &str = "V0006";

    /// Optimizer report disagrees with the chain it claims to describe.
    pub const REPORT_MISMATCH: &str = "A0001";
    /// Reorder that is not reachable through commuting swaps.
    pub const ILLEGAL_REORDER: &str = "A0002";
    /// Fused stages do not cover the chain contiguously and in order.
    pub const BAD_STAGES: &str = "A0003";
    /// Synthesized header misses a field read downstream of the hop.
    pub const HEADER_MISSING_FIELD: &str = "A0004";
    /// Synthesized header carries a field nothing downstream needs.
    pub const HEADER_EXTRA_FIELD: &str = "A0005";
    /// Reported parallel pair has a read/write conflict.
    pub const ILLEGAL_PARALLEL: &str = "A0006";

    /// Element does not compile to eBPF at all.
    pub const EBPF_UNSUPPORTED: &str = "B0001";
    /// Program exceeds the bounded-execution limit or has malformed flow.
    pub const EBPF_UNBOUNDED: &str = "B0002";
    /// Program calls a helper the policy does not whitelist.
    pub const EBPF_HELPER: &str = "B0003";
    /// Program exceeds the simulated stack budget.
    pub const EBPF_STACK: &str = "B0004";
    /// Memory access proved out of bounds (stack, context, or map value).
    pub const EBPF_OOB: &str = "B0005";
    /// `map_lookup_elem` result dereferenced without a null check.
    pub const EBPF_NULL_DEREF: &str = "B0006";
    /// Register or stack slot read before any write on some path.
    pub const EBPF_UNINIT: &str = "B0007";
}
