//! Chain-level dataflow verification over [`ChainIr`].
//!
//! All facts here are re-derived locally from the IR statements — the
//! verifier deliberately does not reuse `adn_ir::analysis` bitmask
//! summaries, so a bug there cannot blind the check that is supposed to
//! catch it.

use adn_dsl::diag::{Diagnostic, Span};
use adn_ir::element::{Direction, ElementIr, IrStmt, JoinStrategy};
use adn_ir::ChainIr;

use crate::codes;

/// Options for [`verify_chain`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainVerifyOptions {
    /// Request-schema field index the deployment shards by, when scale-out
    /// replication is planned. Enables the state-partitionability lint
    /// (`V0005`).
    pub shard_field: Option<usize>,
    /// Audit JIT-tier eligibility and warn on interpreter escapes
    /// (`V0006`). Advisory: an escape is exact, just slower.
    pub jit_audit: bool,
}

/// A finding tied (when possible) to one element of the chain; the
/// diagnostic's span, if set, is a byte range into that element's
/// canonical-printed `source`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainDiagnostic {
    pub element: Option<usize>,
    pub diagnostic: Diagnostic,
}

/// Per-direction dataflow facts, re-derived statement by statement.
/// Shared with the optimizer audit so both layers judge from the same
/// independent walk.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DirMasks {
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) uses_state: bool,
    pub(crate) writes_state: bool,
    pub(crate) can_drop: bool,
    pub(crate) routes: bool,
}

pub(crate) fn masks(stmts: &[IrStmt]) -> DirMasks {
    let mut m = DirMasks::default();
    for s in stmts {
        for e in s.expressions() {
            m.reads |= e.field_mask();
        }
        match s {
            IrStmt::Select {
                assignments, join, ..
            } => {
                for (idx, _) in assignments {
                    m.writes |= 1 << idx;
                }
                if join.is_some() {
                    m.uses_state = true;
                }
                if s.can_terminate() {
                    m.can_drop = true;
                }
            }
            IrStmt::Insert { .. } | IrStmt::Update { .. } | IrStmt::Delete { .. } => {
                m.uses_state = true;
                m.writes_state = true;
            }
            IrStmt::Drop { .. } | IrStmt::Abort { .. } => m.can_drop = true,
            IrStmt::Route { .. } => m.routes = true,
            IrStmt::Set { field, .. } => m.writes |= 1 << field,
        }
    }
    m
}

/// Statement spans recovered by re-parsing the element's canonical source.
/// Only used when the statement counts line up (lowering is 1:1).
struct SourceSpans {
    request: Vec<Span>,
    response: Vec<Span>,
}

fn spans_for(element: &ElementIr) -> SourceSpans {
    let empty = SourceSpans {
        request: Vec::new(),
        response: Vec::new(),
    };
    let Ok(ast) = adn_dsl::parser::parse_element(&element.source) else {
        return empty;
    };
    let take = |h: Option<adn_dsl::ast::Handler>, n: usize| -> Vec<Span> {
        match h {
            Some(h) if h.stmt_spans.len() == n => h.stmt_spans,
            _ => Vec::new(),
        }
    };
    SourceSpans {
        request: take(ast.on_request, element.request.len()),
        response: take(ast.on_response, element.response.len()),
    }
}

fn dir_name(d: Direction) -> &'static str {
    match d {
        Direction::Request => "request",
        Direction::Response => "response",
    }
}

fn field_name(chain: &ChainIr, d: Direction, bit: usize) -> String {
    let schema = match d {
        Direction::Request => &chain.request_schema,
        Direction::Response => &chain.response_schema,
    };
    schema
        .fields()
        .get(bit)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| format!("#{bit}"))
}

/// Runs every chain-level lint. Well-formed chains produced by the
/// controller's front end come back clean (modulo intentional warnings
/// such as dead elements in hand-built test chains).
pub fn verify_chain(chain: &ChainIr, opts: &ChainVerifyOptions) -> Vec<ChainDiagnostic> {
    let mut out = Vec::new();
    let dirs = [Direction::Request, Direction::Response];
    let per_dir: Vec<[DirMasks; 2]> = chain
        .elements
        .iter()
        .map(|e| [masks(&e.request), masks(&e.response)])
        .collect();
    let spans: Vec<SourceSpans> = chain.elements.iter().map(spans_for).collect();

    // V0001 — reads/writes outside the RPC schema. The schema provides
    // every declared field, so "uninitialized" means an index no schema
    // field nor upstream write could ever populate.
    for (di, d) in dirs.iter().enumerate() {
        let schema_len = match d {
            Direction::Request => chain.request_schema.fields().len(),
            Direction::Response => chain.response_schema.fields().len(),
        };
        let provided: u64 = if schema_len >= 64 {
            u64::MAX
        } else {
            (1u64 << schema_len) - 1
        };
        let mut available = provided;
        for (i, e) in chain.elements.iter().enumerate() {
            let m = &per_dir[i][di];
            let bad = (m.reads | m.writes) & !available;
            if bad != 0 {
                for bit in 0..64 {
                    if bad & (1 << bit) != 0 {
                        out.push(ChainDiagnostic {
                            element: Some(i),
                            diagnostic: Diagnostic::error(
                                codes::UNINIT_READ,
                                format!(
                                    "element `{}` accesses {} field #{bit}, which neither \
                                     the schema ({schema_len} fields) nor any upstream \
                                     element provides",
                                    e.name,
                                    dir_name(*d)
                                ),
                            ),
                        });
                    }
                }
            }
            available |= m.writes & provided;
        }
    }

    // V0002 — dead writes: a field written by element i and overwritten by
    // a later element before anything reads it.
    for (di, d) in dirs.iter().enumerate() {
        for i in 0..chain.elements.len() {
            let mut pending = per_dir[i][di].writes;
            for (j, downstream) in per_dir.iter().enumerate().skip(i + 1) {
                if pending == 0 {
                    break;
                }
                let read_here = pending & downstream[di].reads;
                pending &= !read_here;
                let overwritten = pending & downstream[di].writes;
                for bit in 0..64 {
                    if overwritten & (1 << bit) != 0 {
                        out.push(ChainDiagnostic {
                            element: Some(i),
                            diagnostic: Diagnostic::warning(
                                codes::DEAD_WRITE,
                                format!(
                                    "element `{}` writes {} field `{}`, but `{}` \
                                     overwrites it before anything reads it",
                                    chain.elements[i].name,
                                    dir_name(*d),
                                    field_name(chain, *d, bit),
                                    chain.elements[j].name
                                ),
                            ),
                        });
                    }
                }
                pending &= !overwritten;
            }
        }
    }

    // V0003 — elements with no observable effect in either direction.
    for (i, e) in chain.elements.iter().enumerate() {
        let effect = per_dir[i]
            .iter()
            .any(|m| m.writes != 0 || m.uses_state || m.writes_state || m.can_drop || m.routes);
        if !effect {
            out.push(ChainDiagnostic {
                element: Some(i),
                diagnostic: Diagnostic::warning(
                    codes::DEAD_ELEMENT,
                    format!(
                        "element `{}` neither writes fields, touches state, drops, \
                         nor routes — it has no observable effect",
                        e.name
                    ),
                )
                .with_help("remove it from the chain or give it an effect"),
            });
        }
    }

    // V0004 — unreachable statements (after an unconditional terminator)
    // and unreachable elements (after a handler that can never forward).
    for (i, e) in chain.elements.iter().enumerate() {
        for d in dirs {
            let stmts = e.stmts(d);
            let term = stmts.iter().position(|s| {
                matches!(
                    s,
                    IrStmt::Drop { condition: None }
                        | IrStmt::Abort {
                            condition: None,
                            ..
                        }
                )
            });
            if let Some(t) = term {
                if t + 1 < stmts.len() {
                    let span_list = match d {
                        Direction::Request => &spans[i].request,
                        Direction::Response => &spans[i].response,
                    };
                    let mut diag = Diagnostic::warning(
                        codes::UNREACHABLE,
                        format!(
                            "statement {} of element `{}`'s {} handler is unreachable: \
                             statement {t} unconditionally terminates the message",
                            t + 1,
                            e.name,
                            dir_name(d)
                        ),
                    );
                    if let Some(span) = span_list.get(t + 1) {
                        diag = diag.with_span(*span);
                    }
                    out.push(ChainDiagnostic {
                        element: Some(i),
                        diagnostic: diag,
                    });
                }
            }
        }
        if i + 1 < chain.elements.len() && !adn_ir::passes::may_forward(&e.request) {
            out.push(ChainDiagnostic {
                element: Some(i),
                diagnostic: Diagnostic::warning(
                    codes::UNREACHABLE,
                    format!(
                        "element `{}` never forwards requests, so the {} downstream \
                         element(s) can only see responses that will never come",
                        e.name,
                        chain.elements.len() - i - 1
                    ),
                ),
            });
        }
    }

    // V0005 — state partitionability against the shard key.
    if let Some(shard) = opts.shard_field {
        let shard_mask = 1u64 << shard;
        let shard_name = field_name(chain, Direction::Request, shard);
        for (i, e) in chain.elements.iter().enumerate() {
            // Read-only tables replicate cleanly to every shard; only
            // tables the element mutates need key discipline.
            let mutated: Vec<usize> = (0..e.tables.len())
                .filter(|t| {
                    e.all_stmts().any(|s| match s {
                        IrStmt::Insert { table, .. }
                        | IrStmt::Update { table, .. }
                        | IrStmt::Delete { table, .. } => table == t,
                        _ => false,
                    })
                })
                .collect();
            for &t in &mutated {
                let table = &e.tables[t];
                let mut reason: Option<String> = None;
                for s in e.all_stmts() {
                    match s {
                        IrStmt::Select { join: Some(j), .. } if j.table == t => match &j.strategy {
                            JoinStrategy::KeyLookup { input_fields } => {
                                if input_fields.iter().any(|f| *f != shard) {
                                    reason = Some(format!(
                                        "a join keys it by input fields {input_fields:?}, \
                                         not the shard field"
                                    ));
                                }
                            }
                            JoinStrategy::Scan => {
                                reason = Some(
                                    "a join scans it, and partitioned shards each see \
                                     only a subset of rows"
                                        .to_owned(),
                                );
                            }
                        },
                        IrStmt::Insert { table: ti, values } if *ti == t => {
                            for &kc in &table.key_columns {
                                let mask = values.get(kc).map(|v| v.field_mask()).unwrap_or(0);
                                if mask != shard_mask {
                                    reason = Some(format!(
                                        "an INSERT derives key column `{}` from \
                                         something other than the shard field",
                                        table
                                            .column_names
                                            .get(kc)
                                            .cloned()
                                            .unwrap_or_else(|| format!("#{kc}"))
                                    ));
                                }
                            }
                        }
                        IrStmt::Update {
                            table: ti,
                            condition: Some(c),
                            ..
                        }
                        | IrStmt::Delete {
                            table: ti,
                            condition: Some(c),
                        } if *ti == t && c.field_mask() & !shard_mask != 0 => {
                            reason = Some(
                                "an UPDATE/DELETE selects rows using non-shard \
                                     fields"
                                    .to_owned(),
                            );
                        }
                        _ => {}
                    }
                    if reason.is_some() {
                        break;
                    }
                }
                if let Some(why) = reason {
                    out.push(ChainDiagnostic {
                        element: Some(i),
                        diagnostic: Diagnostic::warning(
                            codes::NON_PARTITIONABLE,
                            format!(
                                "state table `{}` of element `{}` is not a function of \
                                 shard field `{shard_name}`: {why}; replicating the \
                                 element across shards will split or duplicate rows",
                                table.name, e.name
                            ),
                        )
                        .with_help(
                            "key the table by the shard field, or keep this element on \
                             an unsharded processor",
                        ),
                    });
                }
            }
        }
    }

    // V0006 — advisory: how much of each element runs on the JIT fast
    // path. An escape is not wrong (the thunk is observably identical),
    // but a chain that escapes on every message gains little from the
    // compiled tiers, and that is worth surfacing at verification time
    // rather than discovering in a profile.
    for (i, e) in chain.elements.iter().enumerate().filter(|_| opts.jit_audit) {
        let (req, resp) = adn_backend::jit::jit_eligibility(
            e,
            Some(&chain.request_schema),
            Some(&chain.response_schema),
        );
        let escapes = req.escapes + resp.escapes;
        if escapes > 0 {
            let inline = req.inline_ops + resp.inline_ops;
            let fast = req.fast_stmts + resp.fast_stmts;
            out.push(ChainDiagnostic {
                element: Some(i),
                diagnostic: Diagnostic::warning(
                    codes::JIT_ESCAPES,
                    format!(
                        "element `{}` escapes to the interpreter {escapes} time(s) per \
                         message worst-case ({inline} inline op(s), {fast} specialized \
                         fast-path statement(s))",
                        e.name
                    ),
                )
                .with_help(
                    "escapes are exact but dispatch through a thunk; keyed INSERTs and \
                     keyed equality joins compile to specialized fast paths",
                ),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::{check_element, parser::parse_element};
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        let req = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let resp = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        (req, resp)
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn chain_of(srcs: &[&str]) -> ChainIr {
        let (req, resp) = schemas();
        ChainIr::new(srcs.iter().map(|s| lower(s)).collect(), req, resp)
    }

    fn codes_of(diags: &[ChainDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.diagnostic.code).collect()
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string);
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;
    const COMPRESS: &str = r#"
        element Compress() {
            on request { SET payload = compress(input.payload); SELECT * FROM input; }
        }
    "#;

    #[test]
    fn clean_chain_verifies_clean() {
        let chain = chain_of(&[ACL, COMPRESS]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn jit_audit_flags_escaping_element_only() {
        // The UPDATE escapes to an interpreter thunk; the keyed join
        // compiles to the specialized filter fast path and stays quiet.
        let quota = r#"
            element Quota() {
                state used(username: string key, count: u64);
                on request {
                    UPDATE used SET count = used.count + 1
                        WHERE used.username == input.username;
                    SELECT * FROM input;
                }
            }
        "#;
        let chain = chain_of(&[ACL, quota]);
        let opts = ChainVerifyOptions {
            jit_audit: true,
            ..Default::default()
        };
        let diags = verify_chain(&chain, &opts);
        assert_eq!(codes_of(&diags), vec![codes::JIT_ESCAPES], "{diags:?}");
        assert_eq!(diags[0].element, Some(1));
        // Off by default: the same chain stays clean without the option.
        assert!(verify_chain(&chain, &ChainVerifyOptions::default()).is_empty());
    }

    #[test]
    fn out_of_schema_read_is_uninitialized() {
        let mut chain = chain_of(&[COMPRESS]);
        // Corrupt the IR: read request field #7 in a 3-field schema.
        chain.elements[0].request.insert(
            0,
            IrStmt::Set {
                field: 2,
                value: adn_ir::IrExpr::Field(7),
                condition: None,
            },
        );
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert!(codes_of(&diags).contains(&codes::UNINIT_READ), "{diags:?}");
    }

    #[test]
    fn overwritten_write_is_dead() {
        let blind_writer = "element A() { on request { SET object_id = 1; SELECT * FROM input; } }";
        let overwriter = "element B() { on request { SET object_id = 2; SELECT * FROM input; } }";
        let chain = chain_of(&[blind_writer, overwriter]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert_eq!(codes_of(&diags), vec![codes::DEAD_WRITE]);
        assert_eq!(diags[0].element, Some(0));
    }

    #[test]
    fn read_between_writes_keeps_write_live() {
        // Compress reads payload before Encrypt overwrites it: no dead write.
        let encrypt = "element Enc() { on request { SET payload = encrypt(input.payload, 'k'); SELECT * FROM input; } }";
        let chain = chain_of(&[COMPRESS, encrypt]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pure_passthrough_is_dead_element() {
        let tee = "element Tee() { on request { SELECT * FROM input; } }";
        let chain = chain_of(&[tee, COMPRESS]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert_eq!(codes_of(&diags), vec![codes::DEAD_ELEMENT]);
    }

    #[test]
    fn statements_after_unconditional_drop_are_unreachable() {
        let src = "element D() { on request { DROP; SELECT * FROM input; } }";
        let chain = chain_of(&[src]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.diagnostic.code == codes::UNREACHABLE)
            .collect();
        assert!(!unreachable.is_empty(), "{diags:?}");
        // The span maps back into the element's canonical source.
        let spanned = unreachable.iter().find(|d| d.diagnostic.span.is_some());
        let d = spanned.expect("span recovered from source");
        let span = d.diagnostic.span.unwrap();
        let source = &chain.elements[0].source;
        assert!(source[span.start as usize..span.end as usize].contains("SELECT"));
    }

    #[test]
    fn never_forwarding_element_makes_tail_unreachable() {
        let src = "element D() { on request { DROP; } }";
        let chain = chain_of(&[src, COMPRESS]);
        let diags = verify_chain(&chain, &ChainVerifyOptions::default());
        assert!(codes_of(&diags).contains(&codes::UNREACHABLE), "{diags:?}");
    }

    #[test]
    fn quota_keyed_by_shard_field_is_partitionable() {
        let quota = r#"
            element Quota() {
                state q_tab(username: string key, used: u64);
                on request {
                    UPDATE q_tab SET used = q_tab.used + 1
                        WHERE q_tab.username == input.username;
                    SELECT * FROM input;
                }
            }
        "#;
        let chain = chain_of(&[quota]);
        // Sharded by username (request field 1).
        let diags = verify_chain(
            &chain,
            &ChainVerifyOptions {
                shard_field: Some(1),
                ..Default::default()
            },
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn state_keyed_off_shard_field_is_flagged() {
        let quota = r#"
            element Quota() {
                state q_tab(username: string key, used: u64);
                on request {
                    UPDATE q_tab SET used = q_tab.used + 1
                        WHERE q_tab.username == input.username;
                    SELECT * FROM input;
                }
            }
        "#;
        let chain = chain_of(&[quota]);
        // Sharded by object_id (field 0) while the table is keyed by
        // username (field 1): rows would scatter.
        let diags = verify_chain(
            &chain,
            &ChainVerifyOptions {
                shard_field: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(codes_of(&diags), vec![codes::NON_PARTITIONABLE]);
    }

    #[test]
    fn insert_key_not_from_shard_field_is_flagged() {
        let logging = r#"
            element Logging() {
                state log_tab(seq: u64 key, who: string);
                on request {
                    INSERT INTO log_tab VALUES (now(), input.username);
                    SELECT * FROM input;
                }
            }
        "#;
        let chain = chain_of(&[logging]);
        let diags = verify_chain(
            &chain,
            &ChainVerifyOptions {
                shard_field: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(codes_of(&diags), vec![codes::NON_PARTITIONABLE]);
    }

    #[test]
    fn read_only_table_is_exempt_from_partitionability() {
        // ACL never writes ac_tab: replicating it to every shard is fine.
        let chain = chain_of(&[ACL]);
        let diags = verify_chain(
            &chain,
            &ChainVerifyOptions {
                shard_field: Some(0),
                ..Default::default()
            },
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
