//! Programmatic pre-flight lint for chains assembled at runtime.
//!
//! `adn-lint` drives the verification layers over `.adn` files for a
//! human; this module is the same gate for *machines*: the eval-matrix
//! sweep (and anything else that synthesizes chains — generated tests,
//! fuzzers, deployment tooling) must not hand the dataplane a chain the
//! static layers would have rejected. The API therefore returns
//! structured findings plus the lowered IR on success, so a clean
//! pre-flight feeds straight into compilation with no re-parse.

use std::sync::Arc;

use adn_dsl::diag::{Diagnostic, Severity};
use adn_dsl::parser::parse_program;
use adn_dsl::typecheck::check_element;
use adn_ir::{lower_element, ChainIr, ElementIr};
use adn_rpc::schema::RpcSchema;

use crate::chain::{verify_chain, ChainVerifyOptions};

/// Options for the pre-flight gate. A thinned-down [`ChainVerifyOptions`]:
/// pre-flight always runs the chain dataflow lints; the caller chooses
/// whether warnings are fatal when calling [`PreflightReport::gate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PreflightOptions {
    /// Request-schema field index the deployment shards by, if any.
    pub shard_field: Option<usize>,
    /// Also audit JIT-tier eligibility (advisory `V0006` warnings).
    pub jit_audit: bool,
}

/// One finding, labelled with the element it belongs to when known.
#[derive(Debug, Clone)]
pub struct PreflightFinding {
    /// Element name, when the finding is attributable to one element.
    pub element: Option<String>,
    pub diagnostic: Diagnostic,
}

/// Everything pre-flight learned about a candidate chain.
#[derive(Debug, Clone, Default)]
pub struct PreflightReport {
    /// Lowered elements, in chain order. Empty when the front end failed —
    /// chain-level facts are meaningless for a partial chain.
    pub elements: Vec<ElementIr>,
    pub findings: Vec<PreflightFinding>,
}

impl PreflightReport {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.diagnostic.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.diagnostic.severity == Severity::Warning)
            .count()
    }

    /// One line per finding, suitable for a results table or a panic
    /// message.
    pub fn summary(&self) -> String {
        self.findings
            .iter()
            .map(|f| {
                let label = f.element.as_deref().unwrap_or("chain");
                format!("{label}: [{}] {}", f.diagnostic.code, f.diagnostic.message)
            })
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Pass/fail decision: errors always fail; warnings fail only when
    /// `deny_warnings`. On pass, hands back the lowered elements for
    /// compilation.
    pub fn gate(&self, deny_warnings: bool) -> Result<&[ElementIr], String> {
        let fatal = self.errors() > 0 || (deny_warnings && self.warnings() > 0);
        if fatal {
            Err(self.summary())
        } else {
            Ok(&self.elements)
        }
    }
}

/// Pre-flights a textual `.adn` program (one chain, elements in file
/// order): parse, typecheck, lower, then the chain dataflow lints.
pub fn preflight_source(
    source: &str,
    req: &Arc<RpcSchema>,
    resp: &Arc<RpcSchema>,
    opts: &PreflightOptions,
) -> PreflightReport {
    let mut report = PreflightReport::default();
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            report.findings.push(PreflightFinding {
                element: None,
                diagnostic: e.to_diagnostic(),
            });
            return report;
        }
    };
    let mut lowered = Vec::new();
    for element in &program.elements {
        let checked = match check_element(element, req, resp) {
            Ok(c) => c,
            Err(e) => {
                report.findings.push(PreflightFinding {
                    element: Some(element.name.clone()),
                    diagnostic: e.to_diagnostic(),
                });
                continue;
            }
        };
        match lower_element(&checked, &[], req, resp) {
            Ok(ir) => lowered.push(ir),
            Err(e) => {
                report.findings.push(PreflightFinding {
                    element: Some(element.name.clone()),
                    diagnostic: Diagnostic::error(
                        adn_dsl::diag::codes::INVALID_CONTEXT,
                        format!("element `{}` does not lower: {e}", element.name),
                    ),
                });
            }
        }
    }
    if report.errors() > 0 {
        return report;
    }
    let chain_report = preflight_elements(lowered, req, resp, opts);
    report.elements = chain_report.elements;
    report.findings.extend(chain_report.findings);
    report
}

/// Pre-flights an already-lowered chain (e.g. assembled from the element
/// catalog): just the chain dataflow lints, no front end.
pub fn preflight_elements(
    elements: Vec<ElementIr>,
    req: &Arc<RpcSchema>,
    resp: &Arc<RpcSchema>,
    opts: &PreflightOptions,
) -> PreflightReport {
    let chain = ChainIr::new(elements, Arc::clone(req), Arc::clone(resp));
    let copts = ChainVerifyOptions {
        shard_field: opts.shard_field,
        jit_audit: opts.jit_audit,
    };
    let findings = verify_chain(&chain, &copts)
        .into_iter()
        .map(|f| PreflightFinding {
            element: f
                .element
                .and_then(|i| chain.elements.get(i).map(|e| e.name.clone())),
            diagnostic: f.diagnostic,
        })
        .collect();
    PreflightReport {
        elements: chain.elements,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use adn_rpc::value::ValueType;

    use super::*;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    #[test]
    fn clean_chain_passes_and_returns_ir() {
        let (req, resp) = schemas();
        let src = r#"
            element Tag() {
                on request {
                    SET object_id = input.object_id + 1;
                    SELECT * FROM input;
                }
            }
        "#;
        let report = preflight_source(src, &req, &resp, &PreflightOptions::default());
        let elements = report.gate(true).expect("clean chain must pass");
        assert_eq!(elements.len(), 1);
        assert_eq!(elements[0].name, "Tag");
    }

    #[test]
    fn parse_error_fails_closed() {
        let (req, resp) = schemas();
        let report = preflight_source(
            "element Broken( {",
            &req,
            &resp,
            &PreflightOptions::default(),
        );
        assert!(report.errors() > 0);
        assert!(report.gate(false).is_err());
        assert!(report.elements.is_empty());
    }

    #[test]
    fn type_error_names_the_element() {
        let (req, resp) = schemas();
        let src = r#"
            element Bad() {
                on request {
                    SET nonexistent = 1;
                    SELECT * FROM input;
                }
            }
        "#;
        let report = preflight_source(src, &req, &resp, &PreflightOptions::default());
        assert!(report.gate(false).is_err());
        assert!(report.summary().contains("Bad"));
    }

    #[test]
    fn warning_only_chain_gates_on_deny_warnings() {
        let (req, resp) = schemas();
        // Dead write: object_id is overwritten downstream before any read.
        let src = r#"
            element First() {
                on request {
                    SET object_id = input.object_id + 1;
                    SELECT * FROM input;
                }
            }
            element Second() {
                on request {
                    SET object_id = 7;
                    SELECT * FROM input;
                }
            }
        "#;
        let report = preflight_source(src, &req, &resp, &PreflightOptions::default());
        assert_eq!(report.errors(), 0);
        assert!(report.warnings() > 0, "expected a V0002 dead-write warning");
        assert!(report.gate(false).is_ok());
        assert!(report.gate(true).is_err());
    }
}
