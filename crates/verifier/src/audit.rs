//! Post-hoc audit of optimizer decisions.
//!
//! [`adn_ir::optimize`] returns an [`OptReport`] describing what it did:
//! the final element order, fused stages, and parallel-eligible pairs.
//! This module re-derives each of those claims from first principles and
//! flags any it cannot justify — a cheap, independent proof-checker for
//! the optimizer rather than a re-run of it.
//!
//! Reorders are validated with the adjacent-transposition argument: a
//! permutation is reachable through semantics-preserving swaps iff every
//! pair of elements whose relative order flipped commutes. Because
//! [`analysis::commute`] is a static, symmetric, pairwise judgment, this
//! is both sound and complete with respect to it.

use std::collections::BTreeSet;

use adn_dsl::diag::Diagnostic;
use adn_ir::element::Direction;
use adn_ir::{analysis, ChainIr, OptReport};
use adn_wire::header::HeaderLayout;

use crate::chain::masks;
use crate::codes;

/// Audits `report` as a description of how `original` became `optimized`.
/// Empty result = every recorded decision re-validates.
pub fn audit_report(
    original: &ChainIr,
    optimized: &ChainIr,
    report: &OptReport,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // A0001 — the report must describe the chain it came with.
    let opt_names: Vec<String> = optimized.names().iter().map(|s| s.to_string()).collect();
    if report.final_order != opt_names {
        out.push(Diagnostic::error(
            codes::REPORT_MISMATCH,
            format!(
                "report claims final order {:?} but the optimized chain is {:?}",
                report.final_order, opt_names
            ),
        ));
    }

    // Map each optimized element back to its index in the original chain
    // (first unused element with the same name — names may repeat).
    let mut used = vec![false; original.elements.len()];
    let mut perm: Vec<usize> = Vec::with_capacity(optimized.elements.len());
    let mut is_permutation = original.elements.len() == optimized.elements.len();
    for e in &optimized.elements {
        match original
            .elements
            .iter()
            .enumerate()
            .position(|(i, o)| !used[i] && o.name == e.name)
        {
            Some(i) => {
                used[i] = true;
                perm.push(i);
            }
            None => {
                is_permutation = false;
                break;
            }
        }
    }
    if !is_permutation {
        out.push(Diagnostic::error(
            codes::ILLEGAL_REORDER,
            format!(
                "optimized chain {:?} is not a permutation of the original {:?}",
                opt_names,
                original.names()
            ),
        ));
    } else {
        // A0002 — every order-flipped pair must commute. Judged on the
        // ORIGINAL elements: const folding inside the optimized copies
        // must not be allowed to launder a conflict away.
        for a in 0..perm.len() {
            for b in a + 1..perm.len() {
                let (oi, oj) = (perm[a], perm[b]);
                if oi > oj && !analysis::commute(&original.elements[oj], &original.elements[oi]) {
                    out.push(Diagnostic::error(
                        codes::ILLEGAL_REORDER,
                        format!(
                            "reorder moved `{}` across `{}`, but they do not commute",
                            original.elements[oi].name, original.elements[oj].name
                        ),
                    ));
                }
            }
        }
    }

    // A0003 — stages must partition [0, len) contiguously and in order.
    let n = optimized.elements.len();
    let mut cursor = 0usize;
    let mut stages_ok = true;
    for &(start, end) in &report.stages {
        if start != cursor || end <= start || end > n {
            stages_ok = false;
            break;
        }
        cursor = end;
    }
    if !(stages_ok && (cursor == n || (n == 0 && report.stages.is_empty()))) {
        out.push(Diagnostic::error(
            codes::BAD_STAGES,
            format!(
                "stages {:?} do not partition the {n}-element chain contiguously",
                report.stages
            ),
        ));
    }

    // A0006 — parallel pairs re-checked with our own mask walk: adjacent,
    // disjoint field footprints, and neither side drops or routes.
    for &(i, j) in &report.parallel_pairs {
        if j != i + 1 || j >= n {
            out.push(Diagnostic::error(
                codes::ILLEGAL_PARALLEL,
                format!("parallel pair ({i}, {j}) is not an adjacent pair of the chain"),
            ));
            continue;
        }
        let (a, b) = (&optimized.elements[i], &optimized.elements[j]);
        let mut conflict = None;
        for d in [Direction::Request, Direction::Response] {
            let ma = masks(a.stmts(d));
            let mb = masks(b.stmts(d));
            if (ma.reads | ma.writes) & (mb.reads | mb.writes) != 0 {
                conflict = Some("they touch overlapping fields");
            } else if ma.can_drop || mb.can_drop {
                conflict = Some("one side may drop the message");
            } else if ma.routes || mb.routes {
                conflict = Some("one side routes the message");
            }
        }
        if let Some(why) = conflict {
            out.push(Diagnostic::error(
                codes::ILLEGAL_PARALLEL,
                format!(
                    "reported parallel pair `{}` ∥ `{}` is not safe: {why}",
                    a.name, b.name
                ),
            ));
        }
    }

    out
}

/// Field names the hop at `from` must carry: everything the downstream
/// tail `chain.elements[from..]` reads or writes in either direction,
/// re-derived with the verifier's own mask walk (deduplicated by name,
/// matching the wire format's name-keyed layout).
fn required_names(chain: &ChainIr, from: usize) -> BTreeSet<String> {
    let tail = &chain.elements[from.min(chain.elements.len())..];
    let mut need = BTreeSet::new();
    for (dir, schema) in [
        (Direction::Request, &chain.request_schema),
        (Direction::Response, &chain.response_schema),
    ] {
        let mut mask = 0u64;
        for e in tail {
            let m = masks(e.stmts(dir));
            mask |= m.reads | m.writes;
        }
        for (i, f) in schema.fields().iter().enumerate() {
            if mask & (1 << i) != 0 {
                need.insert(f.name.clone());
            }
        }
    }
    need
}

/// Checks one synthesized header `layout` for the hop whose downstream is
/// `chain.elements[from..]`. A field the tail needs but the layout omits
/// is a hard error (the downstream processor would read garbage); a field
/// the layout carries but nothing needs is a lint (wasted wire bytes).
pub fn audit_header_layout(chain: &ChainIr, from: usize, layout: &HeaderLayout) -> Vec<Diagnostic> {
    let need = required_names(chain, from);
    let have: BTreeSet<String> = layout.fields().iter().map(|f| f.name.clone()).collect();
    let mut out = Vec::new();
    for name in need.difference(&have) {
        out.push(Diagnostic::error(
            codes::HEADER_MISSING_FIELD,
            format!(
                "header for hop {from} omits field `{name}`, which downstream \
                 element(s) read or write"
            ),
        ));
    }
    for name in have.difference(&need) {
        out.push(
            Diagnostic::warning(
                codes::HEADER_EXTRA_FIELD,
                format!(
                    "header for hop {from} carries field `{name}`, which no \
                     downstream element touches"
                ),
            )
            .with_help("dropping it shrinks every message on this hop"),
        );
    }
    out
}

/// Audits the minimal header the optimizer would synthesize at every
/// possible hop boundary of `chain`.
pub fn audit_headers(chain: &ChainIr) -> Vec<Diagnostic> {
    (0..=chain.elements.len())
        .flat_map(|from| {
            audit_header_layout(chain, from, &adn_ir::passes::minimal_header(chain, from))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::{check_element, parser::parse_element};
    use adn_ir::element::ElementIr;
    use adn_ir::{optimize, PassConfig};
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;
    use adn_wire::header::HeaderType;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        let req = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let resp = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        (req, resp)
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn chain_of(srcs: &[&str]) -> ChainIr {
        let (req, resp) = schemas();
        ChainIr::new(srcs.iter().map(|s| lower(s)).collect(), req, resp)
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string);
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;
    const COMPRESS: &str = r#"
        element Compress() {
            on request { SET payload = compress(input.payload); SELECT * FROM input; }
        }
    "#;
    const ENCRYPT: &str = r#"
        element Encrypt() {
            on request { SET payload = encrypt(input.payload, 'k'); SELECT * FROM input; }
        }
    "#;

    #[test]
    fn genuine_optimizer_output_audits_clean() {
        let original = chain_of(&[COMPRESS, ACL]);
        let (optimized, report) = optimize(original.clone(), &PassConfig::default());
        assert_eq!(report.swaps, 1, "precondition: the reorder actually fired");
        let diags = audit_report(&original, &optimized, &report);
        assert!(diags.is_empty(), "{diags:?}");
        let diags = audit_headers(&optimized);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hand_constructed_illegal_swap_is_caught() {
        // Compress and Encrypt both write `payload`: they do not commute.
        let original = chain_of(&[COMPRESS, ENCRYPT]);
        let mut optimized = original.clone();
        optimized.elements.swap(0, 1);
        let report = OptReport {
            swaps: 1,
            final_order: vec!["Encrypt".into(), "Compress".into()],
            stages: vec![(0, 2)],
            ..Default::default()
        };
        let diags = audit_report(&original, &optimized, &report);
        assert!(
            diags.iter().any(|d| d.code == codes::ILLEGAL_REORDER),
            "{diags:?}"
        );
    }

    #[test]
    fn report_order_mismatch_is_caught() {
        let original = chain_of(&[ACL, COMPRESS]);
        let (optimized, mut report) = optimize(original.clone(), &PassConfig::default());
        report.final_order.reverse();
        let diags = audit_report(&original, &optimized, &report);
        assert!(
            diags.iter().any(|d| d.code == codes::REPORT_MISMATCH),
            "{diags:?}"
        );
    }

    #[test]
    fn gapped_and_overlapping_stages_are_caught() {
        let original = chain_of(&[ACL, COMPRESS]);
        let (optimized, mut report) = optimize(original.clone(), &PassConfig::default());
        report.stages = vec![(0, 1)]; // gap: element 1 in no stage
        let diags = audit_report(&original, &optimized, &report);
        assert!(
            diags.iter().any(|d| d.code == codes::BAD_STAGES),
            "{diags:?}"
        );
    }

    #[test]
    fn fabricated_parallel_pair_is_caught() {
        // ACL can drop: it must never be reported parallel-eligible.
        let original = chain_of(&[ACL, COMPRESS]);
        let (optimized, mut report) = optimize(original.clone(), &PassConfig::default());
        report.parallel_pairs = vec![(0, 1)];
        let diags = audit_report(&original, &optimized, &report);
        assert!(
            diags.iter().any(|d| d.code == codes::ILLEGAL_PARALLEL),
            "{diags:?}"
        );
    }

    #[test]
    fn header_missing_downstream_read_is_hard_error() {
        let chain = chain_of(&[ACL, COMPRESS]);
        // Hop 0 needs username (ACL) and payload (Compress); omit payload.
        let mut layout = HeaderLayout::new();
        layout.push(0, "username", HeaderType::Str);
        let diags = audit_header_layout(&chain, 0, &layout);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::HEADER_MISSING_FIELD);
        assert!(diags[0].is_error());
        assert!(diags[0].message.contains("payload"));
    }

    #[test]
    fn header_extra_field_is_lint_not_error() {
        let chain = chain_of(&[COMPRESS]);
        let mut layout = HeaderLayout::new();
        layout.push(0, "payload", HeaderType::Bytes);
        layout.push(1, "object_id", HeaderType::U64); // nothing reads it
        let diags = audit_header_layout(&chain, 0, &layout);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::HEADER_EXTRA_FIELD);
        assert!(!diags[0].is_error());
    }

    #[test]
    fn minimal_headers_audit_clean_at_every_hop() {
        let chain = chain_of(&[ACL, COMPRESS, ENCRYPT]);
        assert!(audit_headers(&chain).is_empty());
    }
}
