//! Cross-layer agreement: the front end's name-set dataflow facts
//! (`adn_dsl::typecheck::HandlerFacts`, computed over the AST) and the
//! IR's bitmask facts (`adn_ir::analysis::DirFacts`, computed over
//! lowered statements) must describe every catalog element identically.
//!
//! The IR facts are the single source of truth — the optimizer, the
//! placement solver, and the verifier all judge from them. The AST-level
//! sets exist for diagnostics. This test pins the two inference paths
//! together so they cannot silently diverge.

use std::collections::BTreeSet;
use std::sync::Arc;

use adn_dsl::parser::parse_element;
use adn_dsl::typecheck::{check_element, HandlerFacts};
use adn_ir::analysis::{self, DirFacts};
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    let req = Arc::new(
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    let resp = Arc::new(
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    (req, resp)
}

fn assert_dir_agrees(
    element: &str,
    dir: &str,
    ast: &HandlerFacts,
    ir: &DirFacts,
    schema: &RpcSchema,
) {
    let ir_reads: BTreeSet<String> = analysis::field_names(schema, ir.reads);
    let ir_writes: BTreeSet<String> = analysis::field_names(schema, ir.writes);
    assert_eq!(
        ast.reads, ir_reads,
        "{element}/{dir}: read sets disagree (AST vs IR)"
    );
    assert_eq!(
        ast.writes, ir_writes,
        "{element}/{dir}: write sets disagree (AST vs IR)"
    );
    assert_eq!(
        ast.uses_state, ir.uses_state,
        "{element}/{dir}: uses_state disagrees"
    );
    assert_eq!(
        ast.writes_state, ir.writes_state,
        "{element}/{dir}: writes_state disagrees"
    );
    assert_eq!(
        ast.can_drop, ir.can_drop,
        "{element}/{dir}: can_drop disagrees"
    );
    assert_eq!(ast.routes, ir.routes, "{element}/{dir}: routes disagrees");
    assert_eq!(
        ast.deterministic, ir.deterministic,
        "{element}/{dir}: determinism disagrees"
    );
}

#[test]
fn ast_and_ir_facts_agree_on_every_catalog_element() {
    let (req, resp) = schemas();
    for (name, source) in adn_elements::sources::ALL {
        let ast = parse_element(source).unwrap_or_else(|e| panic!("{name} does not parse: {e:?}"));
        let checked = check_element(&ast, &req, &resp)
            .unwrap_or_else(|e| panic!("{name} does not typecheck: {e:?}"));
        let ir = adn_ir::lower_element(&checked, &[], &req, &resp)
            .unwrap_or_else(|e| panic!("{name} does not lower: {e:?}"));
        let facts = analysis::analyze(&ir);
        assert_dir_agrees(
            name,
            "request",
            &checked.request_facts,
            &facts.request,
            &req,
        );
        assert_dir_agrees(
            name,
            "response",
            &checked.response_facts,
            &facts.response,
            &resp,
        );
    }
}

#[test]
fn field_names_roundtrips_masks() {
    let (req, _) = schemas();
    assert!(analysis::field_names(&req, 0).is_empty());
    let all = analysis::field_names(&req, 0b111);
    assert_eq!(
        all.into_iter().collect::<Vec<_>>(),
        vec!["object_id", "payload", "username"]
    );
    // Bits beyond the schema are ignored rather than invented.
    assert_eq!(
        analysis::field_names(&req, 1 << 63 | 0b010)
            .into_iter()
            .collect::<Vec<_>>(),
        vec!["username"]
    );
}
