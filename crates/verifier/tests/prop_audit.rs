//! Property: the optimizer audit has zero false positives.
//!
//! For any chain assembled from catalog elements, the report produced by
//! `adn_ir::passes::optimize` with the default pass configuration must be
//! accepted verbatim by `audit_report`, and every minimal header layout
//! derivable from the optimized chain must be accepted by `audit_headers`.

use std::sync::Arc;

use adn_ir::passes::{optimize, PassConfig};
use adn_ir::{ChainIr, ElementIr};
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;
use adn_verifier::audit::{audit_headers, audit_report};
use proptest::prelude::*;

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    let req = Arc::new(
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    let resp = Arc::new(
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    (req, resp)
}

fn lower(source: &str) -> ElementIr {
    let (req, resp) = schemas();
    let checked = adn_dsl::check_element(
        &adn_dsl::parser::parse_element(source).unwrap(),
        &req,
        &resp,
    )
    .unwrap();
    adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
}

fn chain_from_indices(indices: &[usize]) -> ChainIr {
    let (req, resp) = schemas();
    let elements = indices
        .iter()
        .map(|&i| lower(adn_elements::sources::ALL[i].1))
        .collect();
    ChainIr::new(elements, req, resp)
}

proptest! {
    #[test]
    fn default_optimizer_output_passes_audit(
        indices in proptest::collection::vec(0usize..adn_elements::sources::ALL.len(), 0..6)
    ) {
        let original = chain_from_indices(&indices);
        let (optimized, report) = optimize(original.clone(), &PassConfig::default());

        let audit = audit_report(&original, &optimized, &report);
        prop_assert!(
            audit.is_empty(),
            "audit flagged a genuine optimizer run on {:?}: {:?}",
            indices.iter().map(|&i| adn_elements::sources::ALL[i].0).collect::<Vec<_>>(),
            audit.iter().map(|d| (d.code, d.message.clone())).collect::<Vec<_>>()
        );

        let headers = audit_headers(&optimized);
        prop_assert!(
            headers.is_empty(),
            "header audit flagged the optimizer's own minimal layouts: {:?}",
            headers.iter().map(|d| (d.code, d.message.clone())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn audit_accepts_identity_when_passes_disabled(
        indices in proptest::collection::vec(0usize..adn_elements::sources::ALL.len(), 0..5)
    ) {
        let config = PassConfig {
            const_fold: false,
            reorder: false,
            fuse: false,
        };
        let original = chain_from_indices(&indices);
        let (optimized, report) = optimize(original.clone(), &config);
        let audit = audit_report(&original, &optimized, &report);
        prop_assert!(audit.is_empty(), "identity run flagged: {audit:?}");
    }
}
