//! Golden-file tests for `adn-lint` output.
//!
//! Each fixture under `tests/lint/` (repo root) is linted through the real
//! binary and the rendered text / JSON output is compared byte-for-byte
//! against its `.expected` / `.expected.json` neighbour. This pins the
//! diagnostic codes, spans, and rendering format: any change to them shows
//! up as a golden diff, not a silent behaviour change.
//!
//! To regenerate after an intentional format change:
//!   ADN_BLESS=1 cargo test -p adn-verifier --test golden_lint
//! then review the diff under tests/lint/.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Repo root: the binary runs from here so fixture paths (and therefore the
/// origin strings baked into the goldens) are stable relative paths.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verifier sits two levels below the repo root")
        .to_path_buf()
}

struct Fixture {
    name: &'static str,
    extra_args: &'static [&'static str],
    exit: i32,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "parse_error",
        extra_args: &[],
        exit: 1,
    },
    Fixture {
        name: "unknown_field",
        extra_args: &[],
        exit: 1,
    },
    Fixture {
        name: "type_mismatch",
        extra_args: &[],
        exit: 1,
    },
    Fixture {
        name: "dead_write",
        extra_args: &[],
        exit: 0,
    },
    Fixture {
        name: "dead_element",
        extra_args: &[],
        exit: 0,
    },
    Fixture {
        name: "unreachable",
        extra_args: &[],
        exit: 0,
    },
    Fixture {
        name: "non_partitionable",
        extra_args: &["--shard-field", "0"],
        exit: 0,
    },
    Fixture {
        name: "clean",
        extra_args: &[],
        exit: 0,
    },
];

fn run_lint(json: bool, fixture: &Fixture) -> (String, i32) {
    let root = repo_root();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_adn-lint"));
    cmd.current_dir(&root);
    if json {
        cmd.arg("--json");
    }
    cmd.args(fixture.extra_args);
    cmd.arg(format!("tests/lint/{}.adn", fixture.name));
    let out = cmd.output().expect("adn-lint runs");
    assert!(
        out.stderr.is_empty(),
        "{}: unexpected stderr: {}",
        fixture.name,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf-8 output"),
        out.status.code().expect("exit code"),
    )
}

/// Compares `actual` against the golden file, or rewrites the golden when
/// `ADN_BLESS` is set in the environment.
fn check_golden(name: &str, ext: &str, actual: &str) {
    let path = repo_root().join(format!("tests/lint/{name}.{ext}"));
    if std::env::var_os("ADN_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} (run with ADN_BLESS=1): {e}",
            path.display()
        )
    });
    assert_eq!(actual, expected, "{name}.{ext} drifted from golden");
}

#[test]
fn text_output_matches_goldens() {
    for fixture in FIXTURES {
        let (stdout, code) = run_lint(false, fixture);
        check_golden(fixture.name, "expected", &stdout);
        assert_eq!(code, fixture.exit, "{}: exit status drifted", fixture.name);
    }
}

#[test]
fn json_output_matches_goldens() {
    for fixture in FIXTURES {
        let (stdout, code) = run_lint(true, fixture);
        check_golden(fixture.name, "expected.json", &stdout);
        assert_eq!(code, fixture.exit, "{}: exit status drifted", fixture.name);
        // Every non-empty line is a standalone JSON object with the fields
        // machine consumers rely on.
        for line in stdout.lines() {
            for key in ["\"code\":", "\"severity\":", "\"origin\":", "\"message\":"] {
                assert!(
                    line.contains(key),
                    "{}: JSON line missing {key}: {line}",
                    fixture.name
                );
            }
        }
    }
}

/// A0004 cannot be produced through the honest pipeline (the real optimizer
/// always emits correct minimal headers), so its rendering is pinned via the
/// library on a hand-built deficient layout.
#[test]
fn header_missing_field_rendering_matches_golden() {
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;
    use adn_wire::header::HeaderLayout;
    use std::sync::Arc;

    let req = Arc::new(
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    let resp = Arc::new(
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    let compress = r#"
        element Compress() {
            on request {
                SET payload = compress(input.payload);
                SELECT * FROM input;
            }
        }
    "#;
    let checked = adn_dsl::check_element(
        &adn_dsl::parser::parse_element(compress).unwrap(),
        &req,
        &resp,
    )
    .unwrap();
    let ir = adn_ir::lower_element(&checked, &[], &req, &resp).unwrap();
    let chain = adn_ir::ChainIr::new(vec![ir], req, resp);

    // Hop 0 must carry `payload` (Compress reads it); an empty layout is
    // deficient.
    let layout = HeaderLayout::new();
    let diags = adn_verifier::audit::audit_header_layout(&chain, 0, &layout);
    let rendered: String = diags
        .iter()
        .map(|d| format!("{}\n", d.render("tests/lint/header_missing", "")))
        .collect();
    check_golden("header_missing", "expected", &rendered);
    assert!(diags
        .iter()
        .all(|d| d.code == adn_verifier::codes::HEADER_MISSING_FIELD));
    assert!(diags.iter().all(|d| d.is_error()));
}
