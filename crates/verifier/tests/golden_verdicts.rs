//! Golden offload verdicts for every element in `examples/dsl/*.adn`.
//!
//! Each example file is lowered against the demo schemas and every element
//! is audited under the default [`EbpfPolicy`]. The rendered verdict —
//! proved cost bounds on acceptance, diagnostic codes and messages on
//! rejection — is pinned under `tests/verdicts/<stem>.expected`. Any change
//! to the abstract domains, the assembler, or the policy defaults shows up
//! here as a reviewable diff instead of a silent verdict flip.
//!
//! To regenerate after an intentional change:
//!   ADN_BLESS=1 cargo test -p adn-verifier --test golden_verdicts
//! then review the diff under tests/verdicts/.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use adn_dsl::parser::parse_program;
use adn_dsl::typecheck::check_element;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;
use adn_verifier::ebpf::{audit_element, EbpfPolicy};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verifier sits two levels below the repo root")
        .to_path_buf()
}

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    let req = Arc::new(
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    let resp = Arc::new(
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    );
    (req, resp)
}

/// Renders the default-policy verdict for every element in one `.adn`
/// source, in file order.
fn render_verdicts(source: &str) -> String {
    let (req, resp) = schemas();
    let program = parse_program(source).expect("examples parse");
    let mut out = String::new();
    for element in &program.elements {
        let checked = check_element(element, &req, &resp).expect("examples typecheck");
        let ir = adn_ir::lower_element(&checked, &[], &req, &resp).expect("examples lower");
        match audit_element(&ir, &EbpfPolicy::default()) {
            Ok(r) => {
                writeln!(
                    out,
                    "{}: offloadable — request path {} insns, response path {} insns, \
                     stack {} bytes, {} helper call(s), needs {} ctx byte(s), {}",
                    ir.name,
                    r.request_path_insns,
                    r.response_path_insns,
                    r.stack_bytes,
                    r.helper_calls,
                    r.required_ctx_bytes,
                    if r.precise { "proved" } else { "simulated" },
                )
                .unwrap();
            }
            Err(diags) => {
                writeln!(out, "{}: rejected", ir.name).unwrap();
                for d in diags {
                    let span = match d.span {
                        Some(s) => format!(" @ {}..{}", s.start, s.end),
                        None => String::new(),
                    };
                    writeln!(out, "  {}{span}: {}", d.code, d.message).unwrap();
                }
            }
        }
    }
    out
}

fn check_golden(stem: &str, actual: &str) {
    let dir = repo_root().join("tests/verdicts");
    let path = dir.join(format!("{stem}.expected"));
    if std::env::var_os("ADN_BLESS").is_some() {
        std::fs::create_dir_all(&dir).expect("create tests/verdicts");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} (run with ADN_BLESS=1): {e}",
            path.display()
        )
    });
    assert_eq!(actual, expected, "{stem}.expected drifted from golden");
}

#[test]
fn example_verdicts_match_goldens() {
    let dir = repo_root().join("examples/dsl");
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/dsl exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "adn"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    stems.sort();
    assert!(
        !stems.is_empty(),
        "no .adn examples found under {}",
        dir.display()
    );
    for stem in stems {
        let source =
            std::fs::read_to_string(dir.join(format!("{stem}.adn"))).expect("example readable");
        check_golden(&stem, &render_verdicts(&source));
    }
}

/// The goldens must include at least one proved acceptance and at least one
/// rejection, so the corpus keeps exercising both sides of the verdict.
#[test]
fn example_corpus_covers_both_verdicts() {
    let dir = repo_root().join("examples/dsl");
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for entry in std::fs::read_dir(&dir).expect("examples/dsl exists") {
        let path = entry.expect("dir entry").path();
        if !path.extension().is_some_and(|x| x == "adn") {
            continue;
        }
        let rendered = render_verdicts(&std::fs::read_to_string(&path).expect("readable"));
        accepted += rendered.matches("offloadable — ").count();
        rejected += rendered.matches(": rejected").count();
    }
    assert!(accepted > 0, "corpus lost all offloadable examples");
    assert!(rejected > 0, "corpus lost all rejected examples");
}
