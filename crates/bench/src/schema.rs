//! Structural schema validation for the evaluation artifacts.
//!
//! One validator shared by the bench bins, the eval-matrix, and CI: the
//! `BENCH_*.json` family (`load_scale`, `overload`, `jit`), the
//! `MATRIX.json` produced by `eval-matrix`, and the `--json` report of
//! `simseed sweep`. CI's python heredocs additionally assert the *policy*
//! claims (goodput floors, speedups); this module pins the *shape* — the
//! identifying header, the schema version, required fields, field types,
//! and internal count consistency — so a drifting writer fails in `cargo
//! test` before it fails in a workflow log.
//!
//! Validation is accumulating: all errors for a document are reported,
//! not just the first.

use serde_json::Value;

/// The artifact families this crate knows how to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `BENCH_scale.json` from the `load_scale` bin.
    LoadScale,
    /// `BENCH_overload.json` from the `overload` bin.
    Overload,
    /// `BENCH_jit*.json` from the `jit_bench` bin.
    Jit,
    /// `MATRIX.json` from the `eval-matrix` bin.
    Matrix,
    /// `simseed sweep --json` output.
    Simseed,
}

impl ArtifactKind {
    /// Human-readable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::LoadScale => "load_scale",
            ArtifactKind::Overload => "overload",
            ArtifactKind::Jit => "jit",
            ArtifactKind::Matrix => "eval-matrix",
            ArtifactKind::Simseed => "simseed",
        }
    }

    /// Identifies a document by its `tool` / `bench` header field.
    pub fn detect(doc: &Value) -> Result<Self, String> {
        if let Some(tool) = doc.get("tool").and_then(Value::as_str) {
            return match tool {
                "eval-matrix" => Ok(ArtifactKind::Matrix),
                "simseed" => Ok(ArtifactKind::Simseed),
                other => Err(format!("unknown tool {other:?}")),
            };
        }
        if let Some(bench) = doc.get("bench").and_then(Value::as_str) {
            return match bench {
                "load_scale" => Ok(ArtifactKind::LoadScale),
                "overload" => Ok(ArtifactKind::Overload),
                "jit" => Ok(ArtifactKind::Jit),
                other => Err(format!("unknown bench {other:?}")),
            };
        }
        Err("document has neither a \"tool\" nor a \"bench\" header field".to_string())
    }
}

/// Detects the artifact kind and validates its structure. Returns the
/// detected kind on success, the full list of violations otherwise.
pub fn validate(doc: &Value) -> Result<ArtifactKind, Vec<String>> {
    let kind = ArtifactKind::detect(doc).map_err(|e| vec![e])?;
    let errors = match kind {
        ArtifactKind::Matrix => validate_matrix(doc),
        ArtifactKind::Simseed => validate_simseed(doc),
        _ => validate_bench(doc, kind),
    };
    if errors.is_empty() {
        Ok(kind)
    } else {
        Err(errors)
    }
}

fn check_version(doc: &Value, errors: &mut Vec<String>) {
    match doc.get("schema_version").and_then(Value::as_u64) {
        Some(1) => {}
        Some(v) => errors.push(format!("schema_version is {v}, expected 1")),
        None => errors.push("schema_version missing or not a number".to_string()),
    }
}

fn check_keys(obj: &Value, keys: &[&str], at: &str, errors: &mut Vec<String>) {
    for key in keys {
        if obj.get(key).is_none() {
            errors.push(format!("{at}: missing field {key:?}"));
        }
    }
}

fn str_field<'a>(obj: &'a Value, key: &str, at: &str, errors: &mut Vec<String>) -> Option<&'a str> {
    match obj.get(key) {
        Some(v) => match v.as_str() {
            Some(s) => Some(s),
            None => {
                errors.push(format!("{at}: field {key:?} is not a string"));
                None
            }
        },
        None => {
            errors.push(format!("{at}: missing field {key:?}"));
            None
        }
    }
}

fn u64_field(obj: &Value, key: &str, at: &str, errors: &mut Vec<String>) -> Option<u64> {
    match obj.get(key).and_then(Value::as_u64) {
        Some(n) => Some(n),
        None => {
            errors.push(format!(
                "{at}: field {key:?} missing or not an unsigned integer"
            ));
            None
        }
    }
}

fn f64_field(obj: &Value, key: &str, at: &str, errors: &mut Vec<String>) -> Option<f64> {
    match obj.get(key).and_then(Value::as_f64) {
        Some(n) => Some(n),
        None => {
            errors.push(format!("{at}: field {key:?} missing or not a number"));
            None
        }
    }
}

fn bool_field(obj: &Value, key: &str, at: &str, errors: &mut Vec<String>) -> Option<bool> {
    match obj.get(key).and_then(Value::as_bool) {
        Some(b) => Some(b),
        None => {
            errors.push(format!("{at}: field {key:?} missing or not a boolean"));
            None
        }
    }
}

/// Validates a `MATRIX.json` document (`eval-matrix` output).
/// Returns every violation found; empty means the shape is valid.
pub fn validate_matrix(doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    let e = &mut errors;
    check_version(doc, e);
    str_field(doc, "grid", "top-level", e);
    u64_field(doc, "seed", "top-level", e);
    let seeds_per_cell = u64_field(doc, "seeds_per_cell", "top-level", e);

    let cells = match doc.get("cells").and_then(Value::as_array) {
        Some(cells) if !cells.is_empty() => cells.as_slice(),
        Some(_) => {
            e.push("cells array is empty".to_string());
            &[]
        }
        None => {
            e.push("cells missing or not an array".to_string());
            &[]
        }
    };

    let mut passed = 0u64;
    let mut failed = 0u64;
    for (i, cell) in cells.iter().enumerate() {
        let name = cell
            .get("name")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("cells[{i}]"));
        let at = &name;
        for key in [
            "name",
            "topology",
            "chain",
            "chaos",
            "placement",
            "fingerprint",
        ] {
            str_field(cell, key, at, e);
        }
        if let Some(tier) = str_field(cell, "tier", at, e) {
            if !["auto", "interp", "threaded", "native"].contains(&tier) {
                e.push(format!("{at}: unknown tier {tier:?}"));
            }
        }
        if let Some(tier_used) = str_field(cell, "tier_used", at, e) {
            if !["interp", "threaded", "native"].contains(&tier_used) {
                e.push(format!(
                    "{at}: tier_used {tier_used:?} is not a resolved tier"
                ));
            }
        }
        bool_field(cell, "whole_chain_offload", at, e);
        let seeds_run = u64_field(cell, "seeds_run", at, e);
        f64_field(cell, "msgs_per_sec", at, e);
        f64_field(cell, "shed_rate", at, e);
        match cell.get("verdict_streams").and_then(Value::as_array) {
            Some(streams) => {
                if let Some(n) = seeds_run {
                    if streams.len() as u64 != n {
                        e.push(format!(
                            "{at}: {} verdict streams for {n} seeds",
                            streams.len()
                        ));
                    }
                }
                for s in streams {
                    if s.as_str().is_none() {
                        e.push(format!("{at}: verdict_streams entry is not a string"));
                    }
                }
            }
            None => e.push(format!("{at}: verdict_streams missing or not an array")),
        }
        check_keys(
            cell,
            &["invariant", "detail", "failed_seed", "min_events", "replay"],
            at,
            e,
        );
        match bool_field(cell, "pass", at, e) {
            Some(true) => {
                passed += 1;
                if cell.get("invariant").map(Value::is_null) == Some(false) {
                    e.push(format!("{at}: passing cell names a violated invariant"));
                }
            }
            Some(false) => {
                failed += 1;
                // A failing cell must carry enough to reproduce it.
                if cell.get("invariant").and_then(Value::as_str).is_none() {
                    e.push(format!("{at}: failing cell without an invariant name"));
                }
                if cell.get("replay").and_then(Value::as_str).is_none() {
                    e.push(format!("{at}: failing cell without a replay command"));
                }
            }
            None => {}
        }
    }

    match doc.get("summary") {
        Some(summary) => {
            let sc = u64_field(summary, "cells", "summary", e);
            let sp = u64_field(summary, "passed", "summary", e);
            let sf = u64_field(summary, "failed", "summary", e);
            if sc.is_some() && sc != Some(cells.len() as u64) {
                e.push(format!(
                    "summary.cells = {:?} but {} cells present",
                    sc,
                    cells.len()
                ));
            }
            if sp.is_some() && sp != Some(passed) {
                e.push(format!("summary.passed = {sp:?} but {passed} cells pass"));
            }
            if sf.is_some() && sf != Some(failed) {
                e.push(format!("summary.failed = {sf:?} but {failed} cells fail"));
            }
        }
        None => e.push("summary missing".to_string()),
    }
    // Every cell runs the configured seed count unless it failed early.
    if let Some(k) = seeds_per_cell {
        for cell in cells {
            if cell.get("pass").and_then(Value::as_bool) == Some(true)
                && cell.get("seeds_run").and_then(Value::as_u64) != Some(k)
            {
                let name = cell.get("name").and_then(Value::as_str).unwrap_or("?");
                e.push(format!("{name}: passing cell did not run all {k} seeds"));
            }
        }
    }
    errors
}

/// Validates a `simseed sweep --json` report.
pub fn validate_simseed(doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    let e = &mut errors;
    check_version(doc, e);
    str_field(doc, "scenario", "top-level", e);
    u64_field(doc, "seeds_run", "top-level", e);
    let pass = bool_field(doc, "pass", "top-level", e);
    match doc.get("failures").and_then(Value::as_array) {
        Some(failures) => {
            if pass == Some(failures.is_empty()) || pass.is_none() {
                // consistent (or already reported)
            } else {
                e.push(format!(
                    "pass = {:?} but {} failures listed",
                    pass,
                    failures.len()
                ));
            }
            for (i, f) in failures.iter().enumerate() {
                let at = format!("failures[{i}]");
                u64_field(f, "seed", &at, e);
                u64_field(f, "events", &at, e);
                u64_field(f, "min_events", &at, e);
                str_field(f, "invariant", &at, e);
                str_field(f, "detail", &at, e);
                str_field(f, "replay", &at, e);
                check_keys(f, &["at_event", "at_ns"], &at, e);
            }
        }
        None => e.push("failures missing or not an array".to_string()),
    }
    errors
}

/// Validates a `BENCH_*.json` document of the given kind: header, rows,
/// and summary presence plus the per-bench required row fields.
pub fn validate_bench(doc: &Value, kind: ArtifactKind) -> Vec<String> {
    let mut errors = Vec::new();
    let e = &mut errors;
    check_version(doc, e);
    let (top, row_keys): (&[&str], &[&str]) = match kind {
        ArtifactKind::LoadScale => (
            &["seed", "rows", "summary"],
            &[
                "group",
                "shards",
                "batch",
                "service_us",
                "offered",
                "completed",
                "elapsed_ms",
                "msgs_per_sec",
            ],
        ),
        ArtifactKind::Overload => (
            &[
                "seed",
                "calls",
                "service_us",
                "budget_ms",
                "smoke",
                "rows",
                "summary",
            ],
            &[
                "multiplier",
                "shedding",
                "calls_issued",
                "calls_ok",
                "calls_shed",
                "calls_timed_out",
                "calls_aborted",
                "expired_drops",
                "expired_executions",
                "queue_peak",
                "servable",
                "goodput_ratio",
            ],
        ),
        ArtifactKind::Jit => (
            &["seed", "smoke", "chain", "best_tier", "rows", "summary"],
            &[
                "tier",
                "mode",
                "iters",
                "elapsed_ms",
                "ns_per_msg",
                "msgs_per_sec",
                "forwarded",
                "dropped",
                "aborted",
            ],
        ),
        ArtifactKind::Matrix | ArtifactKind::Simseed => {
            e.push(format!("{} is not a BENCH_* artifact", kind.name()));
            return errors;
        }
    };
    check_keys(doc, top, "top-level", e);
    match doc.get("rows").and_then(Value::as_array) {
        Some(rows) if !rows.is_empty() => {
            for (i, row) in rows.iter().enumerate() {
                check_keys(row, row_keys, &format!("rows[{i}]"), e);
            }
            // The shape invariants the claims rest on, independent of the
            // policy thresholds CI asserts separately.
            if kind == ArtifactKind::LoadScale {
                for (i, row) in rows.iter().enumerate() {
                    let offered = row.get("offered").and_then(Value::as_u64);
                    let completed = row.get("completed").and_then(Value::as_u64);
                    if offered.is_some() && offered != completed {
                        e.push(format!(
                            "rows[{i}]: completed {completed:?} != offered {offered:?}"
                        ));
                    }
                }
            }
            if kind == ArtifactKind::Jit {
                for (i, row) in rows.iter().enumerate() {
                    if let Some(mode) = row.get("mode").and_then(Value::as_str) {
                        if !["chain", "fused"].contains(&mode) {
                            e.push(format!("rows[{i}]: unknown mode {mode:?}"));
                        }
                    }
                }
            }
        }
        Some(_) => e.push("rows array is empty".to_string()),
        None => e.push("rows missing or not an array".to_string()),
    }
    if doc.get("summary").and_then(Value::as_object).is_none() {
        e.push("summary missing or not an object".to_string());
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_matrix() -> Value {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/matrix/canonical.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        serde_json::from_str(&text).expect("canonical.json parses")
    }

    #[test]
    fn committed_matrix_golden_is_schema_valid() {
        let doc = committed_matrix();
        assert_eq!(validate(&doc), Ok(ArtifactKind::Matrix));
    }

    #[test]
    fn matrix_validator_catches_shape_drift() {
        // Inconsistent summary counts.
        let mut doc = committed_matrix();
        if let Value::Object(map) = &mut doc {
            let summary = serde_json::json!({"cells": 1, "passed": 0, "failed": 1});
            map.insert("summary".to_string(), summary);
        }
        let errors = validate(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("summary.cells")),
            "{errors:?}"
        );

        // A failing cell must name its invariant and carry a replay.
        let mut doc = committed_matrix();
        if let Value::Object(map) = &mut doc {
            if let Some(Value::Array(cells)) = map.get_mut("cells") {
                if let Value::Object(cell) = &mut cells[0] {
                    cell.insert("pass".to_string(), Value::Bool(false));
                }
            }
        }
        let errors = validate(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("without an invariant")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("without a replay")),
            "{errors:?}"
        );
    }

    #[test]
    fn detect_rejects_headerless_documents() {
        let doc = serde_json::json!({"rows": []});
        assert!(ArtifactKind::detect(&doc).is_err());
        let doc = serde_json::json!({"tool": "mystery"});
        assert!(ArtifactKind::detect(&doc).is_err());
    }

    #[test]
    fn bench_documents_validate_by_shape() {
        let good = serde_json::json!({
            "bench": "load_scale",
            "schema_version": 1,
            "seed": 7,
            "rows": (vec![serde_json::json!({
                "group": "app",
                "shards": 2,
                "batch": 4,
                "service_us": 100,
                "offered": 512,
                "completed": 512,
                "elapsed_ms": 10.0,
                "msgs_per_sec": 51200.0
            })]),
            "summary": {"v0005_clean": true}
        });
        assert_eq!(validate(&good), Ok(ArtifactKind::LoadScale));

        // Dropped calls violate the closed-loop shape invariant.
        let mut bad = good.clone();
        if let Value::Object(map) = &mut bad {
            if let Some(Value::Array(rows)) = map.get_mut("rows") {
                if let Value::Object(row) = &mut rows[0] {
                    row.insert("completed".to_string(), Value::from(500u64));
                }
            }
        }
        let errors = validate(&bad).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("completed")), "{errors:?}");

        // Missing rows entirely.
        let empty = serde_json::json!({
            "bench": "jit",
            "schema_version": 1,
            "seed": 7, "smoke": true, "chain": "x", "best_tier": "native",
            "rows": [],
            "summary": {}
        });
        let errors = validate(&empty).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("rows")), "{errors:?}");
    }

    #[test]
    fn simseed_reports_validate() {
        let good = serde_json::json!({
            "tool": "simseed",
            "schema_version": 1,
            "scenario": "overload",
            "seeds_run": 32,
            "pass": true,
            "failures": []
        });
        assert_eq!(validate(&good), Ok(ArtifactKind::Simseed));

        let inconsistent = serde_json::json!({
            "tool": "simseed",
            "schema_version": 1,
            "scenario": "overload",
            "seeds_run": 32,
            "pass": true,
            "failures": (vec![serde_json::json!({
                "seed": 3, "events": 100, "min_events": 12,
                "invariant": "ZeroLoss", "at_event": 12, "at_ns": 5,
                "detail": "lost call", "replay": "cargo run ..."
            })])
        });
        let errors = validate(&inconsistent).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("failures listed")),
            "{errors:?}"
        );
    }
}
