//! Validates evaluation artifacts against the shared schema module.
//!
//! ```text
//! schema_check MATRIX.json BENCH_overload.json ...
//! ```
//!
//! Each file is parsed, its kind detected from the `tool` / `bench`
//! header, and its structure checked; any violation prints and exits
//! nonzero. CI runs this on every artifact it uploads, so the python
//! policy asserts in the workflow only ever see well-shaped documents.

use std::process::ExitCode;

use adn_bench::schema;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    match schema::validate(&doc) {
        Ok(kind) => {
            println!("{path}: OK ({})", kind.name());
            Ok(())
        }
        Err(errors) => Err(format!(
            "{path}: {} schema violation(s):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )),
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: schema_check <artifact.json>...");
        eprintln!("validates BENCH_*.json / MATRIX.json / simseed --json artifacts");
        return if paths.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut ok = true;
    for path in &paths {
        if let Err(msg) = check(path) {
            eprintln!("{msg}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
