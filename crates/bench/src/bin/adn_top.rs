//! adn-top: a live, top(1)-style view of per-element telemetry.
//!
//! Boots the standard in-process evaluation world (the same controller,
//! heartbeat, and `ClusterView` plumbing a distributed deployment uses),
//! drives background load, and renders the controller's sliding-window
//! view as a text table once per tick: per-element sampled rates and
//! latency quantiles, per-processor queue depth, and the flat counters
//! the registry re-exports (chaos, client resilience, server dedup).
//!
//! Usage: `adn-top [--once]` — `--once` renders a single frame and exits
//! (the CI smoke mode); otherwise it refreshes every second until killed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adn::harness::{AdnWorld, WorldConfig};
use adn_bench::Table;
use adn_cluster::resources::PlacementConstraint;
use adn_rpc::message::RpcMessage;

fn main() {
    let once = std::env::args().skip(1).any(|a| a == "--once");

    let mut cfg = WorldConfig::paper_eval_chain(0.0);
    for spec in &mut cfg.chain {
        // Off-app placement: the whole chain runs on a traced processor.
        spec.constraints = vec![PlacementConstraint::OffApp];
    }
    let world = AdnWorld::start(cfg).expect("world");
    world.controller().set_trace_sampling("app", 1.0);

    // Background load so the table shows live numbers.
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let client = world.client().clone();
        let target = world.target();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let m = client.service().method_by_id(1).expect("method");
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let msg = RpcMessage::request(0, 1, m.request.clone())
                    .with("object_id", i)
                    .with("username", "alice")
                    .with("payload", b"x".to_vec());
                let _ = client
                    .send_call(msg, target)
                    .and_then(|p| p.wait(Duration::from_secs(5)));
                i += 1;
            }
        })
    };

    let mut tick = 0u64;
    loop {
        // Two heartbeats per frame, each reconciled immediately so the
        // sliding window sees two distinct observation times (rates are
        // computed from consecutive cumulative counts).
        std::thread::sleep(Duration::from_millis(150));
        world.controller().report_loads("app");
        world.sync().expect("sync");
        std::thread::sleep(Duration::from_millis(150));
        world.controller().report_loads("app");
        world.sync().expect("sync");

        if !once {
            // Clear screen and home the cursor between frames.
            print!("\x1b[2J\x1b[H");
        }
        println!("adn-top — tick {tick} (sampling 1.0; Ctrl-C to quit)\n");

        let mut t = Table::new(&[
            "app", "element", "proc", "rate/s", "queue", "count", "errs", "p50 us", "p95 us",
            "p99 us",
        ]);
        for r in world.controller().view().rows() {
            t.row(&[
                r.app.clone(),
                r.element.clone(),
                format!("{:#x}", r.processor),
                r.rate.to_string(),
                r.queue_depth.to_string(),
                r.count.to_string(),
                r.errors.to_string(),
                format!("{:.2}", r.p50_ns as f64 / 1e3),
                format!("{:.2}", r.p95_ns as f64 / 1e3),
                format!("{:.2}", r.p99_ns as f64 / 1e3),
            ]);
        }
        println!("{}", t.render());

        let counters = world.telemetry_counters();
        if !counters.is_empty() {
            let mut c = Table::new(&["counter", "value"]);
            for (name, value) in &counters {
                c.row(&[name.clone(), value.to_string()]);
            }
            println!("\n{}", c.render());
        }

        tick += 1;
        if once {
            break;
        }
        std::thread::sleep(Duration::from_millis(700));
    }

    stop.store(true, Ordering::Relaxed);
    let _ = driver.join();
}
