//! `overload` — goodput-vs-offered-load curves for the overload control
//! plane, shedding on vs off.
//!
//! ```text
//! overload [--out PATH] [--seed N] [--calls N]
//!          [--multipliers A,B,..] [--smoke]
//! ```
//!
//! Drives the deterministic simulator's open-loop overload model (which
//! runs the *real* dataplane [`OverloadPolicy`] at the entry hop) across
//! a sweep of offered-load multipliers — offered = multiplier × capacity
//! — twice per point: once with the priority shed ladder + expired-frame
//! dropping armed, once with the naive FIFO baseline (no admission
//! control at all). Virtual time makes every cell exactly reproducible
//! from the seed; there is no wall-clock noise in these curves.
//!
//! The paper-level claim under test: with shedding, goodput at 2× offered
//! load stays within 20% of capacity, while the naive baseline collapses
//! (every queued request eventually times out, and the server burns its
//! cycles executing requests whose deadline already expired). The binary
//! exits non-zero if the claim does not hold, so CI can gate on it.

use std::process::ExitCode;
use std::time::Duration;

use adn_dataplane::processor::OverloadPolicy;
use adn_sim::scenario::Scenario;

struct Row {
    multiplier: f64,
    shedding: bool,
    calls_issued: u64,
    calls_ok: u64,
    calls_shed: u64,
    calls_timed_out: u64,
    calls_aborted: u64,
    expired_drops: u64,
    expired_executions: u64,
    queue_peak: u64,
    servable: u64,
    goodput_ratio: f64,
    violation: Option<String>,
}

/// Runs one cell: the overload preset re-paced to `multiplier` × capacity,
/// with admission control armed or disarmed.
fn run_cell(seed: u64, calls: u64, multiplier: f64, shedding: bool) -> Row {
    let mut s = if shedding {
        Scenario::overload()
    } else {
        Scenario::overload_naive()
    };
    s.calls = calls;
    let model = s.overload.as_mut().expect("overload preset has a model");
    let service_ns = model.service_time.as_nanos() as f64;
    model.issue_interval = Duration::from_nanos((service_ns / multiplier).max(1.0) as u64);
    // The measured goodput ratio below replaces the preset's pass/fail
    // floor: a sweep point at 4× would "violate" a floor tuned for 2×.
    model.goodput_floor = 0.0;
    if !shedding {
        model.policy = OverloadPolicy {
            shed_high_water: 0,
            drop_expired: false,
            brownout: false,
        };
    }
    let service_time = model.service_time;
    let issue_interval = model.issue_interval;
    let r = s.run(seed);

    // What a lossless scheduler could have completed: the issue window
    // holds `calls × interval / service_time` service slots (the ~50 ms
    // deadline budget of post-window drain is negligible against it).
    let window = issue_interval.as_nanos() as f64 * calls as f64;
    let servable = ((window / service_time.as_nanos() as f64).floor() as u64).min(calls);
    let goodput_ratio = if servable == 0 {
        0.0
    } else {
        r.stats.calls_ok as f64 / servable as f64
    };
    Row {
        multiplier,
        shedding,
        calls_issued: r.stats.calls_issued,
        calls_ok: r.stats.calls_ok,
        calls_shed: r.stats.calls_shed,
        calls_timed_out: r.stats.calls_timed_out,
        calls_aborted: r.stats.calls_aborted,
        expired_drops: r.stats.expired_drops,
        expired_executions: r.stats.expired_executions,
        queue_peak: r.stats.queue_peak,
        servable,
        goodput_ratio,
        violation: r
            .violation
            .map(|v| format!("{}: {}", v.invariant, v.detail)),
    }
}

struct Args {
    out: String,
    seed: u64,
    calls: u64,
    multipliers: Vec<f64>,
    smoke: bool,
}

fn parse_multipliers(spec: &str) -> Option<Vec<f64>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let m: f64 = part.trim().parse().ok()?;
        if m <= 0.0 || m.is_nan() {
            return None;
        }
        out.push(m);
    }
    (!out.is_empty()).then_some(out)
}

fn parse(argv: &[String]) -> Option<Args> {
    let mut args = Args {
        out: "BENCH_overload.json".to_string(),
        seed: 1,
        calls: 600,
        multipliers: vec![0.5, 1.0, 2.0, 4.0],
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                args.out = argv.get(i + 1)?.clone();
                i += 2;
            }
            "--seed" => {
                args.seed = argv.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--calls" => {
                args.calls = argv.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--multipliers" => {
                args.multipliers = parse_multipliers(argv.get(i + 1)?)?;
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mut args) = parse(&argv) else {
        eprintln!(
            "usage: overload [--out PATH] [--seed N] [--calls N] \
             [--multipliers A,B,..] [--smoke]"
        );
        return ExitCode::from(2);
    };
    if args.smoke {
        args.calls = args.calls.min(300);
        args.multipliers = vec![1.0, 2.0];
    }

    let mut rows: Vec<Row> = Vec::new();
    for &m in &args.multipliers {
        for shedding in [true, false] {
            let row = run_cell(args.seed, args.calls, m, shedding);
            eprintln!(
                "x{m} shedding={shedding} -> ok={} shed={} timeout={} \
                 expired_exec={} queue_peak={} goodput={:.2}",
                row.calls_ok,
                row.calls_shed,
                row.calls_timed_out,
                row.expired_executions,
                row.queue_peak,
                row.goodput_ratio,
            );
            rows.push(row);
        }
    }

    let ratio = |mult: f64, shedding: bool| -> Option<f64> {
        rows.iter()
            .find(|r| r.shedding == shedding && (r.multiplier - mult).abs() < 1e-9)
            .map(|r| r.goodput_ratio)
    };
    let shed_2x = ratio(2.0, true);
    let naive_2x = ratio(2.0, false);
    // The headline claim only gates when the sweep includes the 2× point.
    let pass = match (shed_2x, naive_2x) {
        (Some(s), Some(n)) => s >= 0.8 && n < s,
        _ => true,
    };
    let expired_exec_with_shedding: u64 = rows
        .iter()
        .filter(|r| r.shedding)
        .map(|r| r.expired_executions)
        .sum();
    let violated: Vec<String> = rows
        .iter()
        .filter_map(|r| {
            r.violation
                .as_ref()
                .map(|v| format!("x{} shedding={}: {v}", r.multiplier, r.shedding))
        })
        .collect();

    let row_values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "multiplier": (r.multiplier),
                "shedding": (r.shedding),
                "calls_issued": (r.calls_issued),
                "calls_ok": (r.calls_ok),
                "calls_shed": (r.calls_shed),
                "calls_timed_out": (r.calls_timed_out),
                "calls_aborted": (r.calls_aborted),
                "expired_drops": (r.expired_drops),
                "expired_executions": (r.expired_executions),
                "queue_peak": (r.queue_peak),
                "servable": (r.servable),
                "goodput_ratio": (r.goodput_ratio),
                "violation": (serde_json::to_value(&r.violation).expect("serialize violation"))
            })
        })
        .collect();
    let summary = serde_json::json!({
        "goodput_ratio_2x_shedding": (shed_2x.unwrap_or(-1.0)),
        "goodput_ratio_2x_naive": (naive_2x.unwrap_or(-1.0)),
        "expired_executions_with_shedding": (expired_exec_with_shedding),
        "pass": (pass)
    });
    let json = serde_json::json!({
        "bench": "overload",
        "schema_version": 1,
        "seed": (args.seed),
        "calls": (args.calls),
        "service_us": 1000,
        "budget_ms": 50,
        "smoke": (args.smoke),
        "rows": (row_values),
        "summary": (summary)
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize");
    if let Err(e) = std::fs::write(&args.out, format!("{text}\n")) {
        eprintln!("could not write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{text}");

    if !violated.is_empty() {
        eprintln!("FAILED: invariant violations: {violated:?}");
        return ExitCode::FAILURE;
    }
    if expired_exec_with_shedding > 0 {
        eprintln!("FAILED: a shedding cell executed an expired request");
        return ExitCode::FAILURE;
    }
    if !pass {
        eprintln!(
            "FAILED: goodput claim does not hold \
             (2x shedding {shed_2x:?} vs naive {naive_2x:?})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
