//! `jit_bench` — msgs/sec for the paper_eval chain (Logging → Acl →
//! Fault) across the three execution tiers, one `BENCH_jit.json`.
//!
//! ```text
//! jit_bench [--out PATH] [--seed N] [--iters N] [--chain A,B,..] [--smoke]
//! ```
//!
//! Rows sweep `tier × mode`:
//!
//! - **tier**: `interp` (tree-walking `NativeEngine`), `threaded`
//!   (direct-threaded op IR), `native` (x86-64 template JIT; emitted only
//!   where the target supports it).
//! - **mode**: `chain` (one engine per element behind `Box<dyn Engine>`,
//!   the pre-JIT production shape) and `fused` (the whole chain compiled
//!   into a single program).
//!
//! The headline `summary.jit_speedup` compares what the dataplane actually
//! runs before and after this subsystem: the interpreter engine chain vs
//! the best compiled fused engine. All tiers share one RNG seed, so every
//! row processes an identical message/verdict stream — the work is the
//! same, only the execution strategy differs.

use std::process::ExitCode;
use std::time::Instant;

use adn::harness::object_store_schemas;
use adn_backend::jit::{native_available, JitEngine, JitTier};
use adn_backend::native::{compile_element, compile_fused, element_seed, CompileOpts};
use adn_bench::{PAPER_FAULT_PROB, PAPER_PAYLOAD, PAPER_USERS};
use adn_rpc::engine::{Engine, EngineChain, Verdict};
use adn_rpc::message::RpcMessage;

struct Args {
    out: String,
    seed: u64,
    iters: u64,
    chain: Vec<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_jit.json".to_string(),
        seed: 0x5eed,
        iters: 600_000,
        chain: ["Logging", "Acl", "Fault"].map(String::from).to_vec(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = val("--out")?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--iters" => args.iters = val("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--chain" => args.chain = val("--chain")?.split(',').map(String::from).collect(),
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.iters = args.iters.min(20_000);
    }
    Ok(args)
}

struct Row {
    tier: &'static str,
    mode: &'static str,
    iters: u64,
    elapsed_ms: f64,
    ns_per_msg: f64,
    msgs_per_sec: f64,
    forwarded: u64,
    dropped: u64,
    aborted: u64,
}

/// Warmup drives bounded tables (the 65536-row log) to capacity so every
/// row measures steady-state behavior, not the one-off growth phase.
const WARMUP_ITERS: u64 = 70_000;
/// Each row is measured in passes; the best pass is the steady-state
/// figure (container/CPU noise hits all rows, but not uniformly in time).
const PASSES: u64 = 6;

/// A chain row runs through the production `EngineChain`; a fused row is
/// one engine.
enum Built {
    Chain(EngineChain),
    One(Box<dyn Engine>),
}

impl Built {
    #[inline]
    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        match self {
            Built::Chain(c) => c.process(msg),
            Built::One(e) => e.process(msg),
        }
    }
}

/// The per-row message pool: one prototype per paper user, cycled by the
/// timed loop so no allocation or schema lookup happens per message
/// (identical harness cost in every row). Pools are refreshed from the
/// prototypes every 64 rotations, like the pre-JIT harnesses.
struct MsgPool {
    protos: Vec<RpcMessage>,
    msgs: Vec<RpcMessage>,
}

impl MsgPool {
    fn new(proto: &RpcMessage) -> MsgPool {
        let uname = proto
            .schema
            .index_of("username")
            .expect("schema has username");
        let protos: Vec<RpcMessage> = PAPER_USERS
            .iter()
            .map(|u| {
                let mut m = proto.clone();
                m.set_idx(uname, adn_rpc::value::Value::Str((*u).to_string()));
                m
            })
            .collect();
        let msgs = protos.clone();
        MsgPool { protos, msgs }
    }

    #[inline]
    fn next(&mut self, i: u64) -> &mut RpcMessage {
        // Periodic refresh bounds drift from message-mutating elements
        // without dominating the loop (none of the paper chain mutates).
        if i.is_multiple_of(1024) {
            self.msgs.clone_from(&self.protos);
        }
        &mut self.msgs[(i % self.protos.len() as u64) as usize]
    }
}

/// One pass of `per_pass` messages through an engine, timed.
fn run_pass(
    engine: &mut Built,
    pool: &mut MsgPool,
    per_pass: u64,
    counts: &mut (u64, u64, u64),
) -> f64 {
    let start = Instant::now();
    for i in 0..per_pass {
        let msg = pool.next(i);
        match engine.process(msg) {
            Verdict::Forward => counts.0 += 1,
            Verdict::Drop => counts.1 += 1,
            Verdict::Abort { .. } | Verdict::Shed => counts.2 += 1,
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("jit_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (req_schema, resp_schema) = object_store_schemas();
    let elements: Vec<adn_ir::ElementIr> = args
        .chain
        .iter()
        .map(|name| {
            let params: &[(String, adn_rpc::value::Value)] = if name == "Fault" {
                &[(
                    "abort_prob".to_owned(),
                    adn_rpc::value::Value::F64(PAPER_FAULT_PROB),
                )]
            } else {
                &[]
            };
            adn_elements::build(name, params, &req_schema, &resp_schema)
                .unwrap_or_else(|e| panic!("element {name} builds: {e:?}"))
        })
        .collect();
    let opts = CompileOpts {
        seed: args.seed,
        ..Default::default()
    };
    let proto = RpcMessage::request(1, 1, req_schema.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", PAPER_PAYLOAD.to_vec());

    // Engine constructors per (tier, mode). Each timed run gets a fresh
    // engine so table contents and RNG position are identical across rows.
    let tiers: Vec<(&'static str, JitTier)> = {
        let mut t = vec![("interp", JitTier::Interp), ("threaded", JitTier::Threaded)];
        if native_available() {
            t.push(("native", JitTier::Native));
        }
        t
    };

    let make = |tier: JitTier, fused: bool| -> Built {
        match (tier, fused) {
            (JitTier::Interp, false) => Built::Chain(EngineChain::from_engines(
                elements
                    .iter()
                    .enumerate()
                    .map(|(i, e)| {
                        // Per-position seeds, matching the fused engine's RNG
                        // streams so every row sees identical verdicts.
                        let o = CompileOpts {
                            seed: element_seed(opts.seed, i),
                            ..opts.clone()
                        };
                        Box::new(compile_element(e, &o)) as Box<dyn Engine>
                    })
                    .collect(),
            )),
            (JitTier::Interp, true) => Built::One(Box::new(compile_fused(&elements, &opts))),
            (tier, false) => Built::Chain(EngineChain::from_engines(
                elements
                    .iter()
                    .enumerate()
                    .map(|(i, e)| {
                        let o = CompileOpts {
                            seed: element_seed(opts.seed, i),
                            ..opts.clone()
                        };
                        Box::new(JitEngine::single(e, &o, tier)) as Box<dyn Engine>
                    })
                    .collect(),
            )),
            (tier, true) => Built::One(Box::new(JitEngine::fused(&elements, &opts, tier))),
        }
    };

    println!(
        "== jit_bench: chain [{}], {} iters/row, best of {} passes ==\n",
        args.chain.join(" -> "),
        args.iters,
        PASSES
    );

    // Each row gets a fresh engine (identical table contents and RNG
    // position), a long warmup to steady state (bounded tables at
    // capacity), and then its timed passes back-to-back with warm caches.
    struct RowState {
        tier: &'static str,
        mode: &'static str,
        engine: Built,
        pool: MsgPool,
        counts: (u64, u64, u64),
        total_secs: f64,
        best_ns: f64,
    }
    let mut states: Vec<RowState> = Vec::new();
    for &(tier_name, tier) in &tiers {
        for (mode, fused) in [("chain", false), ("fused", true)] {
            states.push(RowState {
                tier: tier_name,
                mode,
                engine: make(tier, fused),
                pool: MsgPool::new(&proto),
                counts: (0, 0, 0),
                total_secs: 0.0,
                best_ns: f64::INFINITY,
            });
        }
    }
    // Two visits per row, with every other row measured in between: a
    // transient slowdown on the shared machine (scheduler preemption,
    // neighbor cache pressure) that spans one visit's passes cannot poison
    // the row, because the best pass is taken across both visits.  Within
    // a visit the passes stay back-to-back so caches stay warm; the warmup
    // runs only on the first visit (table state persists).
    const VISITS: u64 = 2;
    let per_pass = (args.iters / (PASSES * VISITS)).max(1);
    for visit in 0..VISITS {
        for st in states.iter_mut() {
            if visit == 0 {
                let mut sink = (0, 0, 0);
                let _ = run_pass(&mut st.engine, &mut st.pool, WARMUP_ITERS, &mut sink);
            }
            for _pass in 0..PASSES {
                let secs = run_pass(&mut st.engine, &mut st.pool, per_pass, &mut st.counts);
                st.total_secs += secs;
                st.best_ns = st.best_ns.min(secs * 1e9 / per_pass as f64);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for st in &states {
        let row = Row {
            tier: st.tier,
            mode: st.mode,
            iters: per_pass * PASSES * VISITS,
            elapsed_ms: st.total_secs * 1e3,
            ns_per_msg: st.best_ns,
            msgs_per_sec: 1e9 / st.best_ns,
            forwarded: st.counts.0,
            dropped: st.counts.1,
            aborted: st.counts.2,
        };
        println!(
            "{:>8} {:<5}  {:>7.1} ns/msg  {:>11.0} msgs/s  (fwd {} drop {} abort {})",
            row.tier,
            row.mode,
            row.ns_per_msg,
            row.msgs_per_sec,
            row.forwarded,
            row.dropped,
            row.aborted
        );
        rows.push(row);
    }

    // Identical verdict streams across rows = the tiers did the same work.
    let baseline: Vec<u64> = vec![rows[0].forwarded, rows[0].dropped, rows[0].aborted];
    let divergent = rows
        .iter()
        .any(|r| vec![r.forwarded, r.dropped, r.aborted] != baseline);

    let rate = |tier: &str, mode: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.tier == tier && r.mode == mode)
            .map(|r| r.msgs_per_sec)
    };
    let best_tier = if native_available() {
        "native"
    } else {
        "threaded"
    };
    let jit_speedup = match (rate("interp", "chain"), rate(best_tier, "fused")) {
        (Some(base), Some(top)) if base > 0.0 => top / base,
        _ => 0.0,
    };
    let fused_jit_vs_fused_interp = match (rate("interp", "fused"), rate(best_tier, "fused")) {
        (Some(base), Some(top)) if base > 0.0 => top / base,
        _ => 0.0,
    };

    println!(
        "\nspeedup ({best_tier} fused vs interp chain): {jit_speedup:.2}x  \
         (vs interp fused: {fused_jit_vs_fused_interp:.2}x)"
    );

    let row_values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "tier": (r.tier),
                "mode": (r.mode),
                "iters": (r.iters),
                "elapsed_ms": (r.elapsed_ms),
                "ns_per_msg": (r.ns_per_msg),
                "msgs_per_sec": (r.msgs_per_sec),
                "forwarded": (r.forwarded),
                "dropped": (r.dropped),
                "aborted": (r.aborted)
            })
        })
        .collect();
    let json = serde_json::json!({
        "bench": "jit",
        "schema_version": 1,
        "seed": (args.seed),
        "smoke": (args.smoke),
        "chain": (args.chain),
        "best_tier": (best_tier),
        "rows": (row_values),
        "summary": {
            "jit_speedup": (jit_speedup),
            "fused_jit_vs_fused_interp": (fused_jit_vs_fused_interp),
            "verdicts_identical": (!divergent)
        }
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize");
    if let Err(e) = std::fs::write(&args.out, format!("{text}\n")) {
        eprintln!("could not write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", args.out);

    if divergent {
        eprintln!("FAILED: tiers produced different verdict streams");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
