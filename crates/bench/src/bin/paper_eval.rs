//! The paper-evaluation harness: regenerates every quantitative artifact of
//! *Application Defined Networks* (HotNets '23) on this repository's
//! simulated substrate, printing paper-style tables.
//!
//! Experiments (ids from DESIGN.md):
//!   E1/E2  Figure 5: RPC rate + latency for Logging/ACL/Fault ×
//!          {gRPC+Envoy, ADN, hand-coded}
//!   E3     LoC: DSL vs generated Rust vs hand-written Rust
//!   E4     Figure 2: the four deployment configurations
//!   E5     §2 overhead decomposition of the mesh data path
//!   E6     generated-vs-hand-coded per-element overhead
//!   E7     live reconfiguration without disruption
//!   E8     optimizer ablations (reorder, const-fold, minimal headers)
//!   E9     goodput under chaos: frame drops vs resilient (retry + dedup)
//!          calls; at-most-once verified via server effect counters
//!   E10    per-element latency breakdown from in-band trace spans
//!          (sampling 1.0; the residual row is the unattributed
//!          transport + endpoint time)
//!   E11    offload matrix: every catalog element audited under a set of
//!          site policies, with the verifier's proved cost bounds
//!   E12    JIT tier ablation: the paper chain across interpreter,
//!          direct-threaded, and native template-JIT execution
//!
//! Usage: `paper_eval [--lint] [--fig5] [--loc] [--fig2] [--overhead]
//! [--codegen] [--reconfig] [--ablation] [--chaos]
//! [--latency-breakdown] [--offload-matrix] [--jit-ablation]`
//! (no flags = run everything).
//! `--smoke` shrinks
//! sample counts for CI. `ADN_BENCH_SECS` scales measurement time
//! (default 2s per point); `ADN_CHAOS_DROP` / `ADN_CHAOS_SEED`
//! configure E9.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adn::harness::{
    object_store_schemas, object_store_service, AdnWorld, HandcodedWorld, MeshPolicies, MeshWorld,
    WorldConfig,
};
use adn_bench::{
    measure_duration, median, percentile, us, Table, PAPER_CONCURRENCY, PAPER_FAULT_PROB,
    PAPER_PAYLOAD, PAPER_USERS,
};
use adn_rpc::engine::Engine;
use adn_rpc::message::RpcMessage;
use adn_rpc::value::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let all = args.iter().all(|a| a == "--smoke");
    let has = |flag: &str| all || args.iter().any(|a| a == flag);

    println!(
        "== ADN paper evaluation harness (adn {}) ==",
        adn::version()
    );
    println!(
        "measurement window: {:?} per point (ADN_BENCH_SECS to change)\n",
        measure_duration()
    );

    if has("--lint") {
        lint_eval_chains();
    }
    if has("--fig5") {
        fig5();
    }
    if has("--loc") {
        loc_table();
    }
    if has("--fig2") {
        fig2();
    }
    if has("--overhead") {
        mesh_overhead();
    }
    if has("--codegen") {
        codegen_overhead();
    }
    if has("--reconfig") {
        reconfig();
    }
    if has("--ablation") {
        ablation();
    }
    if has("--chaos") {
        chaos_goodput();
    }
    if has("--latency-breakdown") {
        latency_breakdown(smoke);
    }
    if has("--offload-matrix") {
        offload_matrix();
    }
    if has("--jit-ablation") {
        jit_ablation(smoke);
    }
}

// ---------------------------------------------------------------------------
// Pre-flight: static verification of every chain the harness measures
// ---------------------------------------------------------------------------

/// Runs the chain verifier and the optimizer audit over each chain used by
/// the experiments below, so a broken element or a miscompiling pass shows
/// up as a named diagnostic before any time is spent measuring it.
fn lint_eval_chains() {
    use adn_ir::{optimize, ChainIr, PassConfig};
    use adn_verifier::{audit_headers, audit_report, verify_chain, ChainVerifyOptions};

    println!("--- pre-flight: chain verification and optimizer audit ---\n");
    let (req_schema, resp_schema) = object_store_schemas();

    let chains: &[(&str, &[&str])] = &[
        ("E1 logging", &["Logging"]),
        ("E1 acl", &["Acl"]),
        ("E1/E2 full", &["Logging", "Acl", "Fault"]),
        (
            "E4 fig2",
            &["LoadBalancer", "Compress", "Acl", "Decompress"],
        ),
        ("E4 scale-out", &["Compress", "Acl", "Decompress"]),
        ("E7 reconfig", &["Metrics"]),
        ("E8 reorder", &["Compress", "Acl"]),
    ];

    let mut t = Table::new(&["chain", "elements", "verify", "optimizer audit"]);
    let mut dirty = 0usize;
    for (label, names) in chains {
        let elements: Vec<adn_ir::ElementIr> = names
            .iter()
            .map(|n| adn_elements::build(n, &[], &req_schema, &resp_schema).expect("build"))
            .collect();
        let chain = ChainIr::new(elements, req_schema.clone(), resp_schema.clone());

        let findings = verify_chain(&chain, &ChainVerifyOptions::default());
        let (optimized, report) = optimize(chain.clone(), &PassConfig::default());
        let mut audit = audit_report(&chain, &optimized, &report);
        audit.extend(audit_headers(&optimized));

        for f in &findings {
            let name = f
                .element
                .map(|i| chain.elements[i].name.as_str())
                .unwrap_or("-");
            eprintln!(
                "  {label}: [{}] {} ({name})",
                f.diagnostic.code, f.diagnostic.message
            );
        }
        for d in &audit {
            eprintln!("  {label}: [{}] {}", d.code, d.message);
        }
        dirty += findings.len() + audit.len();
        t.row(&[
            (*label).into(),
            names.join(" → "),
            if findings.is_empty() {
                "clean".into()
            } else {
                format!("{} finding(s)", findings.len())
            },
            if audit.is_empty() {
                "clean".into()
            } else {
                format!("{} finding(s)", audit.len())
            },
        ]);
    }
    println!("{}", t.render());
    if dirty == 0 {
        println!("all evaluation chains verify clean; optimizer reports re-validated.\n");
    } else {
        println!("{dirty} diagnostic(s) above — results below may not be meaningful.\n");
    }
}

// ---------------------------------------------------------------------------
// E1/E2 — Figure 5
// ---------------------------------------------------------------------------

struct SystemPoint {
    krps: f64,
    median_us: f64,
    p99_us: f64,
}

/// Repeated measurement: three closed-loop windows (best rate kept — the
/// standard way to de-noise a closed loop sharing cores with its servers)
/// plus one pooled latency sample.
fn measure_point(
    run_window: impl Fn(Duration) -> (u64, Duration),
    sample: impl Fn(usize) -> Vec<Duration>,
) -> SystemPoint {
    let window = measure_duration();
    // Warm-up window (JIT-free, but warms allocators, caches, threads).
    let _ = run_window(window / 4);
    let mut best_krps = 0.0f64;
    for _ in 0..3 {
        let (total, elapsed) = run_window(window);
        best_krps = best_krps.max(total as f64 / elapsed.as_secs_f64() / 1e3);
    }
    let lat = sample(1500);
    SystemPoint {
        krps: best_krps,
        median_us: us(median(&lat)),
        p99_us: us(percentile(&lat, 99.0)),
    }
}

fn measure_adn(config: WorldConfig) -> SystemPoint {
    let world = AdnWorld::start(config).expect("world");
    measure_point(
        |w| {
            let start = Instant::now();
            let stats = world.run_closed_loop(PAPER_CONCURRENCY, w, PAPER_PAYLOAD, PAPER_USERS);
            (stats.total(), start.elapsed())
        },
        |n| world.sample_latency(n, PAPER_PAYLOAD, "alice"),
    )
}

fn measure_mesh(policies: MeshPolicies) -> SystemPoint {
    let world = MeshWorld::start(policies, 7);
    measure_point(
        |w| {
            let start = Instant::now();
            let stats = world.run_closed_loop(PAPER_CONCURRENCY, w, PAPER_PAYLOAD, PAPER_USERS);
            (stats.total(), start.elapsed())
        },
        |n| world.sample_latency(n, PAPER_PAYLOAD, "alice"),
    )
}

fn measure_handcoded(engines: Vec<Box<dyn Engine>>) -> SystemPoint {
    let world = HandcodedWorld::start_with(engines);
    measure_point(
        |w| {
            let start = Instant::now();
            let stats = world.run_closed_loop(PAPER_CONCURRENCY, w, PAPER_PAYLOAD, PAPER_USERS);
            (stats.total(), start.elapsed())
        },
        |n| world.sample_latency(n, PAPER_PAYLOAD, "alice"),
    )
}

fn fig5() {
    println!("--- E1/E2: Figure 5 — RPC rate and latency ---");
    println!(
        "workload: {PAPER_CONCURRENCY} concurrent RPCs, one client thread, short byte strings\n"
    );
    let (req_schema, _) = object_store_schemas();

    type Fig5Case = (
        &'static str,
        WorldConfig,
        MeshPolicies,
        Vec<Box<dyn Engine>>,
    );
    let cases: Vec<Fig5Case> = vec![
        (
            "Logging",
            WorldConfig::of_elements(&["Logging"]),
            MeshPolicies {
                logging: true,
                acl: false,
                fault_prob: 0.0,
            },
            vec![Box::new(adn_elements::handcoded::HandLogging::new(
                &req_schema,
            ))],
        ),
        (
            "ACL",
            WorldConfig::of_elements(&["Acl"]),
            MeshPolicies {
                logging: false,
                acl: true,
                fault_prob: 0.0,
            },
            vec![Box::new(
                adn_elements::handcoded::HandAcl::with_default_table(&req_schema),
            )],
        ),
        (
            "Fault",
            WorldConfig::paper_eval_chain(PAPER_FAULT_PROB),
            MeshPolicies::all(PAPER_FAULT_PROB),
            adn_elements::handcoded::paper_eval_chain_handcoded(&req_schema, PAPER_FAULT_PROB, 7),
        ),
    ];
    // The third group chains all three elements, as in the paper ("RPCs
    // are logged, access controlled, and some of them are dropped").
    let mut rate = Table::new(&[
        "element",
        "gRPC+Envoy (krps)",
        "ADN (krps)",
        "hand-coded (krps)",
        "ADN/Envoy",
    ]);
    let mut latency = Table::new(&[
        "element",
        "gRPC+Envoy p50 (us)",
        "ADN p50 (us)",
        "hand-coded p50 (us)",
        "Envoy/ADN",
        "ADN p99 (us)",
    ]);

    for (name, adn_cfg, mesh_pol, hand_engines) in cases {
        eprintln!("  measuring {name}...");
        let mesh = measure_mesh(mesh_pol);
        let adn = measure_adn(adn_cfg);
        let hand = measure_handcoded(hand_engines);
        rate.row(&[
            name.into(),
            format!("{:.1}", mesh.krps),
            format!("{:.1}", adn.krps),
            format!("{:.1}", hand.krps),
            format!("{:.1}x", adn.krps / mesh.krps),
        ]);
        latency.row(&[
            name.into(),
            format!("{:.1}", mesh.median_us),
            format!("{:.1}", adn.median_us),
            format!("{:.1}", hand.median_us),
            format!("{:.1}x", mesh.median_us / adn.median_us),
            format!("{:.1}", adn.p99_us),
        ]);
    }
    println!("{}", rate.render());
    println!("{}", latency.render());
    println!("paper: ADN 5-6x higher rate, 17-20x lower latency vs Envoy;");
    println!("       hand-coded within 3-12% of ADN.\n");
}

// ---------------------------------------------------------------------------
// E3 — lines of code
// ---------------------------------------------------------------------------

fn loc_table() {
    println!("--- E3: lines of code — DSL vs generated Rust vs hand-written ---\n");
    let (req, resp) = object_store_schemas();
    let handcoded_src = include_str!("../../../elements/src/handcoded.rs");

    let mut t = Table::new(&[
        "element",
        "DSL LoC",
        "generated Rust LoC",
        "hand-written Rust LoC",
        "DSL/hand ratio",
    ]);
    for (name, hand_struct) in [
        ("Logging", "HandLogging"),
        ("Acl", "HandAcl"),
        ("Fault", "HandFault"),
    ] {
        let ir = adn_elements::build(name, &[], &req, &resp).expect("build");
        let dsl_loc = adn_backend::rust_codegen::count_loc(&ir.source);
        let generated = adn_backend::rust_codegen::generate(&ir);
        let gen_loc = adn_backend::rust_codegen::count_loc(&generated);
        let hand_loc = handwritten_loc(handcoded_src, hand_struct);
        t.row(&[
            name.into(),
            dsl_loc.to_string(),
            gen_loc.to_string(),
            hand_loc.to_string(),
            format!("1:{:.0}", hand_loc as f64 / dsl_loc as f64),
        ]);
    }
    println!("{}", t.render());
    println!("paper: \"tens of lines of SQL\" vs \"hundreds of lines of Rust\".\n");
}

/// Counts the lines of the hand-written engine: from `pub struct <name>` to
/// the end of its `impl Engine for <name>` block.
fn handwritten_loc(source: &str, struct_name: &str) -> usize {
    let start = source
        .find(&format!("pub struct {struct_name}"))
        .expect("struct present");
    let impl_marker = format!("impl Engine for {struct_name}");
    let impl_start = source[start..].find(&impl_marker).expect("impl present") + start;
    // Find the end of the impl block by brace matching.
    let bytes = &source.as_bytes()[impl_start..];
    let mut depth = 0usize;
    let mut end = impl_start;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = impl_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    adn_backend::rust_codegen::count_loc(&source[start..end])
}

// ---------------------------------------------------------------------------
// E4 — Figure 2 configurations
// ---------------------------------------------------------------------------

fn fig2() {
    use adn::harness::EnvPreset;
    use adn_cluster::resources::PlacementConstraint;

    println!("--- E4: Figure 2 — deployment configurations of the §2 chain ---");
    println!("chain: LoadBalancer → Compress → Acl → Decompress, 2 KiB payloads, 2 replicas\n");

    let payload = vec![0x5Au8; 2048];
    let window = measure_duration();
    let mut t = Table::new(&["configuration", "placement", "krps", "p50 latency (us)"]);

    let base_chain = ["LoadBalancer", "Compress", "Acl", "Decompress"];
    let mut run = |label: &str, env: EnvPreset, constraints: Vec<Vec<PlacementConstraint>>| {
        let mut cfg = WorldConfig::of_elements(&base_chain);
        cfg.replicas = 2;
        cfg.env = env;
        for (spec, cons) in cfg.chain.iter_mut().zip(constraints) {
            spec.constraints = cons;
        }
        let world = AdnWorld::start(cfg).expect("world");
        let placement = world.describe();
        let start = Instant::now();
        let stats = world.run_closed_loop(PAPER_CONCURRENCY, window, &payload, &["alice", "carol"]);
        let elapsed = start.elapsed();
        let lat = world.sample_latency(600, &payload, "alice");
        t.row(&[
            label.into(),
            placement,
            format!("{:.1}", stats.total() as f64 / elapsed.as_secs_f64() / 1e3),
            format!("{:.1}", us(median(&lat))),
        ]);
    };

    eprintln!("  config 1 (in-app)...");
    run(
        "C1: in-app policies",
        EnvPreset::Bare,
        vec![vec![], vec![], vec![], vec![]],
    );
    eprintln!("  config 2 (kernel/SmartNIC offload)...");
    run(
        "C2: kernel/SmartNIC offload",
        EnvPreset::Rich,
        vec![
            vec![PlacementConstraint::OffApp],
            vec![PlacementConstraint::OffApp, PlacementConstraint::SenderSide],
            vec![PlacementConstraint::OffApp],
            vec![
                PlacementConstraint::OffApp,
                PlacementConstraint::ReceiverSide,
            ],
        ],
    );
    eprintln!("  config 3 (switch offload + reorder)...");
    run(
        "C3: switch offload + reorder",
        EnvPreset::Rich,
        vec![
            vec![PlacementConstraint::OffApp],
            vec![],
            vec![PlacementConstraint::OffApp],
            vec![PlacementConstraint::ReceiverSide],
        ],
    );

    // Configuration 4: scale out the processing across shard instances.
    eprintln!("  config 4 (scale-out)...");
    for shards in [1usize, 4] {
        let (krps, p50) = scale_out_point(shards, &payload, window);
        t.row(&[
            format!("C4: scale-out x{shards}"),
            format!("router + {shards} processor instance(s)"),
            format!("{krps:.1}"),
            format!("{p50:.1}"),
        ]);
    }

    println!("{}", t.render());
    println!("expected shape: C3's reorder runs the cheap ACL before compression;");
    println!("offload frees the app path; scale-out raises throughput.\n");
}

/// Builds client → shard-router → N processors (Compress→Acl→Decompress) →
/// server and measures a closed loop.
fn scale_out_point(shards: usize, payload: &[u8], window: Duration) -> (f64, f64) {
    use adn_backend::jit::compile_engine;
    use adn_backend::native::{element_seed, CompileOpts};
    use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig, DEFAULT_BATCH_MAX};
    use adn_dataplane::scaleout::{spawn_sharded, ShardBy, ShardedConfig};
    use adn_rpc::engine::EngineChain;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::transport::{InProcNetwork, Link};

    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());

    // Server.
    let server_frames = net.attach(200);
    let svc = service.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 200,
            service: service.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        server_frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).expect("method");
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp
        }),
    );

    // Shard instances hosting Compress → Acl → Decompress.
    let elements: Vec<adn_ir::ElementIr> = ["Compress", "Acl", "Decompress"]
        .iter()
        .map(|n| adn_elements::build(n, &[], &req_schema, &resp_schema).expect("build"))
        .collect();
    let mut handles = Vec::new();
    let mut instance_addrs = Vec::new();
    for s in 0..shards {
        let addr = 1000 + s as u64;
        let mut chain = EngineChain::new();
        for (i, e) in elements.iter().enumerate() {
            chain.push(compile_engine(
                e,
                &CompileOpts {
                    seed: element_seed(7 ^ (s as u64) << 32, i),
                    replicas: vec![],
                    ..Default::default()
                },
            ));
        }
        let frames = net.attach(addr);
        handles.push(spawn_processor(
            ProcessorConfig {
                addr,
                service: service.clone(),
                chain,
                request_next: NextHop::Fixed(200),
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: None,
                clock: None,
                batch_max: DEFAULT_BATCH_MAX,
                overload: Default::default(),
                inbox_capacity: None,
            },
            link.clone(),
            frames,
        ));
        instance_addrs.push(addr);
    }
    let router_frames = net.attach(500);
    let _router = spawn_sharded(
        ShardedConfig {
            addr: 500,
            instances: instance_addrs,
            service: service.clone(),
            shard_by: ShardBy::RequestField(1), // username
            inherited_flows: Default::default(),
        },
        link.clone(),
        router_frames,
    );

    let client_frames = net.attach(100);
    let client = RpcClient::new(
        100,
        link,
        client_frames,
        service.clone(),
        EngineChain::new(),
    );
    client.set_via(Some(500));

    let make = |i: u64, user: &str| {
        let m = service.method_by_id(1).expect("method");
        RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", i)
            .with("username", user)
            .with("payload", payload.to_vec())
    };

    // Closed loop over known writers (the ACL would deny unknown users).
    let users = ["alice", "carol", "dave"];
    let start = Instant::now();
    let mut completed = 0u64;
    let mut window_calls: std::collections::VecDeque<adn_rpc::runtime::PendingCall> =
        Default::default();
    let mut seq = 0u64;
    for _ in 0..PAPER_CONCURRENCY {
        if let Ok(p) = client.send_call(make(seq, users[(seq % 3) as usize]), 200) {
            window_calls.push_back(p);
        }
        seq += 1;
    }
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        if let Some(p) = window_calls.pop_front() {
            let _ = p.wait(Duration::from_secs(10));
            completed += 1;
        }
        if let Ok(p) = client.send_call(make(seq, users[(seq % 3) as usize]), 200) {
            window_calls.push_back(p);
        }
        seq += 1;
    }
    for p in window_calls {
        let _ = p.wait(Duration::from_secs(10));
        completed += 1;
    }
    let elapsed = start.elapsed();

    // Latency.
    let lats: Vec<Duration> = (0..300)
        .map(|i| {
            let t0 = Instant::now();
            let _ = client
                .send_call(make(i, "alice"), 200)
                .and_then(|p| p.wait(Duration::from_secs(10)));
            t0.elapsed()
        })
        .collect();

    (
        completed as f64 / elapsed.as_secs_f64() / 1e3,
        us(median(&lats)),
    )
}

// ---------------------------------------------------------------------------
// E5 — mesh overhead decomposition
// ---------------------------------------------------------------------------

fn mesh_overhead() {
    println!("--- E5: mesh data-path overhead decomposition (per message) ---\n");
    let service = object_store_service();
    let m = service.method_by_id(1).expect("method");
    let msg = RpcMessage::request(9, 1, m.request.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", PAPER_PAYLOAD.to_vec());

    let iters = 20_000;
    let time_op = |mut f: Box<dyn FnMut()>| -> f64 {
        // Warm up.
        for _ in 0..1000 {
            f();
        }
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    let mut t = Table::new(&["operation", "ns/op", "bytes"]);

    // ADN wire format.
    let adn_bytes = adn_rpc::wire_format::encode_message_to_vec(&msg).expect("encode");
    {
        let msg = msg.clone();
        t.row(&[
            "ADN: schema encode (full message)".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let _ = adn_rpc::wire_format::encode_message_to_vec(&msg);
                }))
            ),
            adn_bytes.len().to_string(),
        ]);
    }
    {
        let bytes = adn_bytes.clone();
        let svc = service.clone();
        t.row(&[
            "ADN: schema decode".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let _ = adn_rpc::wire_format::decode_message_exact(&bytes, &svc);
                }))
            ),
            adn_bytes.len().to_string(),
        ]);
    }

    // Mesh layers.
    let pb_bytes = adn_mesh::pb::encode_to_vec(&msg.fields);
    {
        let fields = msg.fields.clone();
        t.row(&[
            "mesh: protobuf encode".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let _ = adn_mesh::pb::encode_to_vec(&fields);
                }))
            ),
            pb_bytes.len().to_string(),
        ]);
    }
    {
        let bytes = pb_bytes.clone();
        t.row(&[
            "mesh: protobuf dynamic decode (proxy)".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let _ = adn_mesh::pb::decode_dynamic(&bytes);
                }))
            ),
            pb_bytes.len().to_string(),
        ]);
    }
    {
        let msg2 = msg.clone();
        let mesh_full = {
            let mut ctx = adn_mesh::hpack::HpackContext::new();
            adn_mesh::grpc::encode_request(&mut ctx, &msg2, &service.name, "Put").expect("enc")
        };
        let msg3 = msg.clone();
        let svc_name = service.name.clone();
        t.row(&[
            "mesh: full gRPC+HPACK+HTTP/2 encode".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let mut ctx = adn_mesh::hpack::HpackContext::new();
                    let _ = adn_mesh::grpc::encode_request(&mut ctx, &msg3, &svc_name, "Put");
                }))
            ),
            mesh_full.len().to_string(),
        ]);
        let svc = service.clone();
        let bytes = mesh_full.clone();
        t.row(&[
            "mesh: full decode (app edge)".into(),
            format!(
                "{:.0}",
                time_op(Box::new(move || {
                    let mut ctx = adn_mesh::hpack::HpackContext::new();
                    let _ = adn_mesh::grpc::decode_message(&mut ctx, &bytes, &svc);
                }))
            ),
            mesh_full.len().to_string(),
        ]);
    }

    println!("{}", t.render());
    println!("hops per request: ADN in-app = 1 encode + 1 decode;");
    println!("mesh = app encode + 2x (sidecar full parse + full re-encode) + app decode.\n");
}

// ---------------------------------------------------------------------------
// E6 — generated vs hand-coded engines
// ---------------------------------------------------------------------------

fn codegen_overhead() {
    use adn_backend::native::{compile_element, CompileOpts};

    println!("--- E6: generated (DSL-compiled) vs hand-coded engine overhead ---\n");
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let m = service.method_by_id(1).expect("method");
    let iters = 200_000u32;

    let mut t = Table::new(&[
        "element",
        "generated ns/msg",
        "hand-coded ns/msg",
        "overhead",
    ]);
    let mut bench_pair = |name: &str, mut generated: Box<dyn Engine>, mut hand: Box<dyn Engine>| {
        let proto = RpcMessage::request(1, 1, m.request.clone())
            .with("object_id", 42u64)
            .with("username", "alice")
            .with("payload", PAPER_PAYLOAD.to_vec());
        let time_engine = |e: &mut Box<dyn Engine>| -> f64 {
            let mut msg = proto.clone();
            for _ in 0..5_000 {
                let _ = e.process(&mut msg);
            }
            let start = Instant::now();
            for i in 0..iters {
                // Vary the user so ACL paths both hit and miss.
                if i % 64 == 0 {
                    msg = proto.clone();
                }
                let _ = e.process(&mut msg);
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        };
        let gen_ns = time_engine(&mut generated);
        let hand_ns = time_engine(&mut hand);
        t.row(&[
            name.into(),
            format!("{gen_ns:.0}"),
            format!("{hand_ns:.0}"),
            format!("{:+.1}%", (gen_ns / hand_ns - 1.0) * 100.0),
        ]);
    };

    let build = |name: &str| {
        let ir = adn_elements::build(name, &[], &req_schema, &resp_schema).expect("build");
        Box::new(compile_element(&ir, &CompileOpts::default())) as Box<dyn Engine>
    };
    bench_pair(
        "Logging",
        build("Logging"),
        Box::new(adn_elements::handcoded::HandLogging::new(&req_schema)),
    );
    bench_pair(
        "Acl",
        build("Acl"),
        Box::new(adn_elements::handcoded::HandAcl::with_default_table(
            &req_schema,
        )),
    );
    bench_pair(
        "Fault",
        build("Fault"),
        Box::new(adn_elements::handcoded::HandFault::new(0.02, 7)),
    );
    println!("{}", t.render());
    println!("paper: generated modules 3-12% slower than hand-optimized.\n");
}

// ---------------------------------------------------------------------------
// E7 — reconfiguration without disruption
// ---------------------------------------------------------------------------

fn reconfig() {
    use adn_backend::native::CompileOpts;
    use adn_controller::reconfig::{migrate_processor, scale_in, scale_out};
    use adn_controller::AddrAllocator;
    use adn_dataplane::processor::{spawn_processor, NextHop, ProcessorConfig, DEFAULT_BATCH_MAX};
    use adn_rpc::engine::EngineChain;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::transport::{InProcNetwork, Link};

    println!("--- E7: live reconfiguration under load ---\n");

    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());

    let server_frames = net.attach(200);
    let svc = service.clone();
    let _server = spawn_server(
        ServerConfig {
            addr: 200,
            service: service.clone(),
            chain: EngineChain::new(),
        },
        link.clone(),
        server_frames,
        Box::new(move |req| {
            let m = svc.method_by_id(req.method_id).expect("method");
            let mut resp = RpcMessage::response_to(req, m.response.clone());
            resp.set("ok", Value::Bool(true));
            resp
        }),
    );

    let element = adn_elements::build("Metrics", &[], &req_schema, &resp_schema).expect("build");
    let make_chain = {
        let element = element.clone();
        move || {
            let mut c = EngineChain::new();
            c.push(adn_backend::jit::compile_engine(
                &element,
                &CompileOpts {
                    seed: 1,
                    replicas: vec![],
                    ..Default::default()
                },
            ));
            c
        }
    };

    let frames = net.attach(50);
    let processor = spawn_processor(
        ProcessorConfig {
            addr: 50,
            service: service.clone(),
            chain: make_chain(),
            request_next: NextHop::Fixed(200),
            response_next: NextHop::Dst,
            initial_flows: Default::default(),
            telemetry: None,
            clock: None,
            batch_max: DEFAULT_BATCH_MAX,
            overload: Default::default(),
            inbox_capacity: None,
        },
        link.clone(),
        frames,
    );

    let client_frames = net.attach(100);
    let client = RpcClient::new(
        100,
        link.clone(),
        client_frames,
        service.clone(),
        EngineChain::new(),
    );
    client.set_via(Some(50));

    // Background load.
    let driver_client = client.clone();
    let driver_service = service.clone();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver_stop = stop.clone();
    let driver = std::thread::spawn(move || {
        let m = driver_service.method_by_id(1).expect("method");
        let mut ok = 0u64;
        let mut failed = 0u64;
        let mut i = 0u64;
        while !driver_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let msg = RpcMessage::request(0, 1, m.request.clone())
                .with("object_id", i)
                .with("username", "alice")
                .with("payload", b"x".to_vec());
            match driver_client
                .send_call(msg, 200)
                .and_then(|p| p.wait(Duration::from_secs(10)))
            {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
            i += 1;
        }
        (ok, failed)
    });

    // Let load build, then: migrate, scale out to 3, scale back in.
    std::thread::sleep(Duration::from_millis(150));
    let alloc = AddrAllocator::new(5000);

    let t0 = Instant::now();
    let processor = migrate_processor(
        processor,
        make_chain.clone(),
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
    )
    .expect("migrate");
    let migrate_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::thread::sleep(Duration::from_millis(150));

    let t1 = Instant::now();
    let group = scale_out(
        processor,
        std::slice::from_ref(&element),
        1, // shard by username
        3,
        9,
        &[],
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
        &alloc,
        None,
    )
    .expect("scale out");
    let scale_out_ms = t1.elapsed().as_secs_f64() * 1e3;
    std::thread::sleep(Duration::from_millis(150));

    let t2 = Instant::now();
    let merged = scale_in(
        group,
        std::slice::from_ref(&element),
        9,
        &[],
        &net,
        link.clone(),
        service.clone(),
        NextHop::Fixed(200),
    )
    .expect("scale in");
    let scale_in_ms = t2.elapsed().as_secs_f64() * 1e3;
    std::thread::sleep(Duration::from_millis(150));

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (ok, failed) = driver.join().expect("driver");
    merged.stop();

    let mut t = Table::new(&["operation", "control time (ms)", "calls ok", "calls failed"]);
    t.row(&[
        "migrate".into(),
        format!("{migrate_ms:.1}"),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "scale out x3".into(),
        format!("{scale_out_ms:.1}"),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "scale in".into(),
        format!("{scale_in_ms:.1}"),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "whole run".into(),
        String::new(),
        ok.to_string(),
        failed.to_string(),
    ]);
    println!("{}", t.render());
    println!("expected: zero failed calls across migrate/scale-out/scale-in.\n");
}

// ---------------------------------------------------------------------------
// E8 — optimizer ablations
// ---------------------------------------------------------------------------

fn ablation() {
    use adn_backend::native::{compile_element, element_seed, CompileOpts};
    use adn_ir::{optimize, ChainIr, PassConfig};

    println!("--- E8: optimizer ablations ---\n");
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let m = service.method_by_id(1).expect("method");

    // (a) Element reordering: Compress → Acl; optimizer moves the dropper
    // first, so denied traffic skips compression.
    let elements: Vec<adn_ir::ElementIr> = ["Compress", "Acl"]
        .iter()
        .map(|n| adn_elements::build(n, &[], &req_schema, &resp_schema).expect("build"))
        .collect();
    let payload = vec![0x42u8; 4096];
    let run_chain = |chain: &ChainIr| -> f64 {
        let mut engines: Vec<_> = chain
            .elements
            .iter()
            .enumerate()
            .map(|(i, e)| {
                compile_element(
                    e,
                    &CompileOpts {
                        seed: element_seed(3, i),
                        replicas: vec![],
                        ..Default::default()
                    },
                )
            })
            .collect();
        // 50% denied workload.
        let users = ["alice", "bob"];
        let iters = 30_000;
        let start = Instant::now();
        for i in 0..iters {
            let mut msg = RpcMessage::request(1, 1, m.request.clone())
                .with("object_id", i as u64)
                .with("username", users[(i % 2) as usize])
                .with("payload", payload.clone());
            for e in engines.iter_mut() {
                use adn_rpc::engine::Engine as _;
                if e.process(&mut msg) != adn_rpc::engine::Verdict::Forward {
                    break;
                }
            }
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    let chain = ChainIr::new(elements.clone(), req_schema.clone(), resp_schema.clone());
    let (unopt, _) = optimize(chain.clone(), &PassConfig::none());
    let (opt, report) = optimize(chain, &PassConfig::default());
    let mut t = Table::new(&["ablation", "variant", "ns/msg or bytes", "note"]);
    t.row(&[
        "reorder".into(),
        "passes off".into(),
        format!("{:.0} ns", run_chain(&unopt)),
        format!("order {:?}", unopt.names()),
    ]);
    t.row(&[
        "reorder".into(),
        "passes on".into(),
        format!("{:.0} ns", run_chain(&opt)),
        format!("order {:?} ({} swap)", opt.names(), report.swaps),
    ]);

    // (b) Minimal headers: hop bytes + encode time with the LB-only layout
    // vs shipping the full message re-encoded per hop.
    let lb = adn_elements::build("LoadBalancer", &[], &req_schema, &resp_schema).expect("build");
    let chain = ChainIr::new(vec![lb], req_schema.clone(), resp_schema.clone());
    let layout = adn_ir::passes::minimal_header(&chain, 0);
    let mut msg = RpcMessage::request(9, 1, m.request.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", vec![7u8; 4096]);
    msg.dst = 200;
    let hop_bytes = adn_dataplane::hop::encode_hop(&msg, &layout).expect("hop");
    let full_bytes = adn_rpc::wire_format::encode_message_to_vec(&msg).expect("full");

    let iters = 50_000;
    let start = Instant::now();
    for _ in 0..iters {
        // What an intermediate header-only hop does: decode the envelope +
        // header, re-emit, never touching the blob.
        let frame = adn_dataplane::hop::decode_hop(&hop_bytes, &layout).expect("dec");
        let _ = adn_dataplane::hop::reencode_hop(&frame, &layout);
    }
    let header_only_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let start = Instant::now();
    for _ in 0..iters {
        // What a full-decode hop does.
        let decoded =
            adn_rpc::wire_format::decode_message_exact(&full_bytes, &service).expect("dec");
        let _ = adn_rpc::wire_format::encode_message_to_vec(&decoded);
    }
    let full_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    t.row(&[
        "minimal header".into(),
        "header-only hop".into(),
        format!("{header_only_ns:.0} ns"),
        format!(
            "header {} B of {} B total",
            hop_bytes.len() - 4096,
            hop_bytes.len()
        ),
    ]);
    t.row(&[
        "minimal header".into(),
        "full re-parse hop".into(),
        format!("{full_ns:.0} ns"),
        format!("{} B re-parsed", full_bytes.len()),
    ]);

    // (c) Constant folding.
    let folded_src = "element E() { on request { SET object_id = input.object_id * 2 + 8 / 4 - 1; SELECT * FROM input; } }";
    let ir = {
        let checked =
            adn_dsl::compile_frontend(folded_src, &req_schema, &resp_schema).expect("frontend");
        adn_ir::lower_element(&checked, &[], &req_schema, &resp_schema).expect("lower")
    };
    for (label, passes) in [
        ("passes off", PassConfig::none()),
        ("passes on", PassConfig::default()),
    ] {
        let chain = ChainIr::new(vec![ir.clone()], req_schema.clone(), resp_schema.clone());
        let (opt_chain, rep) = optimize(chain, &passes);
        let mut engine = compile_element(&opt_chain.elements[0], &CompileOpts::default());
        let mut msg = RpcMessage::request(1, 1, m.request.clone())
            .with("object_id", 1u64)
            .with("username", "a")
            .with("payload", vec![]);
        use adn_rpc::engine::Engine as _;
        let iters = 300_000;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = engine.process(&mut msg);
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        t.row(&[
            "const fold".into(),
            label.into(),
            format!("{ns:.0} ns"),
            format!("{} folds", rep.folds),
        ]);
    }

    println!("{}", t.render());
    println!("expected: reorder wins on deny-heavy traffic; header-only hops");
    println!("cost a fraction of full re-parses; folding trims arithmetic.\n");
}

// ---------------------------------------------------------------------------
// E9 — goodput under chaos
// ---------------------------------------------------------------------------

/// Drives the paper chain (off-app, so every call crosses the fabric four
/// times) with resilient calls over a seeded lossy link, and reports the
/// goodput alongside the lossless baseline. Server-side effect counters
/// double-check that retransmissions never re-executed a call.
fn chaos_goodput() {
    use adn::harness::ChaosConfig;
    use adn_cluster::resources::PlacementConstraint;
    use adn_rpc::chaos::ChaosPolicy;
    use adn_rpc::retry::{BreakerPolicy, RetryPolicy};

    println!("--- E9: goodput under chaos (drops vs retries + dedup) ---\n");
    let env_f64 = |key: &str, default: f64| {
        std::env::var(key)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let drop_prob = env_f64("ADN_CHAOS_DROP", 0.05);
    let seed = env_f64("ADN_CHAOS_SEED", 7.0) as u64;
    let policy = RetryPolicy {
        max_attempts: 64,
        attempt_timeout: Duration::from_millis(100),
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
        propagate_deadline: false,
        priority: adn_wire::header::Priority::Normal,
    };

    let mut t = Table::new(&[
        "drop rate",
        "calls ok",
        "goodput (rps)",
        "client retries",
        "dedup hits",
        "dup effects",
    ]);
    for rate in [0.0, drop_prob] {
        let mut cfg = WorldConfig::paper_eval_chain(0.0);
        for spec in &mut cfg.chain {
            spec.constraints = vec![PlacementConstraint::OffApp];
        }
        cfg.chaos = Some(ChaosConfig {
            seed,
            policy: ChaosPolicy::drops(rate),
        });
        cfg.track_effects = true;
        let world = AdnWorld::start(cfg).expect("world");
        world.client().set_breaker_policy(BreakerPolicy {
            threshold: 1000,
            cooldown: Duration::from_millis(10),
        });

        let calls = 200u64;
        let start = Instant::now();
        let mut ok = 0u64;
        for i in 0..calls {
            if world
                .call_resilient(i, "alice", PAPER_PAYLOAD, &policy)
                .is_ok()
            {
                ok += 1;
            }
        }
        let elapsed = start.elapsed();
        let dup_effects = world.effect_counts().values().filter(|&&c| c > 1).count();
        let dedup_hits: u64 = world.server_stats().iter().map(|s| s.dedup_hits).sum();
        t.row(&[
            format!("{:.0}%", rate * 100.0),
            format!("{ok}/{calls}"),
            format!("{:.0}", ok as f64 / elapsed.as_secs_f64()),
            world.client().stats().retries.to_string(),
            dedup_hits.to_string(),
            dup_effects.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("expected: goodput degrades gracefully with the drop rate while");
    println!("dup effects stay 0 — retries are made at-most-once by request");
    println!("dedup at processors and servers.\n");
}

// ---------------------------------------------------------------------------
// E10: per-element latency breakdown from in-band trace spans
// ---------------------------------------------------------------------------

/// Runs the paper chain off-app with trace sampling at 1.0 and decomposes
/// end-to-end latency into per-element execution, queue wait, serialize,
/// and an explicit unattributed residual (transport + endpoint work the
/// processor spans cannot see). The attributed + residual sum is checked
/// against measured end-to-end latency.
fn latency_breakdown(smoke: bool) {
    use adn_cluster::resources::PlacementConstraint;
    use std::collections::BTreeMap;

    println!("--- E10: latency breakdown (in-band tracing, sampling = 1.0) ---\n");

    let mut cfg = WorldConfig::paper_eval_chain(0.0);
    for spec in &mut cfg.chain {
        // Off-app placement puts every element on a traced processor hop.
        spec.constraints = vec![PlacementConstraint::OffApp];
    }
    let world = AdnWorld::start(cfg).expect("world");
    world.controller().set_trace_sampling("app", 1.0);

    // Warm up, then discard the warmup spans.
    for i in 0..20u64 {
        let _ = world.call(i, "alice", PAPER_PAYLOAD);
    }
    world.controller().spans().drain();

    // Keep request+response spans per call under the ring capacity.
    let calls: u64 = if smoke { 300 } else { 1500 };
    let mut e2e = Vec::with_capacity(calls as usize);
    for i in 0..calls {
        let start = Instant::now();
        let _ = world.call(i, "alice", PAPER_PAYLOAD);
        e2e.push(start.elapsed());
    }
    // The final response-hop span lands just after the client unblocks.
    std::thread::sleep(Duration::from_millis(50));
    let spans = world.controller().spans().drain();
    assert!(!spans.is_empty(), "sampling at 1.0 must produce spans");

    let mut stages: BTreeMap<String, Vec<Duration>> = BTreeMap::new();
    let mut queue = Vec::new();
    let mut serialize = Vec::new();
    let mut attributed: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &spans {
        *attributed.entry(s.call_id).or_default() += s.total_ns();
        queue.push(Duration::from_nanos(s.queue_ns));
        serialize.push(Duration::from_nanos(s.serialize_ns));
        for (name, ns) in &s.stages {
            stages
                .entry(name.clone())
                .or_default()
                .push(Duration::from_nanos(*ns));
        }
    }
    let attr: Vec<Duration> = attributed
        .values()
        .map(|&ns| Duration::from_nanos(ns))
        .collect();
    let med_e2e = median(&e2e);
    let med_attr = median(&attr);
    let residual = med_e2e.saturating_sub(med_attr);

    let mut t = Table::new(&["stage", "p50 (us)", "p99 (us)", "samples"]);
    let quant_row = |t: &mut Table, name: &str, samples: &[Duration]| {
        t.row(&[
            name.to_owned(),
            format!("{:.2}", us(percentile(samples, 50.0))),
            format!("{:.2}", us(percentile(samples, 99.0))),
            samples.len().to_string(),
        ]);
    };
    for (name, samples) in &stages {
        quant_row(&mut t, &format!("element: {name}"), samples);
    }
    quant_row(&mut t, "queue wait (per hop)", &queue);
    quant_row(&mut t, "serialize + forward (per hop)", &serialize);
    t.row(&[
        "unattributed (transport, client, server)".into(),
        format!("{:.2}", us(residual)),
        "-".into(),
        e2e.len().to_string(),
    ]);
    println!("{}", t.render());

    let sum_us = us(med_attr) + us(residual);
    let deviation = (sum_us - us(med_e2e)).abs() / us(med_e2e) * 100.0;
    println!("\nend-to-end p50      : {:>9.2} us", us(med_e2e));
    println!(
        "hop-attributed p50  : {:>9.2} us (spans: queue + stages + serialize)",
        us(med_attr)
    );
    println!("unattributed p50    : {:>9.2} us", us(residual));
    println!(
        "stage sum vs e2e    : {sum_us:.2} us vs {:.2} us ({deviation:.2}% deviation, budget 10%)\n",
        us(med_e2e)
    );
}

// ---------------------------------------------------------------------------
// E11 — offload matrix: catalog elements × site policies
// ---------------------------------------------------------------------------

/// Audits every catalog element under a spectrum of site policies with the
/// abstract-interpretation verifier. Accepted cells show the *proved*
/// bounds (worst feasible path, exact stack watermark, helper calls) the
/// placer prices eBPF sites with; rejected cells show the first diagnostic
/// code, i.e. the reason the element stays on a native processor there.
fn offload_matrix() {
    use adn_verifier::ebpf::{audit_element, EbpfPolicy};

    println!("--- E11: offload matrix — catalog elements x site policies ---\n");
    let (req_schema, resp_schema) = object_store_schemas();

    let policies: Vec<(&str, EbpfPolicy)> = vec![
        ("default", EbpfPolicy::default()),
        (
            "no-helpers",
            EbpfPolicy {
                allow_rand: false,
                allow_now: false,
                allow_map_helpers: false,
                allow_route: false,
                ..EbpfPolicy::default()
            },
        ),
        (
            "tight-stack (16 B)",
            EbpfPolicy {
                max_stack_bytes: 16,
                ..EbpfPolicy::default()
            },
        ),
        (
            "tiny-ctx (8 B)",
            EbpfPolicy {
                max_ctx_bytes: Some(8),
                ..EbpfPolicy::default()
            },
        ),
    ];

    let mut header: Vec<&str> = vec!["element"];
    header.extend(policies.iter().map(|(n, _)| *n));
    let mut t = Table::new(&header);

    let mut offloadable = 0usize;
    for name in adn_elements::standard_names() {
        let ir = match adn_elements::build(name, &[], &req_schema, &resp_schema) {
            Ok(ir) => ir,
            Err(_) => continue, // elements needing parameters are skipped
        };
        let mut row: Vec<String> = vec![name.to_owned()];
        for (_, policy) in &policies {
            row.push(match audit_element(&ir, policy) {
                Ok(r) => {
                    offloadable += 1;
                    format!(
                        "path<={} stk={} hlp={}",
                        r.request_path_insns.max(r.response_path_insns),
                        r.stack_bytes,
                        r.helper_calls
                    )
                }
                Err(diags) => diags[0].code.to_owned(),
            });
        }
        t.row(&row);
    }
    println!("{}", t.render());
    assert!(
        offloadable > 0,
        "verifier rejected every catalog element everywhere"
    );
    println!("accepted cells carry proved bounds (worst feasible path, exact");
    println!("stack watermark, helper calls); rejected cells name the B-code.\n");
}

// ---------------------------------------------------------------------------
// E12 — JIT tier ablation
// ---------------------------------------------------------------------------

/// The paper chain (Logging → Acl → Fault) across execution tiers: the
/// tree-walking interpreter, the direct-threaded program, and (on x86-64)
/// the native template JIT, in both chain-of-engines and fused form. All
/// rows share one seed and therefore one verdict stream; only the
/// execution strategy differs. `jit_bench` produces the rigorous
/// `BENCH_jit.json` artifact; this table is the paper-style view.
fn jit_ablation(smoke: bool) {
    use adn_backend::jit::{native_available, JitEngine, JitTier};
    use adn_backend::native::{compile_element, compile_fused, element_seed, CompileOpts};
    use adn_rpc::engine::EngineChain;

    println!("--- E12: JIT tier ablation (Logging -> Acl -> Fault) ---\n");

    let (req_schema, resp_schema) = object_store_schemas();
    let elements: Vec<adn_ir::ElementIr> = ["Logging", "Acl", "Fault"]
        .iter()
        .map(|name| {
            let params: &[(String, Value)] = if *name == "Fault" {
                &[("abort_prob".to_owned(), Value::F64(PAPER_FAULT_PROB))]
            } else {
                &[]
            };
            adn_elements::build(name, params, &req_schema, &resp_schema).expect("build")
        })
        .collect();
    let seed = 0x5eed;
    let opts = CompileOpts {
        seed,
        ..Default::default()
    };

    let (warmup, iters) = if smoke {
        (2_000, 10_000)
    } else {
        (70_000, 200_000)
    };
    let mut t = Table::new(&["tier", "mode", "ns/msg", "msgs/s", "vs interp chain"]);
    let mut tiers = vec![("interp", JitTier::Interp), ("threaded", JitTier::Threaded)];
    if native_available() {
        tiers.push(("native", JitTier::Native));
    }
    let mut baseline = None;
    for (tname, tier) in tiers {
        for (mode, fused) in [("chain", false), ("fused", true)] {
            let mut engine: Box<dyn Engine> = match (tier, fused) {
                (JitTier::Interp, false) => Box::new(EngineChainEngine(EngineChain::from_engines(
                    elements
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let o = CompileOpts {
                                seed: element_seed(seed, i),
                                ..opts.clone()
                            };
                            Box::new(compile_element(e, &o)) as Box<dyn Engine>
                        })
                        .collect(),
                ))),
                (JitTier::Interp, true) => Box::new(compile_fused(&elements, &opts)),
                (tier, false) => Box::new(EngineChainEngine(EngineChain::from_engines(
                    elements
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let o = CompileOpts {
                                seed: element_seed(seed, i),
                                ..opts.clone()
                            };
                            Box::new(JitEngine::single(e, &o, tier)) as Box<dyn Engine>
                        })
                        .collect(),
                ))),
                (tier, true) => Box::new(JitEngine::fused(&elements, &opts, tier)),
            };
            let mut msgs: Vec<RpcMessage> = PAPER_USERS
                .iter()
                .map(|u| {
                    RpcMessage::request(1, 1, req_schema.clone())
                        .with("object_id", 42u64)
                        .with("username", *u)
                        .with("payload", PAPER_PAYLOAD.to_vec())
                })
                .collect();
            let n = msgs.len() as u64;
            for i in 0..warmup {
                let _ = engine.process(&mut msgs[(i % n) as usize]);
            }
            let start = Instant::now();
            for i in 0..iters {
                let _ = engine.process(&mut msgs[(i % n) as usize]);
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if baseline.is_none() {
                baseline = Some(ns);
            }
            let base = baseline.unwrap();
            t.row(&[
                tname.into(),
                mode.into(),
                format!("{ns:.1}"),
                format!("{:.0}", 1e9 / ns),
                format!("{:.2}x", base / ns),
            ]);
        }
    }
    println!("{}", t.render());
    println!("\nexpected shape: fused compiled tiers beat the interpreter chain;");
    println!("BENCH_jit.json (from jit_bench) is the committed artifact.\n");
}

/// Adapter: `EngineChain` has an inherent `process` but is not itself an
/// [`Engine`]; the ablation treats every row uniformly through the trait.
struct EngineChainEngine(adn_rpc::engine::EngineChain);

impl Engine for EngineChainEngine {
    fn name(&self) -> &str {
        "chain"
    }
    fn process(&mut self, msg: &mut RpcMessage) -> adn_rpc::engine::Verdict {
        self.0.process(msg)
    }
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }
    fn import_state(&mut self, _image: &[u8]) -> Result<(), String> {
        Ok(())
    }
}
