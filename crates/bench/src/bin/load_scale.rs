//! `load_scale` — saturating open-loop load generator for the batched,
//! sharded dataplane.
//!
//! ```text
//! load_scale [--out PATH] [--seed N] [--duration-ms N]
//!            [--shards A,B,..] [--batch A,B,..] [--smoke]
//! ```
//!
//! Two sweeps, one `BENCH_scale.json`:
//!
//! - **Shard scaling** (`group: "shards"`): a partitionable chain — a
//!   compiled DSL quota element whose state table is keyed by the shard
//!   field (proven clean by the verifier's V0005 partitionability lint
//!   before any replication happens) plus a fixed per-message service
//!   time — swept across shard counts at a fixed batch. Service time
//!   dominates, so shard workers overlap even on a single core and
//!   throughput scales with the shard count.
//! - **Batch amortization** (`group: "batch"`): a trivial CPU-bound
//!   chain on a single shard, swept across `batch_max`. Larger batches
//!   amortize the per-iteration channel, lock, and send overhead.
//!
//! The generator is open-loop: every frame is offered up front (distinct
//! call ids, so dedup never absorbs load) and the run clocks how long
//! the dataplane takes to push them all through to a sink endpoint.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::jit::compile_engine;
use adn_backend::native::CompileOpts;
use adn_dataplane::processor::{NextHop, ProcessorConfig};
use adn_dataplane::shard::spawn_processor_sharded;
use adn_dsl::{check_element, parser::parse_element};
use adn_ir::ChainIr;
use adn_rpc::engine::{Engine, EngineChain, Verdict};
use adn_rpc::message::RpcMessage;
use adn_rpc::transport::{Frame, InProcNetwork, Link};
use adn_rpc::wire_format::encode_message_to_vec;
use adn_verifier::{codes, verify_chain, ChainVerifyOptions};

const CLIENT: u64 = 100;
const PROC: u64 = 5;
const SINK: u64 = 2;

/// Per-message service time for the shard-scaling rows: long enough
/// that sleeping shard workers overlap on one core, short enough that a
/// sweep finishes in tens of milliseconds per thousand messages.
const SERVICE_US: u64 = 30;

/// The partitionable element for the shard rows: per-object quota state
/// keyed by `object_id` — the field the workload makes unique per call,
/// so the flow hash pins every row to one shard. V0005 verifies this
/// shape before the bench replicates it.
const QUOTA_DSL: &str = r#"
    element ShardQuota() {
        state q_tab(oid: u64 key, used: u64);
        on request {
            UPDATE q_tab SET used = q_tab.used + 1
                WHERE q_tab.oid == input.object_id;
            SELECT * FROM input;
        }
    }
"#;

/// Fixed-service-time stage: models downstream work (I/O wait, remote
/// lookup) that a shard worker spends off-CPU.
struct ServiceTime(Duration);

impl Engine for ServiceTime {
    fn name(&self) -> &str {
        "ServiceTime"
    }
    fn process(&mut self, _msg: &mut RpcMessage) -> Verdict {
        std::thread::sleep(self.0);
        Verdict::Forward
    }
}

/// Trivial CPU stage for the batch rows: touch the message, forward.
struct Count(u64);

impl Engine for Count {
    fn name(&self) -> &str {
        "Count"
    }
    fn process(&mut self, _msg: &mut RpcMessage) -> Verdict {
        self.0 = self.0.wrapping_add(1);
        Verdict::Forward
    }
}

/// Compiles the quota element after proving, via the V0005 lint, that
/// its state partitions cleanly along the shard field. Returns the
/// engine; panics if the lint ever flags the chain (the bench must not
/// silently shard non-partitionable state).
fn partitionable_engine(seed: u64) -> Box<dyn Engine> {
    let (req, resp) = object_store_schemas();
    let ast = parse_element(QUOTA_DSL).expect("quota parses");
    let checked = check_element(&ast, &req, &resp).expect("quota typechecks");
    let ir = adn_ir::lower_element(&checked, &[], &req, &resp).expect("quota lowers");
    let chain_ir = ChainIr::new(vec![ir.clone()], req, resp);
    let diags = verify_chain(
        &chain_ir,
        &ChainVerifyOptions {
            // object_id is request field 0 — the workload key.
            shard_field: Some(0),
            ..Default::default()
        },
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.diagnostic.code == codes::NON_PARTITIONABLE),
        "quota element must be shard-safe: {diags:?}"
    );
    compile_engine(
        &ir,
        &CompileOpts {
            seed,
            replicas: vec![],
            ..Default::default()
        },
    )
}

fn service_chain(seed: u64) -> EngineChain {
    EngineChain::from_engines(vec![
        partitionable_engine(seed),
        Box::new(ServiceTime(Duration::from_micros(SERVICE_US))),
    ])
}

fn trivial_chain() -> EngineChain {
    EngineChain::from_engines(vec![Box::new(Count(0)) as Box<dyn Engine>])
}

struct Row {
    group: &'static str,
    shards: usize,
    batch: usize,
    service_us: u64,
    offered: usize,
    completed: usize,
    elapsed_ms: f64,
    msgs_per_sec: f64,
}

/// Runs one cell: offer `msgs` distinct requests to a (possibly
/// sharded) processor and clock how long until the sink has seen them
/// all. `chains[0]` seeds shard 0; the rest become extra shards.
fn run_cell(
    group: &'static str,
    mut chains: Vec<EngineChain>,
    batch: usize,
    service_us: u64,
    msgs: usize,
    seed: u64,
) -> Row {
    let shards = chains.len();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());
    let sink_rx = net.attach(SINK);
    let proc_rx = net.attach(PROC);
    let service = object_store_service();
    let first = chains.remove(0);
    let config = ProcessorConfig::new(
        PROC,
        service.clone(),
        first,
        NextHop::Fixed(SINK),
        NextHop::Dst,
    )
    .with_batch(batch);
    let sharded = spawn_processor_sharded(config, chains, link.clone(), proc_rx);

    let m = service.method_by_id(1).expect("method 1");
    let frames: Vec<Frame> = (0..msgs)
        .map(|i| {
            let call_id = 1_000 + i as u64;
            let mut msg = RpcMessage::request(call_id, 1, m.request.clone());
            msg.src = CLIENT;
            msg.dst = SINK;
            msg.set("object_id", adn_rpc::value::Value::U64(i as u64));
            msg.set("username", adn_rpc::value::Value::Str("alice".into()));
            msg.set(
                "payload",
                adn_rpc::value::Value::Bytes(seed.to_le_bytes().to_vec()),
            );
            Frame {
                src: CLIENT,
                dst: PROC,
                payload: encode_message_to_vec(&msg).expect("request encodes"),
            }
        })
        .collect();

    let start = Instant::now();
    for f in frames {
        link.send(f).expect("in-proc send");
    }
    let mut completed = 0usize;
    while completed < msgs {
        match sink_rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => completed += 1,
            Err(_) => break,
        }
    }
    let elapsed = start.elapsed();
    sharded.stop();

    let secs = elapsed.as_secs_f64().max(1e-9);
    Row {
        group,
        shards,
        batch,
        service_us,
        offered: msgs,
        completed,
        elapsed_ms: secs * 1e3,
        msgs_per_sec: completed as f64 / secs,
    }
}

struct Args {
    out: String,
    seed: u64,
    duration_ms: u64,
    shards: Vec<usize>,
    batch: Vec<usize>,
    smoke: bool,
}

fn parse_list(spec: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        out.push(part.trim().parse().ok()?);
    }
    (!out.is_empty()).then_some(out)
}

fn parse(argv: &[String]) -> Option<Args> {
    let mut args = Args {
        out: "BENCH_scale.json".to_string(),
        seed: 42,
        duration_ms: 400,
        shards: vec![1, 2, 4],
        batch: vec![1, 16, 64],
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                args.out = argv.get(i + 1)?.clone();
                i += 2;
            }
            "--seed" => {
                args.seed = argv.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--duration-ms" => {
                args.duration_ms = argv.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            "--shards" => {
                args.shards = parse_list(argv.get(i + 1)?)?;
                i += 2;
            }
            "--batch" => {
                args.batch = parse_list(argv.get(i + 1)?)?;
                i += 2;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mut args) = parse(&argv) else {
        eprintln!(
            "usage: load_scale [--out PATH] [--seed N] [--duration-ms N] \
             [--shards A,B,..] [--batch A,B,..] [--smoke]"
        );
        return ExitCode::from(2);
    };
    if args.smoke {
        args.duration_ms = args.duration_ms.min(120);
    }

    // Sized so the slowest cell of each group runs ~duration_ms.
    let service_msgs = ((args.duration_ms * 1_000) / SERVICE_US).max(200) as usize;
    let trivial_msgs = (args.duration_ms * 300).max(5_000) as usize;
    let shard_batch = 16.min(*args.batch.iter().max().unwrap_or(&16)).max(1);

    let mut rows: Vec<Row> = Vec::new();
    for &s in &args.shards {
        let s = s.max(1);
        let chains: Vec<EngineChain> = (0..s).map(|_| service_chain(args.seed)).collect();
        let row = run_cell(
            "shards",
            chains,
            shard_batch,
            SERVICE_US,
            service_msgs,
            args.seed,
        );
        eprintln!(
            "shards={} batch={} -> {:.0} msgs/s ({}/{} in {:.1} ms)",
            row.shards, row.batch, row.msgs_per_sec, row.completed, row.offered, row.elapsed_ms
        );
        rows.push(row);
    }
    for &b in &args.batch {
        let b = b.max(1);
        let row = run_cell(
            "batch",
            vec![trivial_chain()],
            b,
            0,
            trivial_msgs,
            args.seed,
        );
        eprintln!(
            "shards=1 batch={} -> {:.0} msgs/s ({}/{} in {:.1} ms)",
            row.batch, row.msgs_per_sec, row.completed, row.offered, row.elapsed_ms
        );
        rows.push(row);
    }

    let rate = |group: &str, key: usize| -> Option<f64> {
        rows.iter()
            .find(|r| {
                r.group == group
                    && if group == "shards" {
                        r.shards == key
                    } else {
                        r.batch == key
                    }
            })
            .map(|r| r.msgs_per_sec)
    };
    let max_shards = *args.shards.iter().max().unwrap_or(&1);
    let shard_speedup = match (rate("shards", 1), rate("shards", max_shards)) {
        (Some(base), Some(top)) if base > 0.0 => top / base,
        _ => 0.0,
    };
    let batch_ref = if args.batch.contains(&16) {
        16
    } else {
        *args.batch.iter().max().unwrap_or(&1)
    };
    let batch_speedup = match (rate("batch", 1), rate("batch", batch_ref)) {
        (Some(base), Some(top)) if base > 0.0 => top / base,
        _ => 0.0,
    };

    let row_values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "group": (r.group),
                "shards": (r.shards),
                "batch": (r.batch),
                "service_us": (r.service_us),
                "offered": (r.offered),
                "completed": (r.completed),
                "elapsed_ms": (r.elapsed_ms),
                "msgs_per_sec": (r.msgs_per_sec)
            })
        })
        .collect();
    let summary = serde_json::json!({
        "max_shards": (max_shards),
        "shard_speedup": (shard_speedup),
        "batch_ref": (batch_ref),
        "batch_speedup": (batch_speedup)
    });
    let json = serde_json::json!({
        "bench": "load_scale",
        "schema_version": 1,
        "seed": (args.seed),
        "duration_ms": (args.duration_ms),
        "smoke": (args.smoke),
        "v0005_clean": true,
        "rows": (row_values),
        "summary": (summary)
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize");
    if let Err(e) = std::fs::write(&args.out, format!("{text}\n")) {
        eprintln!("could not write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{text}");

    let lost = rows.iter().any(|r| r.completed < r.offered);
    if lost {
        eprintln!("FAILED: a cell lost messages");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
