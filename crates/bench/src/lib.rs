//! Shared helpers for the benchmark harness: statistics, table formatting,
//! and the workload parameters of the paper's evaluation (§6).

use std::time::Duration;

pub mod schema;

/// The paper's workload: 128 concurrent RPCs from a single client thread,
/// short byte-string request/response payloads.
pub const PAPER_CONCURRENCY: usize = 128;
/// "Both the RPC request and response contain a short byte string."
pub const PAPER_PAYLOAD: &[u8] = b"short byte string payload";
/// Users cycled by the workload (3 writers, 2 readers → ACL denies 40%...
/// the paper doesn't publish its mix; we mostly drive writers so denials
/// don't dominate: see `PAPER_USERS`).
pub const PAPER_USERS: &[&str] = &["alice", "carol", "dave", "alice", "bob"];
/// Fault-injection probability used by the evaluation chain.
pub const PAPER_FAULT_PROB: f64 = 0.02;

/// Median of a duration sample (sorts a copy).
pub fn median(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// The p-th percentile (0-100) of a duration sample.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Microseconds as a pretty float.
pub fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// A simple fixed-width table printer for the harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$} | "));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Measurement duration knob: `ADN_BENCH_SECS` (default 2.0; CI can set
/// 0.3 for smoke runs).
pub fn measure_duration() -> Duration {
    std::env::var("ADN_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Duration::from_secs_f64)
        .unwrap_or(Duration::from_secs(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(median(&samples), Duration::from_micros(51));
        assert_eq!(percentile(&samples, 99.0), Duration::from_micros(99));
        assert_eq!(percentile(&samples, 0.0), Duration::from_micros(1));
        assert_eq!(median(&[]), Duration::ZERO);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "krps"]);
        t.row(&["adn".into(), "123.4".into()]);
        t.row(&["grpc+envoy".into(), "20.1".into()]);
        let s = t.render();
        assert!(s.contains("| name       | krps  |"), "{s}");
        assert!(s.lines().count() == 4);
    }
}
