//! Generated-vs-hand-coded per-element overhead (paper §6: "the overhead
//! of generated implementations is only 3-12%"). One iteration = one
//! engine invocation on a pre-built message.
//!
//! Note (recorded in EXPERIMENTS.md): the paper's compiler emitted Rust
//! that was then compiled; our native backend interprets the IR, so the
//! expected per-element gap here is larger than the paper's while the
//! end-to-end Figure 5 gap stays small.

use adn::harness::object_store_schemas;
use adn_backend::native::{compile_element, CompileOpts};
use adn_bench::PAPER_PAYLOAD;
use adn_rpc::engine::Engine;
use adn_rpc::message::RpcMessage;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (req_schema, resp_schema) = object_store_schemas();
    let mut group = c.benchmark_group("codegen_overhead");

    let proto = RpcMessage::request(1, 1, std::sync::Arc::new((*req_schema).clone()))
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", PAPER_PAYLOAD.to_vec());

    let mut bench_engine = |label: String, mut engine: Box<dyn Engine>| {
        let mut msg = proto.clone();
        group.bench_function(label, |b| b.iter(|| black_box(engine.process(&mut msg))));
    };

    for element in ["Logging", "Acl", "Fault"] {
        let ir = adn_elements::build(element, &[], &req_schema, &resp_schema).expect("build");
        bench_engine(
            format!("generated/{element}"),
            Box::new(compile_element(&ir, &CompileOpts::default())),
        );
        let hand: Box<dyn Engine> = match element {
            "Logging" => Box::new(adn_elements::handcoded::HandLogging::new(&req_schema)),
            "Acl" => Box::new(adn_elements::handcoded::HandAcl::with_default_table(
                &req_schema,
            )),
            _ => Box::new(adn_elements::handcoded::HandFault::new(0.02, 7)),
        };
        bench_engine(format!("handcoded/{element}"), hand);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
