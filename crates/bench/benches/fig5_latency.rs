//! Figure 5 (right): end-to-end RPC latency for Logging / ACL / Fault
//! across the three systems. One criterion iteration = one blocking call.

use std::time::Duration;

use adn::harness::{
    object_store_schemas, AdnWorld, HandcodedWorld, MeshPolicies, MeshWorld, WorldConfig,
};
use adn_bench::{PAPER_FAULT_PROB, PAPER_PAYLOAD};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (req_schema, _) = object_store_schemas();

    let mut group = c.benchmark_group("fig5_latency");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(3));

    for element in ["Logging", "Acl", "Fault"] {
        let policies = match element {
            "Logging" => MeshPolicies {
                logging: true,
                acl: false,
                fault_prob: 0.0,
            },
            "Acl" => MeshPolicies {
                logging: false,
                acl: true,
                fault_prob: 0.0,
            },
            _ => MeshPolicies::all(PAPER_FAULT_PROB),
        };
        let mesh = MeshWorld::start(policies, 7);
        let mut i = 0u64;
        group.bench_function(format!("mesh/{element}"), |b| {
            b.iter(|| {
                i += 1;
                let _ = mesh.call(i, "alice", PAPER_PAYLOAD);
            })
        });
        drop(mesh);

        let cfg = match element {
            "Fault" => WorldConfig::paper_eval_chain(PAPER_FAULT_PROB),
            other => WorldConfig::of_elements(&[other]),
        };
        let world = AdnWorld::start(cfg).expect("world");
        let mut i = 0u64;
        group.bench_function(format!("adn/{element}"), |b| {
            b.iter(|| {
                i += 1;
                let _ = world.call(i, "alice", PAPER_PAYLOAD);
            })
        });
        drop(world);

        let engines: Vec<Box<dyn adn_rpc::engine::Engine>> = match element {
            "Logging" => vec![Box::new(adn_elements::handcoded::HandLogging::new(
                &req_schema,
            ))],
            "Acl" => vec![Box::new(
                adn_elements::handcoded::HandAcl::with_default_table(&req_schema),
            )],
            _ => adn_elements::handcoded::paper_eval_chain_handcoded(
                &req_schema,
                PAPER_FAULT_PROB,
                7,
            ),
        };
        let hand = HandcodedWorld::start_with(engines);
        let mut i = 0u64;
        group.bench_function(format!("handcoded/{element}"), |b| {
            b.iter(|| {
                i += 1;
                let _ = hand.call(i, "alice", PAPER_PAYLOAD);
            })
        });
        drop(hand);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
