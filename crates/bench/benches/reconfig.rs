//! Reconfiguration cost (paper §5.2): one criterion iteration performs a
//! full lossless processor migration — pause, snapshot, successor with
//! imported state, address takeover, drain, retire.

use std::sync::Arc;
use std::time::Duration;

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::native::{compile_element, CompileOpts};
use adn_controller::reconfig::migrate_processor;
use adn_dataplane::processor::{
    spawn_processor, NextHop, ProcessorConfig, ProcessorHandle, DEFAULT_BATCH_MAX,
};
use adn_rpc::engine::EngineChain;
use adn_rpc::message::RpcMessage;
use adn_rpc::transport::{InProcNetwork, Link};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let (req_schema, resp_schema) = object_store_schemas();
    let service = object_store_service();
    let net = InProcNetwork::new();
    let link: Arc<dyn Link> = Arc::new(net.clone());

    let element = adn_elements::build("Metrics", &[], &req_schema, &resp_schema).expect("build");
    let make_chain = {
        let element = element.clone();
        move || {
            let mut chain = EngineChain::new();
            chain.push(Box::new(compile_element(
                &element,
                &CompileOpts {
                    seed: 1,
                    replicas: vec![],
                    ..Default::default()
                },
            )));
            chain
        }
    };

    // Seed a processor with some state so snapshots are non-trivial.
    let spawn_seeded = |net: &InProcNetwork, link: &Arc<dyn Link>| -> ProcessorHandle {
        let frames = net.attach(50);
        let mut chain = make_chain();
        // Pre-populate the metrics table via direct engine invocations.
        {
            let engine = chain.engine_mut(0).expect("engine");
            let m = service.method_by_id(1).expect("method");
            for i in 0..500u64 {
                let mut msg = RpcMessage::request(1, 1, m.request.clone())
                    .with("object_id", i)
                    .with("username", format!("user{}", i % 50))
                    .with("payload", vec![]);
                let _ = engine.process(&mut msg);
            }
        }
        spawn_processor(
            ProcessorConfig {
                addr: 50,
                service: service.clone(),
                chain,
                request_next: NextHop::Fixed(200),
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: None,
                clock: None,
                batch_max: DEFAULT_BATCH_MAX,
                overload: Default::default(),
                inbox_capacity: None,
            },
            link.clone(),
            frames,
        )
    };

    let mut group = c.benchmark_group("reconfig");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("migrate_processor_500_rows", |b| {
        b.iter_batched(
            || spawn_seeded(&net, &link),
            |processor| {
                let successor = migrate_processor(
                    processor,
                    make_chain.clone(),
                    &net,
                    link.clone(),
                    service.clone(),
                    NextHop::Fixed(200),
                )
                .expect("migrate");
                successor.stop();
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
