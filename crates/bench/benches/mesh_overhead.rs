//! §2 overhead decomposition: per-message codec cost of the general
//! protocol stack (protobuf + HPACK + HTTP/2 + gRPC framing) versus ADN's
//! schema-driven wire format. This is the microscopic source of Figure 5's
//! macroscopic gap.

use adn::harness::{object_store_schemas, object_store_service};
use adn_bench::PAPER_PAYLOAD;
use adn_mesh::hpack::HpackContext;
use adn_rpc::message::RpcMessage;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let service = object_store_service();
    let (_req_schema, _) = object_store_schemas();
    let m = service.method_by_id(1).expect("method");
    let msg = RpcMessage::request(9, 1, m.request.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", PAPER_PAYLOAD.to_vec());

    let mut group = c.benchmark_group("mesh_overhead");

    // ADN wire format: the only serialization the ADN path ever does.
    let adn_bytes = adn_rpc::wire_format::encode_message_to_vec(&msg).expect("encode");
    group.bench_function("adn_encode", |b| {
        b.iter(|| black_box(adn_rpc::wire_format::encode_message_to_vec(black_box(&msg))))
    });
    group.bench_function("adn_decode", |b| {
        b.iter(|| {
            black_box(adn_rpc::wire_format::decode_message_exact(
                black_box(&adn_bytes),
                &service,
            ))
        })
    });

    // Mesh layers, individually.
    let pb_bytes = adn_mesh::pb::encode_to_vec(&msg.fields);
    group.bench_function("mesh_pb_encode", |b| {
        b.iter(|| black_box(adn_mesh::pb::encode_to_vec(black_box(&msg.fields))))
    });
    group.bench_function("mesh_pb_decode_dynamic", |b| {
        b.iter(|| black_box(adn_mesh::pb::decode_dynamic(black_box(&pb_bytes))))
    });

    let headers: Vec<(String, String)> = vec![
        (":method".into(), "POST".into()),
        (":path".into(), "/objectstore.ObjectStore/Put".into()),
        ("content-type".into(), "application/grpc".into()),
        ("x-call-id".into(), "9".into()),
    ];
    group.bench_function("mesh_hpack_encode", |b| {
        b.iter(|| {
            let mut ctx = HpackContext::new();
            black_box(adn_mesh::hpack::encode_headers(
                &mut ctx,
                black_box(&headers),
            ))
        })
    });
    let block = {
        let mut ctx = HpackContext::new();
        adn_mesh::hpack::encode_headers(&mut ctx, &headers)
    };
    group.bench_function("mesh_hpack_decode", |b| {
        b.iter(|| {
            let mut ctx = HpackContext::new();
            black_box(adn_mesh::hpack::decode_headers(&mut ctx, black_box(&block)))
        })
    });

    // The full stack, as the app edge pays it.
    let full = {
        let mut ctx = HpackContext::new();
        adn_mesh::grpc::encode_request(&mut ctx, &msg, &service.name, "Put").expect("enc")
    };
    group.bench_function("mesh_full_encode", |b| {
        b.iter(|| {
            let mut ctx = HpackContext::new();
            black_box(adn_mesh::grpc::encode_request(
                &mut ctx,
                black_box(&msg),
                &service.name,
                "Put",
            ))
        })
    });
    group.bench_function("mesh_full_decode", |b| {
        b.iter(|| {
            let mut ctx = HpackContext::new();
            black_box(adn_mesh::grpc::decode_message(
                &mut ctx,
                black_box(&full),
                &service,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
