//! Optimizer ablations: each design choice DESIGN.md calls out, on/off.
//!
//! * element reordering (cheap droppers first) on a deny-heavy workload;
//! * constant folding on arithmetic-heavy SET statements;
//! * minimal-header hops vs full re-parse hops.

use adn::harness::object_store_schemas;
use adn_backend::native::{compile_element, element_seed, CompileOpts, NativeEngine};
use adn_ir::{optimize, ChainIr, ElementIr, PassConfig};
use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::RpcMessage;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn compile_chain(chain: &ChainIr) -> Vec<NativeEngine> {
    chain
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| {
            compile_element(
                e,
                &CompileOpts {
                    seed: element_seed(3, i),
                    replicas: vec![],
                    ..Default::default()
                },
            )
        })
        .collect()
}

fn run(engines: &mut [NativeEngine], msg: &mut RpcMessage) -> Verdict {
    for e in engines.iter_mut() {
        match e.process(msg) {
            Verdict::Forward => continue,
            other => return other,
        }
    }
    Verdict::Forward
}

fn bench(c: &mut Criterion) {
    let (req_schema, resp_schema) = object_store_schemas();
    let build = |name: &str| -> ElementIr {
        adn_elements::build(name, &[], &req_schema, &resp_schema).expect("build")
    };

    let mut group = c.benchmark_group("optimizer_ablation");

    // -- reorder: Compress → Acl, 50% denied traffic -----------------------
    let elements = vec![build("Compress"), build("Acl")];
    let payload = vec![0x42u8; 4096];
    for (label, passes) in [
        ("reorder_off", PassConfig::none()),
        ("reorder_on", PassConfig::default()),
    ] {
        let chain = ChainIr::new(elements.clone(), req_schema.clone(), resp_schema.clone());
        let (opt, _) = optimize(chain, &passes);
        let mut engines = compile_chain(&opt);
        let m_req = req_schema.clone();
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                let user = if i.is_multiple_of(2) { "alice" } else { "bob" };
                let mut msg = RpcMessage::request(1, 1, Arc::new((*m_req).clone()))
                    .with("object_id", i)
                    .with("username", user)
                    .with("payload", payload.clone());
                black_box(run(&mut engines, &mut msg))
            })
        });
    }

    // -- const fold ---------------------------------------------------------
    let folded_src = "element E() { on request { SET object_id = input.object_id * 2 + 8 / 4 - 1; SELECT * FROM input; } }";
    let checked = adn_dsl::compile_frontend(folded_src, &req_schema, &resp_schema).expect("fe");
    let ir = adn_ir::lower_element(&checked, &[], &req_schema, &resp_schema).expect("lower");
    for (label, passes) in [
        ("const_fold_off", PassConfig::none()),
        ("const_fold_on", PassConfig::default()),
    ] {
        let chain = ChainIr::new(vec![ir.clone()], req_schema.clone(), resp_schema.clone());
        let (opt, _) = optimize(chain, &passes);
        let mut engine = compile_element(&opt.elements[0], &CompileOpts::default());
        let mut msg = RpcMessage::request(1, 1, Arc::new((*req_schema).clone()))
            .with("object_id", 1u64)
            .with("username", "a")
            .with("payload", vec![]);
        group.bench_function(label, |b| b.iter(|| black_box(engine.process(&mut msg))));
    }

    // -- minimal headers ------------------------------------------------------
    let lb = build("LoadBalancer");
    let chain = ChainIr::new(vec![lb], req_schema.clone(), resp_schema.clone());
    let layout = adn_ir::passes::minimal_header(&chain, 0);
    let service = adn::harness::object_store_service();
    let m = service.method_by_id(1).expect("method");
    let mut msg = RpcMessage::request(9, 1, m.request.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", vec![7u8; 4096]);
    msg.dst = 200;
    let hop_bytes = adn_dataplane::hop::encode_hop(&msg, &layout).expect("hop");
    let full_bytes = adn_rpc::wire_format::encode_message_to_vec(&msg).expect("full");

    group.bench_function("hop_header_only", |b| {
        b.iter(|| {
            let frame = adn_dataplane::hop::decode_hop(black_box(&hop_bytes), &layout).expect("d");
            black_box(adn_dataplane::hop::reencode_hop(&frame, &layout)).expect("e")
        })
    });
    group.bench_function("hop_full_reparse", |b| {
        b.iter(|| {
            let decoded =
                adn_rpc::wire_format::decode_message_exact(black_box(&full_bytes), &service)
                    .expect("d");
            black_box(adn_rpc::wire_format::encode_message_to_vec(&decoded)).expect("e")
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
