//! Per-message dispatch cost across the three execution tiers, per paper
//! element and for the fused paper chain. One iteration = one engine
//! invocation on a pre-built message — this isolates how each tier spends
//! its nanoseconds on an identical workload (same seed, same verdicts).

use adn::harness::object_store_schemas;
use adn_backend::jit::{native_available, JitEngine, JitTier};
use adn_backend::native::{compile_element, compile_fused, CompileOpts};
use adn_bench::PAPER_PAYLOAD;
use adn_rpc::engine::Engine;
use adn_rpc::message::RpcMessage;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (req_schema, resp_schema) = object_store_schemas();
    let mut group = c.benchmark_group("tier_dispatch");

    let proto = RpcMessage::request(1, 1, req_schema.clone())
        .with("object_id", 42u64)
        .with("username", "alice")
        .with("payload", PAPER_PAYLOAD.to_vec());

    let mut tiers: Vec<(&str, JitTier)> =
        vec![("interp", JitTier::Interp), ("threaded", JitTier::Threaded)];
    if native_available() {
        tiers.push(("native", JitTier::Native));
    }

    let mut bench_engine = |label: String, mut engine: Box<dyn Engine>| {
        let mut msg = proto.clone();
        // Prime: binds the schema (the JIT tiers type-specialize against
        // the first message) so the loop measures steady state.
        let _ = engine.process(&mut msg.clone());
        group.bench_function(label, |b| b.iter(|| black_box(engine.process(&mut msg))));
    };

    for element in ["Logging", "Acl", "Fault"] {
        let ir = adn_elements::build(element, &[], &req_schema, &resp_schema).expect("build");
        for &(tname, tier) in &tiers {
            let engine: Box<dyn Engine> = match tier {
                JitTier::Interp => Box::new(compile_element(&ir, &CompileOpts::default())),
                tier => Box::new(JitEngine::single(&ir, &CompileOpts::default(), tier)),
            };
            bench_engine(format!("{tname}/{element}"), engine);
        }
    }

    let chain: Vec<adn_ir::ElementIr> = ["Logging", "Acl", "Fault"]
        .iter()
        .map(|n| adn_elements::build(n, &[], &req_schema, &resp_schema).expect("build"))
        .collect();
    for &(tname, tier) in &tiers {
        let engine: Box<dyn Engine> = match tier {
            JitTier::Interp => Box::new(compile_fused(&chain, &CompileOpts::default())),
            tier => Box::new(JitEngine::fused(&chain, &CompileOpts::default(), tier)),
        };
        bench_engine(format!("{tname}/fused-chain"), engine);
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
