//! Figure 5 (left): RPC rate for Logging / ACL / Fault across the three
//! systems. Each criterion iteration resolves one closed-loop batch of 128
//! calls (the paper's concurrency) through the full deployment; criterion's
//! throughput mode reports RPCs per second.

use std::time::Duration;

use adn::harness::{
    object_store_schemas, AdnWorld, HandcodedWorld, MeshPolicies, MeshWorld, WorldConfig,
};
use adn_bench::{PAPER_CONCURRENCY, PAPER_FAULT_PROB, PAPER_PAYLOAD, PAPER_USERS};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let (req_schema, _) = object_store_schemas();

    let mut group = c.benchmark_group("fig5_throughput");
    group.throughput(Throughput::Elements(PAPER_CONCURRENCY as u64));
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    for element in ["Logging", "Acl", "Fault"] {
        // gRPC + Envoy-style mesh.
        let policies = match element {
            "Logging" => MeshPolicies {
                logging: true,
                acl: false,
                fault_prob: 0.0,
            },
            "Acl" => MeshPolicies {
                logging: false,
                acl: true,
                fault_prob: 0.0,
            },
            _ => MeshPolicies::all(PAPER_FAULT_PROB),
        };
        let mesh = MeshWorld::start(policies, 7);
        group.bench_function(format!("mesh/{element}"), |b| {
            b.iter(|| {
                // Duration::ZERO = exactly one full window of calls.
                let stats = mesh.run_closed_loop(
                    PAPER_CONCURRENCY,
                    Duration::ZERO,
                    PAPER_PAYLOAD,
                    PAPER_USERS,
                );
                assert_eq!(stats.errors, 0);
            })
        });
        drop(mesh);

        // ADN (compiled DSL, RPC-library deployment).
        let cfg = match element {
            "Fault" => WorldConfig::paper_eval_chain(PAPER_FAULT_PROB),
            other => WorldConfig::of_elements(&[other]),
        };
        let world = AdnWorld::start(cfg).expect("world");
        group.bench_function(format!("adn/{element}"), |b| {
            b.iter(|| {
                let stats = world.run_closed_loop(
                    PAPER_CONCURRENCY,
                    Duration::ZERO,
                    PAPER_PAYLOAD,
                    PAPER_USERS,
                );
                assert_eq!(stats.errors, 0);
            })
        });
        drop(world);

        // Hand-coded engines.
        let engines: Vec<Box<dyn adn_rpc::engine::Engine>> = match element {
            "Logging" => vec![Box::new(adn_elements::handcoded::HandLogging::new(
                &req_schema,
            ))],
            "Acl" => vec![Box::new(
                adn_elements::handcoded::HandAcl::with_default_table(&req_schema),
            )],
            _ => adn_elements::handcoded::paper_eval_chain_handcoded(
                &req_schema,
                PAPER_FAULT_PROB,
                7,
            ),
        };
        let hand = HandcodedWorld::start_with(engines);
        group.bench_function(format!("handcoded/{element}"), |b| {
            b.iter(|| {
                let stats = hand.run_closed_loop(
                    PAPER_CONCURRENCY,
                    Duration::ZERO,
                    PAPER_PAYLOAD,
                    PAPER_USERS,
                );
                assert_eq!(stats.errors, 0);
            })
        });
        drop(hand);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
