//! Figure 2: the §2 example chain (LoadBalancer → Compress → Acl →
//! Decompress) under different deployment configurations. One criterion
//! iteration = one blocking call with a 2 KiB payload.

use std::time::Duration;

use adn::harness::{AdnWorld, EnvPreset, WorldConfig};
use adn_cluster::resources::PlacementConstraint;
use criterion::{criterion_group, criterion_main, Criterion};

fn world(env: EnvPreset, constraints: Vec<Vec<PlacementConstraint>>) -> AdnWorld {
    let mut cfg = WorldConfig::of_elements(&["LoadBalancer", "Compress", "Acl", "Decompress"]);
    cfg.replicas = 2;
    cfg.env = env;
    for (spec, cons) in cfg.chain.iter_mut().zip(constraints) {
        spec.constraints = cons;
    }
    AdnWorld::start(cfg).expect("world")
}

fn bench(c: &mut Criterion) {
    let payload = vec![0x5Au8; 2048];
    let mut group = c.benchmark_group("fig2_configs");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(3));

    let configs: Vec<(&str, EnvPreset, Vec<Vec<PlacementConstraint>>)> = vec![
        (
            "c1_in_app",
            EnvPreset::Bare,
            vec![vec![], vec![], vec![], vec![]],
        ),
        (
            "c2_kernel_nic_offload",
            EnvPreset::Rich,
            vec![
                vec![PlacementConstraint::OffApp],
                vec![PlacementConstraint::OffApp, PlacementConstraint::SenderSide],
                vec![PlacementConstraint::OffApp],
                vec![
                    PlacementConstraint::OffApp,
                    PlacementConstraint::ReceiverSide,
                ],
            ],
        ),
        (
            "c3_switch_offload_reorder",
            EnvPreset::Rich,
            vec![
                vec![PlacementConstraint::OffApp],
                vec![],
                vec![PlacementConstraint::OffApp],
                vec![PlacementConstraint::ReceiverSide],
            ],
        ),
    ];

    for (name, env, constraints) in configs {
        let world = world(env, constraints);
        eprintln!("{name}: {}", world.describe());
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                world.call(i, "alice", &payload).expect("alice is a writer");
            })
        });
        drop(world);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
