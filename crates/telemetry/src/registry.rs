//! The process-wide metric registry, keyed by `(app, element, processor)`,
//! plus the snapshot/delta encoding that rides on heartbeats.
//!
//! Ad-hoc counters that predate the registry (chaos-link injection stats,
//! client retry/breaker stats, processor frame counters) plug in as
//! *sources*: closures polled at snapshot time that contribute flat named
//! counters, so one snapshot shows the whole system.

use std::collections::HashMap;
use std::sync::Arc;

use adn_wire::{Decoder, Encoder, WireError, WireResult};
use parking_lot::RwLock;

use crate::metrics::{Counter, Histogram, HistogramSnapshot};

/// Identity of one metric series.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetricKey {
    /// Application name.
    pub app: String,
    /// Element (chain stage) name.
    pub element: String,
    /// Flat endpoint address of the processor hosting the element.
    pub processor: u64,
}

/// Live metrics for one element instance on one processor.
#[derive(Debug, Default)]
pub struct ElementMetrics {
    /// Sampled executions observed (not total traffic — see the sampling
    /// semantics in `docs/observability.md`).
    pub count: Counter,
    /// Sampled executions that ended in a non-forward verdict.
    pub errors: Counter,
    /// Per-execution latency in nanoseconds.
    pub exec: Histogram,
}

impl ElementMetrics {
    /// Records one sampled execution.
    pub fn observe(&self, exec_ns: u64, forwarded: bool) {
        self.count.inc();
        if !forwarded {
            self.errors.inc();
        }
        self.exec.record(exec_ns);
    }
}

/// Immutable copy of one element's metrics, as shipped on heartbeats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementSnapshot {
    /// Series identity.
    pub key: MetricKey,
    /// Sampled executions.
    pub count: u64,
    /// Sampled non-forward verdicts.
    pub errors: u64,
    /// Execution latency distribution (ns).
    pub exec: HistogramSnapshot,
}

impl ElementSnapshot {
    /// Encodes onto `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.key.app);
        enc.put_str(&self.key.element);
        enc.put_varint(self.key.processor);
        enc.put_varint(self.count);
        enc.put_varint(self.errors);
        self.exec.encode(enc);
    }

    /// Decodes a snapshot written by [`ElementSnapshot::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Self {
            key: MetricKey {
                app: dec.get_str()?.to_owned(),
                element: dec.get_str()?.to_owned(),
                processor: dec.get_varint()?,
            },
            count: dec.get_varint()?,
            errors: dec.get_varint()?,
            exec: HistogramSnapshot::decode(dec)?,
        })
    }
}

type SourceFn = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// The registry: element series created on demand, external counter
/// sources polled at snapshot time.
#[derive(Default)]
pub struct Registry {
    elements: RwLock<HashMap<MetricKey, Arc<ElementMetrics>>>,
    sources: RwLock<Vec<SourceFn>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the series for `(app, element, processor)`.
    pub fn element(&self, app: &str, element: &str, processor: u64) -> Arc<ElementMetrics> {
        let key = MetricKey {
            app: app.to_owned(),
            element: element.to_owned(),
            processor,
        };
        if let Some(m) = self.elements.read().get(&key) {
            return m.clone();
        }
        self.elements
            .write()
            .entry(key)
            .or_insert_with(|| Arc::new(ElementMetrics::default()))
            .clone()
    }

    /// Registers an external counter source (e.g. chaos-link or client
    /// retry stats). Polled on every [`Registry::snapshot`]; each returned
    /// pair is a flat `name → cumulative count`.
    pub fn register_source(&self, f: impl Fn() -> Vec<(String, u64)> + Send + Sync + 'static) {
        self.sources.write().push(Box::new(f));
    }

    /// Snapshots every element series plus all external sources.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut elements: Vec<ElementSnapshot> = self
            .elements
            .read()
            .iter()
            .map(|(key, m)| ElementSnapshot {
                key: key.clone(),
                count: m.count.get(),
                errors: m.errors.get(),
                exec: m.exec.snapshot(),
            })
            .collect();
        elements.sort_by(|a, b| {
            (&a.key.app, &a.key.element, a.key.processor).cmp(&(
                &b.key.app,
                &b.key.element,
                b.key.processor,
            ))
        });
        let mut counters = Vec::new();
        for src in self.sources.read().iter() {
            counters.extend(src());
        }
        counters.sort();
        RegistrySnapshot { elements, counters }
    }

    /// Snapshots only the series for one app on one processor — the slice a
    /// processor piggybacks on its heartbeat.
    pub fn snapshot_for(&self, app: &str, processor: u64) -> Vec<ElementSnapshot> {
        let mut out: Vec<ElementSnapshot> = self
            .elements
            .read()
            .iter()
            .filter(|(key, _)| key.app == app && key.processor == processor)
            .map(|(key, m)| ElementSnapshot {
                key: key.clone(),
                count: m.count.get(),
                errors: m.errors.get(),
                exec: m.exec.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.key.element.cmp(&b.key.element));
        out
    }

    /// Merges the series of one app across several processor ids into a
    /// single logical view keyed by `merged_id` — the aggregation a sharded
    /// processor's handle presents (each shard records under its own id).
    /// Counts and errors add; histograms merge bucket-wise (exactly, by
    /// construction). Elements present on only some shards still appear.
    pub fn snapshot_merged(
        &self,
        app: &str,
        processors: &[u64],
        merged_id: u64,
    ) -> Vec<ElementSnapshot> {
        let mut merged: HashMap<String, ElementSnapshot> = HashMap::new();
        for snap in processors.iter().flat_map(|p| self.snapshot_for(app, *p)) {
            match merged.get_mut(&snap.key.element) {
                Some(m) => {
                    m.count += snap.count;
                    m.errors += snap.errors;
                    m.exec.merge(&snap.exec);
                }
                None => {
                    let mut m = snap.clone();
                    m.key.processor = merged_id;
                    merged.insert(snap.key.element.clone(), m);
                }
            }
        }
        let mut out: Vec<ElementSnapshot> = merged.into_values().collect();
        out.sort_by(|a, b| a.key.element.cmp(&b.key.element));
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("series", &self.elements.read().len())
            .field("sources", &self.sources.read().len())
            .finish()
    }
}

/// A full registry snapshot: element series plus flat external counters.
/// Cumulative by construction; use [`RegistrySnapshot::delta_since`] for
/// windowed views.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    /// Per-element series, sorted by `(app, element, processor)`.
    pub elements: Vec<ElementSnapshot>,
    /// External counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl RegistrySnapshot {
    /// Encodes the snapshot into a byte vector using the wire codec.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.elements.len() as u64);
        for e in &self.elements {
            e.encode(&mut enc);
        }
        enc.put_varint(self.counters.len() as u64);
        for (name, v) in &self.counters {
            enc.put_str(name);
            enc.put_varint(*v);
        }
        enc.into_bytes()
    }

    /// Decodes a snapshot written by [`RegistrySnapshot::encode`].
    pub fn decode(bytes: &[u8]) -> WireResult<Self> {
        let mut dec = Decoder::new(bytes);
        let n = dec.get_varint()? as usize;
        let mut elements = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            elements.push(ElementSnapshot::decode(&mut dec)?);
        }
        let m = dec.get_varint()? as usize;
        let mut counters = Vec::with_capacity(m.min(4096));
        for _ in 0..m {
            counters.push((dec.get_str()?.to_owned(), dec.get_varint()?));
        }
        if !dec.is_exhausted() {
            return Err(WireError::Malformed("trailing bytes after snapshot"));
        }
        Ok(Self { elements, counters })
    }

    /// The change since `prev`: per-series count/histogram differences and
    /// counter differences. Series absent from `prev` appear whole.
    pub fn delta_since(&self, prev: &RegistrySnapshot) -> RegistrySnapshot {
        let prev_elems: HashMap<&MetricKey, &ElementSnapshot> =
            prev.elements.iter().map(|e| (&e.key, e)).collect();
        let elements = self
            .elements
            .iter()
            .map(|e| match prev_elems.get(&e.key) {
                Some(p) => ElementSnapshot {
                    key: e.key.clone(),
                    count: e.count.saturating_sub(p.count),
                    errors: e.errors.saturating_sub(p.errors),
                    exec: e.exec.delta_since(&p.exec),
                },
                None => e.clone(),
            })
            .collect();
        let prev_counters: HashMap<&str, u64> = prev
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                (
                    n.clone(),
                    v.saturating_sub(prev_counters.get(n.as_str()).copied().unwrap_or(0)),
                )
            })
            .collect();
        RegistrySnapshot { elements, counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_series_are_shared() {
        let r = Registry::new();
        let a = r.element("shop", "Acl", 200);
        let b = r.element("shop", "Acl", 200);
        a.observe(1000, true);
        b.observe(2000, false);
        let snap = r.snapshot();
        assert_eq!(snap.elements.len(), 1);
        assert_eq!(snap.elements[0].count, 2);
        assert_eq!(snap.elements[0].errors, 1);
    }

    #[test]
    fn sources_contribute_counters() {
        let r = Registry::new();
        r.register_source(|| vec![("chaos.dropped".into(), 3), ("chaos.passed".into(), 9)]);
        r.register_source(|| vec![("client.retries".into(), 1)]);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                ("chaos.dropped".into(), 3),
                ("chaos.passed".into(), 9),
                ("client.retries".into(), 1),
            ]
        );
    }

    #[test]
    fn snapshot_roundtrips_and_deltas() {
        let r = Registry::new();
        r.element("shop", "Acl", 200).observe(500, true);
        r.register_source(|| vec![("x".into(), 5)]);
        let first = r.snapshot();
        let decoded = RegistrySnapshot::decode(&first.encode()).unwrap();
        assert_eq!(decoded, first);

        r.element("shop", "Acl", 200).observe(700, true);
        let second = r.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.elements[0].count, 1);
        assert_eq!(delta.elements[0].exec.count(), 1);
        assert_eq!(delta.counters, vec![("x".into(), 0)]);
    }

    #[test]
    fn snapshot_for_filters_by_app_and_processor() {
        let r = Registry::new();
        r.element("shop", "Acl", 200).observe(1, true);
        r.element("shop", "Logging", 201).observe(1, true);
        r.element("other", "Acl", 200).observe(1, true);
        let slice = r.snapshot_for("shop", 200);
        assert_eq!(slice.len(), 1);
        assert_eq!(slice[0].key.element, "Acl");
    }

    #[test]
    fn snapshot_merged_sums_shards_under_one_id() {
        let r = Registry::new();
        // Two shards of processor 50, one id apart; an unrelated series.
        r.element("shop", "Acl", 50).observe(100, true);
        r.element("shop", "Acl", 50).observe(200, false);
        r.element("shop", "Acl", 1 << 32 | 50).observe(300, true);
        // Present on one shard only.
        r.element("shop", "Logging", 1 << 32 | 50).observe(50, true);
        r.element("other", "Acl", 50).observe(1, true);

        let merged = r.snapshot_merged("shop", &[50, 1 << 32 | 50], 50);
        assert_eq!(merged.len(), 2);
        let acl = &merged[0];
        assert_eq!(acl.key.element, "Acl");
        assert_eq!(acl.key.processor, 50);
        assert_eq!(acl.count, 3);
        assert_eq!(acl.errors, 1);
        assert_eq!(acl.exec.count(), 3);
        let logging = &merged[1];
        assert_eq!(logging.key.element, "Logging");
        assert_eq!(logging.key.processor, 50);
        assert_eq!(logging.count, 1);
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let r = Registry::new();
        r.element("a", "E", 1).observe(42, true);
        let bytes = r.snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(
                RegistrySnapshot::decode(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }
}
