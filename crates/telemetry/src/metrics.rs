//! Lock-free counters and mergeable log-linear latency histograms.
//!
//! The histogram uses the classic log-linear bucketing scheme (a small
//! linear region, then 16 linear sub-buckets per power of two). Bucket
//! boundaries are a pure function of the value, so two histograms recorded
//! on different processors merge exactly by bucket-wise addition — the
//! property the controller relies on when it aggregates per-processor
//! snapshots into a cluster-wide distribution. Relative quantile error is
//! bounded by one bucket (≤ 1/16 ≈ 6.25%).

use std::sync::atomic::{AtomicU64, Ordering};

use adn_wire::{Decoder, Encoder, WireResult};

/// Bits of linear resolution per octave (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave, also the size of the initial linear region.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: the linear region plus one sub-bucket group per
/// remaining octave of a u64.
pub const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let top = v >> (exp - SUB_BITS);
        ((exp - SUB_BITS) as u64 * SUB + (top - SUB) + SUB) as usize
    }
}

/// The smallest value that lands in bucket `idx` (the bucket's
/// representative when reporting quantiles).
#[inline]
pub fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = (idx - SUB) / SUB;
        let sub = (idx - SUB) % SUB;
        (SUB + sub) << octave
    }
}

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A concurrent log-linear histogram. Recording is three relaxed atomic
/// adds and one atomic max; no locks anywhere.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable, mergeable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut sparse = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                sparse.push((i as u16, n));
            }
        }
        HistogramSnapshot {
            buckets: sparse,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// An immutable histogram: sparse `(bucket, count)` pairs plus count, sum,
/// and exact max. Merge is bucket-wise addition, which makes it associative
/// and commutative (see the property tests).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    buckets: Vec<(u16, u64)>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records into the snapshot directly (for single-threaded collection,
    /// e.g. client-side end-to-end latencies).
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v) as u16;
        match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (0 < q ≤ 1), reported as the floor of the bucket
    /// holding the ranked observation — within one bucket of the exact
    /// value. `quantile(1.0)` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_floor(idx as usize);
            }
        }
        self.max
    }

    /// Bucket-wise difference `self - prev` for delta reporting. Both
    /// snapshots must come from the same monotonically growing histogram;
    /// counts saturate at zero otherwise. The delta's `max` is the
    /// cumulative max (the exact window max is not recoverable).
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for &(idx, n) in &self.buckets {
            let prev_n = prev
                .buckets
                .binary_search_by_key(&idx, |(i, _)| *i)
                .map(|pos| prev.buckets[pos].1)
                .unwrap_or(0);
            let d = n.saturating_sub(prev_n);
            if d > 0 {
                buckets.push((idx, d));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            max: self.max,
        }
    }

    /// Encodes the snapshot onto `enc` (varints throughout; sparse buckets
    /// are delta-coded on the index).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.count);
        enc.put_varint(self.sum);
        enc.put_varint(self.max);
        enc.put_varint(self.buckets.len() as u64);
        let mut last = 0u64;
        for &(idx, n) in &self.buckets {
            enc.put_varint(idx as u64 - last);
            enc.put_varint(n);
            last = idx as u64;
        }
    }

    /// Decodes a snapshot written by [`HistogramSnapshot::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let count = dec.get_varint()?;
        let sum = dec.get_varint()?;
        let max = dec.get_varint()?;
        let n_buckets = dec.get_varint()? as usize;
        let mut buckets = Vec::with_capacity(n_buckets.min(BUCKETS));
        let mut last = 0u64;
        for _ in 0..n_buckets {
            let idx = last + dec.get_varint()?;
            let n = dec.get_varint()?;
            if idx >= BUCKETS as u64 {
                return Err(adn_wire::WireError::Malformed(
                    "histogram bucket index out of range",
                ));
            }
            buckets.push((idx as u16, n));
            last = idx;
        }
        Ok(Self {
            buckets,
            count,
            sum,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_fns_are_inverse_on_floors() {
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_at_boundaries() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v);
            if idx + 1 < BUCKETS {
                assert!(v < bucket_floor(idx + 1), "v {v} idx {idx}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_reports() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), 100_000);
        let p50 = s.quantile(0.5);
        assert!((bucket_floor(bucket_index(50_000))..=50_000).contains(&p50));
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(s.mean(), (1..=100u64).map(|v| v * 1000).sum::<u64>() / 100);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramSnapshot::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn snapshot_roundtrips_over_wire() {
        let h = Histogram::new();
        for v in [0, 1, 17, 90, 5_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut enc = Encoder::new();
        s.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(HistogramSnapshot::decode(&mut dec).unwrap(), s);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn delta_since_subtracts() {
        let h = Histogram::new();
        h.record(100);
        let before = h.snapshot();
        h.record(100);
        h.record(200);
        let after = h.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 300);
    }

    fn from_values(values: &[u64]) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merge is commutative and associative: the defining property that
        /// makes per-processor histograms aggregatable in any order.
        #[test]
        fn merge_commutes_and_associates(
            a in proptest::collection::vec(any::<u64>(), 0..64),
            b in proptest::collection::vec(any::<u64>(), 0..64),
            c in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let (sa, sb, sc) = (from_values(&a), from_values(&b), from_values(&c));

            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(&ab, &ba);

            let mut ab_c = ab.clone();
            ab_c.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut a_bc = sa.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c, a_bc);
        }

        /// Reported quantiles land in the same bucket as the exact ranked
        /// observation — error bounded by one bucket.
        #[test]
        fn quantile_error_within_one_bucket(
            mut values in proptest::collection::vec(any::<u64>(), 1..256),
            q in 0.01f64..1.0f64,
        ) {
            let s = from_values(&values);
            values.sort_unstable();
            let rank = ((q * values.len() as f64).ceil() as usize)
                .clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = s.quantile(q);
            let (bi_exact, bi_approx) = (bucket_index(exact), bucket_index(approx));
            prop_assert!(
                bi_exact.abs_diff(bi_approx) <= 1,
                "exact {} (bucket {}) vs approx {} (bucket {})",
                exact, bi_exact, approx, bi_approx
            );
        }

        /// Merging two snapshots preserves the exact max and total count.
        #[test]
        fn merge_preserves_count_and_max(
            a in proptest::collection::vec(any::<u64>(), 0..64),
            b in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let mut m = from_values(&a);
            m.merge(&from_values(&b));
            prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
            let exact_max = a.iter().chain(b.iter()).copied().max().unwrap_or(0);
            prop_assert_eq!(m.max(), exact_max);
        }
    }
}
