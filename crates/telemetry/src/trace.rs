//! Sampling and span collection for in-band tracing.
//!
//! The wire-level [`TraceContext`] lives in `adn-wire::header` (re-exported
//! here); this module holds the process-local machinery: a [`Sampler`]
//! whose off state costs exactly one relaxed atomic load and one branch,
//! and a bounded [`SpanRing`] hop instrumentation emits into.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

pub use adn_wire::header::TraceContext;

/// splitmix64 — the same cheap mixer the trace-context span ids use.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-key sampling decision at a rate stored in parts per
/// million. Deterministic on the key means every hop of a call agrees on
/// whether the call is sampled without coordination.
#[derive(Debug, Default)]
pub struct Sampler {
    per_million: AtomicU32,
}

impl Sampler {
    /// A sampler that never fires.
    pub fn off() -> Self {
        Self::default()
    }

    /// A sampler firing at `rate` (0.0–1.0).
    pub fn with_rate(rate: f64) -> Self {
        let s = Self::off();
        s.set_rate(rate);
        s
    }

    /// Sets the sampling rate (clamped to 0.0–1.0). Takes effect on the
    /// next decision; shared via `Arc` with every hop of an app.
    pub fn set_rate(&self, rate: f64) {
        let ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        self.per_million.store(ppm, Ordering::Relaxed);
    }

    /// Current rate as a fraction.
    pub fn rate(&self) -> f64 {
        self.per_million.load(Ordering::Relaxed) as f64 / 1_000_000.0
    }

    /// Whether the call identified by `key` is sampled. When the rate is
    /// zero this is one atomic load and one branch — the entire hot-path
    /// cost of disabled telemetry.
    #[inline]
    pub fn decide(&self, key: u64) -> bool {
        let ppm = self.per_million.load(Ordering::Relaxed);
        if ppm == 0 {
            return false;
        }
        if ppm >= 1_000_000 {
            return true;
        }
        mix64(key) % 1_000_000 < ppm as u64
    }
}

/// One recorded hop: where a sampled call spent its time on one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// End-to-end trace id (from the in-band context).
    pub trace_id: u64,
    /// This hop's span id.
    pub span_id: u64,
    /// The upstream hop's span id (0 when the client is the parent).
    pub parent_span: u64,
    /// Correlation id of the call.
    pub call_id: u64,
    /// Flat endpoint address of the recording processor.
    pub processor: u64,
    /// Time spent queued before the processor dequeued the frame (ns).
    pub queue_ns: u64,
    /// Per-chain-stage execution time, in chain order (ns). Stages the
    /// chain short-circuited past are absent.
    pub stages: Vec<(String, u64)>,
    /// Time to re-serialize and hand the frame to the link (ns).
    pub serialize_ns: u64,
}

impl Span {
    /// Total time attributed to this hop (ns).
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.stages.iter().map(|(_, ns)| ns).sum::<u64>() + self.serialize_ns
    }
}

/// A bounded MPSC ring of spans. Producers (processor threads) push and
/// evict the oldest when full; a consumer drains periodically. Overflow is
/// counted, never blocking.
#[derive(Debug)]
pub struct SpanRing {
    cap: usize,
    inner: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring holding at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes a span, evicting the oldest when full.
    pub fn push(&self, span: Span) {
        let mut ring = self.inner.lock();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Removes and returns everything currently buffered.
    pub fn drain(&self) -> Vec<Span> {
        self.inner.lock().drain(..).collect()
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Spans evicted unread since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_off_never_fires() {
        let s = Sampler::off();
        assert!((0..1000).all(|k| !s.decide(k)));
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn sampler_full_always_fires() {
        let s = Sampler::with_rate(1.0);
        assert!((0..1000).all(|k| s.decide(k)));
    }

    #[test]
    fn sampler_partial_is_deterministic_and_roughly_proportional() {
        let s = Sampler::with_rate(0.25);
        let hits: Vec<u64> = (0..10_000).filter(|&k| s.decide(k)).collect();
        let again: Vec<u64> = (0..10_000).filter(|&k| s.decide(k)).collect();
        assert_eq!(hits, again);
        assert!((1500..3500).contains(&hits.len()), "{}", hits.len());
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = SpanRing::new(2);
        let span = |id| Span {
            trace_id: id,
            span_id: id,
            parent_span: 0,
            call_id: id,
            processor: 1,
            queue_ns: 0,
            stages: vec![],
            serialize_ns: 0,
        };
        ring.push(span(1));
        ring.push(span(2));
        ring.push(span(3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn span_total_sums_components() {
        let s = Span {
            trace_id: 1,
            span_id: 2,
            parent_span: 0,
            call_id: 3,
            processor: 4,
            queue_ns: 10,
            stages: vec![("Acl".into(), 20), ("Logging".into(), 30)],
            serialize_ns: 5,
        };
        assert_eq!(s.total_ns(), 65);
    }
}
