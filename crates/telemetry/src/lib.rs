//! # adn-telemetry — the observability plane for Application Defined Networks
//!
//! The paper's runtime controller places and migrates elements using "global
//! knowledge of the cluster". This crate is that knowledge. It provides:
//!
//! * [`metrics`] — lock-free counters and log-linear-bucket latency
//!   histograms that merge exactly (bucket-wise addition), so per-processor
//!   measurements aggregate into cluster-wide distributions without loss
//!   beyond one bucket of quantile error.
//! * [`registry`] — a process-wide [`Registry`] keyed by
//!   `(app, element, processor)` plus snapshot/delta encoding over the
//!   `adn-wire` codec, cheap enough to piggyback on every heartbeat.
//! * [`trace`] — in-band trace propagation: a [`Sampler`] whose off state
//!   costs one atomic load and one branch, and a bounded [`SpanRing`] that
//!   hop instrumentation pushes spans into (queue wait, per-stage element
//!   exec, serialize).
//! * [`view`] — the controller-side sliding-window [`ClusterView`]
//!   (per-element rate, p99, queue depth) and the [`LoadAwarePolicy`] that
//!   turns it into placement and scale-out decisions.
//!
//! The wire-level trace context itself ([`TraceContext`]) lives in
//! `adn-wire::header` so the RPC and data-plane codecs can carry it without
//! depending on this crate; it is re-exported here for convenience.

pub mod metrics;
pub mod registry;
pub mod trace;
pub mod view;

use std::sync::Arc;

pub use adn_wire::header::TraceContext;
pub use metrics::{Counter, Histogram, HistogramSnapshot};
pub use registry::{ElementMetrics, ElementSnapshot, MetricKey, Registry, RegistrySnapshot};
pub use trace::{Sampler, Span, SpanRing};
pub use view::{ClusterView, LoadAwarePolicy, ProcessorObservation, ViewRow};

/// Everything a data-plane hop needs to observe itself: where to register
/// metrics, where to emit spans, and whether to sample at all. Cloned into
/// each processor at deploy time; `None` keeps the hop entirely
/// instrumentation-free.
#[derive(Clone)]
pub struct HopTelemetry {
    /// Application the hop belongs to (registry key component).
    pub app: String,
    /// Shared metric registry (typically the controller's).
    pub registry: Arc<Registry>,
    /// Bounded ring spans are emitted into.
    pub spans: Arc<SpanRing>,
    /// Per-app sampling decision, set by the controller.
    pub sampler: Arc<Sampler>,
    /// Registry identity override for metric series. `None` registers under
    /// the hop's own address (the single-shard case). A sharded processor
    /// gives each shard worker a distinct id here so per-shard series stay
    /// separate and merge losslessly via [`Registry::snapshot_merged`];
    /// spans and trace ids keep using the hop address either way, so the
    /// trace tree is unaffected by sharding.
    pub metrics_processor: Option<u64>,
}

impl HopTelemetry {
    /// Returns a copy whose metric series register under `id` instead of
    /// the hop address (builder style; used per shard worker).
    pub fn with_metrics_processor(mut self, id: u64) -> Self {
        self.metrics_processor = Some(id);
        self
    }
}

impl std::fmt::Debug for HopTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HopTelemetry")
            .field("app", &self.app)
            .field("sampling", &self.sampler.rate())
            .finish_non_exhaustive()
    }
}
