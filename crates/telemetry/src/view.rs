//! The controller-side sliding-window view of the cluster, and the
//! load-aware policy that turns it into placement decisions.
//!
//! Processors piggyback cumulative metric snapshots on their existing
//! heartbeat load reports; the controller feeds each report into a
//! [`ClusterView`], which keeps a bounded window of observations per
//! processor and answers the three questions placement cares about:
//! per-element rate, p99 latency, and queue depth.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use adn_wire::clock::Clock;
use parking_lot::Mutex;

use crate::metrics::HistogramSnapshot;
use crate::registry::ElementSnapshot;

/// One heartbeat's worth of observability data from one processor.
/// All values are cumulative since processor start; the view differences
/// consecutive observations to recover windowed rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorObservation {
    /// Flat endpoint address of the reporting processor.
    pub endpoint: u64,
    /// Cumulative requests processed.
    pub processed: u64,
    /// Instantaneous inbound queue depth at report time.
    pub queue_depth: u64,
    /// Cumulative requests shed by priority admission control.
    pub shed: u64,
    /// Cumulative requests dropped with an exhausted deadline budget.
    pub expired_drops: u64,
    /// Cumulative per-element metric snapshots hosted on this processor.
    pub elements: Vec<ElementSnapshot>,
}

/// One row of the aggregated view, as `adn-top` renders it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewRow {
    /// Application name.
    pub app: String,
    /// Element name.
    pub element: String,
    /// Hosting processor endpoint.
    pub processor: u64,
    /// Sampled executions in the window.
    pub count: u64,
    /// Sampled errors in the window.
    pub errors: u64,
    /// Execution-latency quantiles over the window (ns).
    pub p50_ns: u64,
    /// p95 (ns).
    pub p95_ns: u64,
    /// p99 (ns).
    pub p99_ns: u64,
    /// Max (ns, cumulative — window max is not recoverable from deltas).
    pub max_ns: u64,
    /// Requests/second through the hosting processor over the window.
    pub rate: u64,
    /// Latest reported queue depth of the hosting processor.
    pub queue_depth: u64,
}

const MAX_SAMPLES_PER_PROC: usize = 64;

/// Sliding-window aggregation of [`ProcessorObservation`]s.
///
/// Observation timestamps are durations since the view's [`Clock`] epoch;
/// the controller shares its clock with the view so window aging follows
/// virtual time under the deterministic simulator.
pub struct ClusterView {
    window: Duration,
    clock: Arc<dyn Clock>,
    procs: Mutex<HashMap<u64, VecDeque<(Duration, ProcessorObservation)>>>,
}

impl ClusterView {
    /// A view retaining observations for `window`, timestamped off the
    /// wall clock.
    pub fn new(window: Duration) -> Self {
        Self::with_clock(window, adn_wire::clock::system())
    }

    /// A view retaining observations for `window`, timestamped off `clock`.
    pub fn with_clock(window: Duration, clock: Arc<dyn Clock>) -> Self {
        Self {
            window,
            clock,
            procs: Mutex::new(HashMap::new()),
        }
    }

    /// Feeds one heartbeat observation into the window.
    pub fn observe(&self, obs: ProcessorObservation) {
        self.observe_at(self.clock.now(), obs);
    }

    /// Feeds an observation stamped at an explicit time (since the clock
    /// epoch). The simulator uses this to replay observations at exact
    /// virtual timestamps.
    pub fn observe_at(&self, now: Duration, obs: ProcessorObservation) {
        let mut procs = self.procs.lock();
        let window = procs.entry(obs.endpoint).or_default();
        window.push_back((now, obs));
        while window.len() > MAX_SAMPLES_PER_PROC
            || window
                .front()
                .is_some_and(|(t, _)| now.saturating_sub(*t) > self.window && window.len() > 2)
        {
            window.pop_front();
        }
    }

    /// Forgets a processor (e.g. after failover replaced it).
    pub fn forget(&self, endpoint: u64) {
        self.procs.lock().remove(&endpoint);
    }

    /// Endpoints with at least one observation, sorted.
    pub fn endpoints(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.procs.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Requests/second through `endpoint` over the retained window, or 0
    /// with fewer than two observations.
    pub fn rate(&self, endpoint: u64) -> f64 {
        let procs = self.procs.lock();
        let Some(window) = procs.get(&endpoint) else {
            return 0.0;
        };
        let (Some((t0, first)), Some((t1, last))) = (window.front(), window.back()) else {
            return 0.0;
        };
        let dt = t1.saturating_sub(*t0).as_secs_f64();
        if dt < 1e-3 {
            return 0.0;
        }
        last.processed.saturating_sub(first.processed) as f64 / dt
    }

    /// Requests/second `endpoint` is refusing — shed by admission control
    /// or dropped expired — over the retained window, or 0 with fewer
    /// than two observations. A sustained non-zero shed rate is the
    /// strongest overload signal the cluster emits: unlike queue depth it
    /// cannot be masked by fast draining, because every unit counted here
    /// was work the processor declined outright.
    pub fn shed_rate(&self, endpoint: u64) -> f64 {
        let procs = self.procs.lock();
        let Some(window) = procs.get(&endpoint) else {
            return 0.0;
        };
        let (Some((t0, first)), Some((t1, last))) = (window.front(), window.back()) else {
            return 0.0;
        };
        let dt = t1.saturating_sub(*t0).as_secs_f64();
        if dt < 1e-3 {
            return 0.0;
        }
        let refused = |o: &ProcessorObservation| o.shed + o.expired_drops;
        refused(last).saturating_sub(refused(first)) as f64 / dt
    }

    /// Latest reported queue depth for `endpoint`.
    pub fn queue_depth(&self, endpoint: u64) -> u64 {
        self.procs
            .lock()
            .get(&endpoint)
            .and_then(|w| w.back())
            .map(|(_, o)| o.queue_depth)
            .unwrap_or(0)
    }

    /// Worst per-element p99 (ns) on `endpoint` over the retained window,
    /// or `None` when nothing was sampled there.
    pub fn element_p99(&self, endpoint: u64) -> Option<u64> {
        let procs = self.procs.lock();
        let window = procs.get(&endpoint)?;
        let (_, first) = window.front()?;
        let (_, last) = window.back()?;
        let mut worst = None;
        for e in &last.elements {
            let delta = match first.elements.iter().find(|p| p.key == e.key) {
                Some(p) if window.len() > 1 => e.exec.delta_since(&p.exec),
                _ => e.exec.clone(),
            };
            if delta.count() > 0 {
                let p99 = delta.quantile(0.99);
                worst = Some(worst.map_or(p99, |w: u64| w.max(p99)));
            }
        }
        worst
    }

    /// A comparable load score for `endpoint`: queue depth dominates,
    /// recent request rate breaks ties. Lower is lighter.
    pub fn load_score(&self, endpoint: u64) -> f64 {
        self.queue_depth(endpoint) as f64 * 1_000.0 + self.rate(endpoint)
    }

    /// Flattens the window into per-element rows for display. Rows are
    /// sorted by `(app, element, processor)`.
    pub fn rows(&self) -> Vec<ViewRow> {
        let procs = self.procs.lock();
        let mut rows = Vec::new();
        for (endpoint, window) in procs.iter() {
            let (Some((t0, first)), Some((t1, last))) = (window.front(), window.back()) else {
                continue;
            };
            let dt = t1.saturating_sub(*t0).as_secs_f64();
            let rate = if dt < 1e-3 {
                0
            } else {
                (last.processed.saturating_sub(first.processed) as f64 / dt) as u64
            };
            for e in &last.elements {
                let delta = match first.elements.iter().find(|p| p.key == e.key) {
                    Some(p) if window.len() > 1 => {
                        let exec = e.exec.delta_since(&p.exec);
                        ElementSnapshot {
                            key: e.key.clone(),
                            count: e.count.saturating_sub(p.count),
                            errors: e.errors.saturating_sub(p.errors),
                            exec,
                        }
                    }
                    _ => e.clone(),
                };
                rows.push(ViewRow {
                    app: delta.key.app.clone(),
                    element: delta.key.element.clone(),
                    processor: *endpoint,
                    count: delta.count,
                    errors: delta.errors,
                    p50_ns: delta.exec.quantile(0.5),
                    p95_ns: delta.exec.quantile(0.95),
                    p99_ns: delta.exec.quantile(0.99),
                    max_ns: delta.exec.max(),
                    rate,
                    queue_depth: last.queue_depth,
                });
            }
        }
        rows.sort_by(|a, b| {
            (&a.app, &a.element, a.processor).cmp(&(&b.app, &b.element, b.processor))
        });
        rows
    }

    /// Merges every element histogram across the cluster into one
    /// distribution per `(app, element)` — the input to
    /// `paper_eval --latency-breakdown`.
    pub fn merged_by_element(&self) -> Vec<(String, String, HistogramSnapshot)> {
        let procs = self.procs.lock();
        let mut merged: HashMap<(String, String), HistogramSnapshot> = HashMap::new();
        for window in procs.values() {
            let Some((_, last)) = window.back() else {
                continue;
            };
            for e in &last.elements {
                merged
                    .entry((e.key.app.clone(), e.key.element.clone()))
                    .or_default()
                    .merge(&e.exec);
            }
        }
        let mut out: Vec<_> = merged
            .into_iter()
            .map(|((app, element), h)| (app, element, h))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }
}

impl std::fmt::Debug for ClusterView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterView")
            .field("window", &self.window)
            .field("processors", &self.procs.lock().len())
            .finish()
    }
}

/// Thresholded, cooldown-gated placement policy over a [`ClusterView`].
/// Replaces the signal-free round-robin heuristics: new element groups go
/// to the lightest processor, and a sustained p99 or queue-depth breach
/// asks for exactly one scale-out per cooldown window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadAwarePolicy {
    /// Scale out when any element's windowed p99 exceeds this (ns).
    pub p99_threshold_ns: u64,
    /// Scale out when the processor's queue depth exceeds this.
    pub queue_depth_threshold: u64,
    /// Scale out when the processor refuses (sheds + expired-drops) more
    /// than this many requests/second over the window. Shedding protects
    /// goodput but every shed is a request the cluster failed to serve,
    /// so a sustained shed rate is a capacity breach, not a steady state.
    pub shed_rate_threshold: u64,
    /// Minimum time between scale-outs of the same group.
    pub cooldown: Duration,
}

impl Default for LoadAwarePolicy {
    fn default() -> Self {
        Self {
            p99_threshold_ns: 50_000_000, // 50 ms
            queue_depth_threshold: 64,
            shed_rate_threshold: 10,
            cooldown: Duration::from_secs(5),
        }
    }
}

impl LoadAwarePolicy {
    /// The lightest-loaded candidate (ties broken toward the lower
    /// address for determinism), or `None` when `candidates` is empty.
    pub fn prefer(&self, view: &ClusterView, candidates: &[u64]) -> Option<u64> {
        candidates
            .iter()
            .copied()
            .map(|ep| (view.load_score(ep), ep))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            })
            .map(|(_, ep)| ep)
    }

    /// Whether `endpoint` currently breaches any threshold.
    pub fn breached(&self, view: &ClusterView, endpoint: u64) -> bool {
        if view.queue_depth(endpoint) > self.queue_depth_threshold {
            return true;
        }
        if view.shed_rate(endpoint) > self.shed_rate_threshold as f64 {
            return true;
        }
        view.element_p99(endpoint)
            .is_some_and(|p99| p99 > self.p99_threshold_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricKey;

    fn obs(endpoint: u64, processed: u64, queue_depth: u64) -> ProcessorObservation {
        ProcessorObservation {
            endpoint,
            processed,
            queue_depth,
            shed: 0,
            expired_drops: 0,
            elements: vec![],
        }
    }

    #[test]
    fn rate_needs_two_observations() {
        // Drive the view off a virtual clock advanced in controlled jumps:
        // the windowed rate is exact, not a wall-clock approximation.
        let clock = adn_wire::clock::VirtualClock::shared();
        let view = ClusterView::with_clock(Duration::from_secs(10), clock.clone());
        view.observe(obs(5, 100, 0));
        assert_eq!(view.rate(5), 0.0);
        clock.advance(Duration::from_secs(2));
        view.observe(obs(5, 300, 0));
        assert!((view.rate(5) - 100.0).abs() < 1.0);
    }

    #[test]
    fn old_samples_age_out_but_two_remain() {
        let clock = adn_wire::clock::VirtualClock::shared();
        let view = ClusterView::with_clock(Duration::from_millis(10), clock.clone());
        for i in 0..5u64 {
            clock.advance_to(Duration::from_secs(i));
            view.observe(obs(5, i * 10, 0));
        }
        // Everything but the last two is far older than the window.
        let procs = view.procs.lock();
        assert_eq!(procs.get(&5).unwrap().len(), 2);
    }

    #[test]
    fn policy_prefers_idle_processor() {
        let view = ClusterView::new(Duration::from_secs(10));
        view.observe(obs(5, 1_000, 40));
        view.observe(obs(6, 10, 0));
        let policy = LoadAwarePolicy::default();
        assert_eq!(policy.prefer(&view, &[5, 6]), Some(6));
        assert_eq!(policy.prefer(&view, &[]), None);
    }

    #[test]
    fn breach_on_queue_depth_and_p99() {
        let view = ClusterView::new(Duration::from_secs(10));
        let policy = LoadAwarePolicy {
            p99_threshold_ns: 1_000,
            queue_depth_threshold: 8,
            ..LoadAwarePolicy::default()
        };
        view.observe(obs(5, 10, 9));
        assert!(policy.breached(&view, 5));

        let mut hot = HistogramSnapshot::new();
        for _ in 0..100 {
            hot.record(50_000);
        }
        view.observe(ProcessorObservation {
            endpoint: 6,
            processed: 10,
            queue_depth: 0,
            shed: 0,
            expired_drops: 0,
            elements: vec![ElementSnapshot {
                key: MetricKey {
                    app: "shop".into(),
                    element: "Acl".into(),
                    processor: 6,
                },
                count: 100,
                errors: 0,
                exec: hot,
            }],
        });
        assert!(policy.breached(&view, 6));
        assert!(!policy.breached(&view, 7));
    }

    #[test]
    fn shed_rate_is_windowed_and_breaches_the_policy() {
        let clock = adn_wire::clock::VirtualClock::shared();
        let view = ClusterView::with_clock(Duration::from_secs(10), clock.clone());
        let policy = LoadAwarePolicy {
            shed_rate_threshold: 5,
            ..LoadAwarePolicy::default()
        };
        // One observation is not a rate.
        view.observe(ProcessorObservation {
            shed: 100,
            expired_drops: 50,
            ..obs(5, 10, 0)
        });
        assert_eq!(view.shed_rate(5), 0.0);
        assert!(!policy.breached(&view, 5));
        // 20 sheds + 20 expired drops over 2 s = 20/s: breach.
        clock.advance(Duration::from_secs(2));
        view.observe(ProcessorObservation {
            shed: 120,
            expired_drops: 70,
            ..obs(5, 40, 0)
        });
        assert!((view.shed_rate(5) - 20.0).abs() < 0.5);
        assert!(policy.breached(&view, 5));
        // A quiet endpoint with the same cumulative totals does not
        // breach: the signal is the windowed delta, not the lifetime sum.
        clock.advance(Duration::from_secs(2));
        view.observe(ProcessorObservation {
            shed: 120,
            expired_drops: 70,
            ..obs(6, 40, 0)
        });
        clock.advance(Duration::from_secs(2));
        view.observe(ProcessorObservation {
            shed: 121,
            expired_drops: 70,
            ..obs(6, 80, 0)
        });
        assert!(!policy.breached(&view, 6));
    }

    #[test]
    fn rows_and_merges_cover_elements() {
        let view = ClusterView::new(Duration::from_secs(10));
        let mut h = HistogramSnapshot::new();
        h.record(1_000);
        view.observe(ProcessorObservation {
            endpoint: 5,
            processed: 1,
            queue_depth: 2,
            shed: 0,
            expired_drops: 0,
            elements: vec![ElementSnapshot {
                key: MetricKey {
                    app: "shop".into(),
                    element: "Acl".into(),
                    processor: 5,
                },
                count: 1,
                errors: 0,
                exec: h,
            }],
        });
        let rows = view.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].element, "Acl");
        assert_eq!(rows[0].queue_depth, 2);
        let merged = view.merged_by_element();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].2.count(), 1);
    }
}
