//! Property tests for the minimal-header hop codec: over arbitrary
//! schemas, layouts, values, and trace states,
//! encode → decode → reencode → decode → finish must be the identity
//! (and, with intermediate rewrites, must merge exactly the rewritten
//! header fields over the blob).

use std::sync::Arc;

use adn_dataplane::hop::{decode_hop, encode_hop, finish_hop, reencode_hop};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::schema::{MethodDef, RpcSchema, ServiceSchema};
use adn_rpc::value::{Value, ValueType};
use adn_wire::header::{HeaderLayout, HeaderType, TraceContext};
use proptest::arbitrary::any;
use proptest::test_runner::ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

const TYPES: [ValueType; 6] = [
    ValueType::U64,
    ValueType::I64,
    ValueType::F64,
    ValueType::Bool,
    ValueType::Str,
    ValueType::Bytes,
];

fn header_type(ty: ValueType) -> HeaderType {
    match ty {
        ValueType::U64 => HeaderType::U64,
        ValueType::I64 => HeaderType::I64,
        ValueType::F64 => HeaderType::F64,
        ValueType::Bool => HeaderType::Bool,
        ValueType::Str => HeaderType::Str,
        ValueType::Bytes => HeaderType::Bytes,
    }
}

/// A deterministic value of `ty` synthesized from one u64 draw. Floats stay
/// finite so equality is well-defined.
fn value_from(ty: ValueType, x: u64) -> Value {
    match ty {
        ValueType::U64 => Value::U64(x),
        ValueType::I64 => Value::I64(x as i64),
        ValueType::F64 => Value::F64((x % 100_000) as f64 * 0.25),
        ValueType::Bool => Value::Bool(x % 2 == 1),
        ValueType::Str => Value::Str(format!("s{x}")),
        ValueType::Bytes => Value::Bytes(x.to_be_bytes()[..(x % 9) as usize].to_vec()),
    }
}

/// Builds a service whose request schema has `nfields` fields with types
/// drawn from `type_seed` (base-6 digits), plus a layout containing the
/// fields selected by `layout_mask`.
fn build(
    nfields: u64,
    type_seed: u64,
    layout_mask: u64,
    traced: bool,
) -> (Arc<ServiceSchema>, HeaderLayout, Arc<RpcSchema>) {
    let mut builder = RpcSchema::builder();
    let mut seed = type_seed;
    let mut types = Vec::new();
    for i in 0..nfields {
        let ty = TYPES[(seed % 6) as usize];
        seed /= 6;
        types.push(ty);
        builder = builder.field(format!("f{i}"), ty);
    }
    let schema = Arc::new(builder.build().unwrap());
    let mut layout = HeaderLayout::new();
    for (i, ty) in types.iter().enumerate() {
        if layout_mask & (1 << i) != 0 {
            layout.push(i as u16, format!("f{i}"), header_type(*ty));
        }
    }
    if traced {
        layout.set_carries_trace(true);
    }
    let service = Arc::new(
        ServiceSchema::new(
            "P",
            vec![MethodDef {
                id: 1,
                name: "M".into(),
                request: schema.clone(),
                response: schema.clone(),
            }],
        )
        .unwrap(),
    );
    (service, layout, schema)
}

#[allow(clippy::too_many_arguments)]
fn build_msg(
    schema: Arc<RpcSchema>,
    type_seed: u64,
    value_seed: u64,
    call_id: u64,
    src: u64,
    dst: u64,
    is_response: bool,
    trace_state: u64,
) -> RpcMessage {
    let mut msg = RpcMessage::request(call_id, 1, schema.clone());
    let mut tseed = type_seed;
    for i in 0..schema.len() {
        let ty = TYPES[(tseed % 6) as usize];
        tseed /= 6;
        msg.set_idx(i, value_from(ty, value_seed.wrapping_mul(i as u64 + 1)));
    }
    msg.src = src;
    msg.dst = dst;
    if is_response {
        msg.kind = MessageKind::Response;
    }
    msg.trace = match trace_state % 3 {
        0 => None,
        1 => Some(TraceContext::root(value_seed | 1)),
        _ => Some(TraceContext::root(value_seed | 1).child_from(src)),
    };
    msg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Without intermediate rewrites the full pipeline is the identity:
    /// the reencoded bytes equal the original bytes and the finished
    /// message equals the original message (fields, dst, kind, trace).
    #[test]
    fn hop_codec_roundtrip_is_identity(
        nfields in 1u64..=6,
        type_seed in 0u64..46_656, // 6^6: every type combination reachable
        layout_mask in 0u64..64,
        traced in any::<bool>(),
        value_seed in 0u64..u64::MAX,
        call_id in 0u64..u64::MAX,
        src in 0u64..10_000,
        dst in 0u64..10_000,
        is_response in any::<bool>(),
        trace_state in 0u64..3,
    ) {
        let layout_mask = layout_mask & ((1 << nfields) - 1);
        let (service, layout, schema) = build(nfields, type_seed, layout_mask, traced);
        let msg = build_msg(
            schema, type_seed, value_seed, call_id, src, dst, is_response, trace_state,
        );

        let bytes = encode_hop(&msg, &layout).unwrap();
        let frame = decode_hop(&bytes, &layout).unwrap();
        prop_assert_eq!(frame.call_id, msg.call_id);
        prop_assert_eq!(frame.kind, msg.kind);
        prop_assert_eq!(frame.dst, msg.dst);
        if traced {
            prop_assert_eq!(frame.trace, msg.trace);
        } else {
            prop_assert_eq!(frame.trace, None, "untraced layouts have no slot");
        }

        let bytes2 = reencode_hop(&frame, &layout).unwrap();
        prop_assert_eq!(&bytes2, &bytes, "reencode must be byte-identical");
        let frame2 = decode_hop(&bytes2, &layout).unwrap();
        prop_assert_eq!(&frame2, &frame);

        let finished = finish_hop(&frame2, &layout, &service).unwrap();
        prop_assert_eq!(finished, msg, "finish must reproduce the original");
    }

    /// With an intermediate rewrite (header field, dst, and — for traced
    /// layouts — a cleared context), the finished message reflects exactly
    /// the rewrites; everything else comes from the blob.
    #[test]
    fn hop_rewrites_merge_exactly(
        nfields in 1u64..=6,
        type_seed in 0u64..46_656,
        layout_mask in 1u64..64,
        traced in any::<bool>(),
        value_seed in 0u64..u64::MAX,
        rewrite_seed in 0u64..u64::MAX,
        new_dst in 0u64..10_000,
        trace_state in 0u64..3,
    ) {
        let layout_mask = (layout_mask & ((1 << nfields) - 1)) | 1;
        let (service, layout, schema) = build(nfields, type_seed, layout_mask, traced);
        let msg = build_msg(
            schema, type_seed, value_seed, 7, 1, 2, false, trace_state,
        );

        let bytes = encode_hop(&msg, &layout).unwrap();
        let mut frame = decode_hop(&bytes, &layout).unwrap();
        // Rewrite every header slot to a fresh value of the same type.
        let rewrites: Vec<Value> = frame
            .header
            .iter()
            .enumerate()
            .map(|(i, v)| value_from(v.value_type(), rewrite_seed.wrapping_add(i as u64)))
            .collect();
        frame.header.clone_from(&rewrites);
        frame.dst = new_dst;
        if traced {
            frame.trace = None; // e.g. budget-exhaustion policy
        }

        let reencoded = reencode_hop(&frame, &layout).unwrap();
        let frame2 = decode_hop(&reencoded, &layout).unwrap();
        let finished = finish_hop(&frame2, &layout, &service).unwrap();

        prop_assert_eq!(finished.dst, new_dst);
        if traced {
            prop_assert_eq!(finished.trace, None, "cleared context must stay cleared");
        } else {
            prop_assert_eq!(finished.trace, msg.trace);
        }
        for (slot, expect) in layout.fields().iter().zip(&rewrites) {
            prop_assert_eq!(finished.get(&slot.name), Some(expect));
        }
        for i in 0..nfields as usize {
            if layout_mask & (1 << i) == 0 {
                prop_assert_eq!(
                    finished.get_idx(i),
                    msg.get_idx(i),
                    "non-header field {} must come from the blob", i
                );
            }
        }
        prop_assert!(finished.call_id == msg.call_id);
    }
}
