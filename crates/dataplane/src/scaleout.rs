//! Scale-out RPC processing (paper Figure 2, Configuration 4).
//!
//! A shard router endpoint fronts N processor instances. The router decodes
//! only as much as it needs (the shard key), picks an instance by stable
//! hash, and forwards the original frame bytes untouched. Keyed element
//! state is partitioned across instances by the same hash, so each
//! instance's state tables see exactly the keys that hash to them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;

use adn_rpc::message::MessageKind;
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, Frame, Link};
use adn_rpc::wire_format;

/// How the router picks an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBy {
    /// Hash a request field (by schema index); keyed state stays local.
    RequestField(usize),
    /// Hash the call id (stateless chains only).
    CallId,
}

/// Configuration for [`spawn_sharded`].
pub struct ShardedConfig {
    /// The router's flat address (what clients send to).
    pub addr: EndpointAddr,
    /// Addresses of the processor instances behind the router.
    pub instances: Vec<EndpointAddr>,
    /// Service schema (the router decodes the envelope + shard field).
    pub service: Arc<ServiceSchema>,
    /// Sharding policy.
    pub shard_by: ShardBy,
    /// NAT flow entries inherited from the processor this router replaced:
    /// in-flight responses addressed to the old processor are routed back
    /// to their original requesters.
    pub inherited_flows: std::collections::HashMap<u64, EndpointAddr>,
}

/// Handle to a running shard router.
pub struct ShardedHandle {
    addr: EndpointAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
    paused: Arc<std::sync::atomic::AtomicBool>,
    drain_req: Arc<std::sync::atomic::AtomicBool>,
    drain_done: Arc<std::sync::atomic::AtomicBool>,
    forwarded: Arc<AtomicU64>,
    flows: Arc<parking_lot::Mutex<std::collections::HashMap<u64, EndpointAddr>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ShardedHandle {
    /// The router's address.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Frames forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Remaining inherited flow entries (drains as stragglers return).
    pub fn export_flows(&self) -> std::collections::HashMap<u64, EndpointAddr> {
        self.flows.lock().clone()
    }

    /// Stops forwarding new requests (they stay queued for a successor to
    /// drain); inherited-flow responses keep flowing home.
    pub fn stop_routing(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Re-emits every queued frame to this router's own address (after a
    /// successor took the address over) and waits for completion.
    pub fn drain(&self) {
        self.drain_req.store(true, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !self.drain_done.load(Ordering::Relaxed) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Stops the router thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ShardedHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns the shard router. Responses do not pass through the router: each
/// instance NATs itself into the flow, so the return path goes
/// server → instance → client directly.
pub fn spawn_sharded(
    config: ShardedConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
) -> ShardedHandle {
    assert!(!config.instances.is_empty(), "need at least one instance");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let forwarded = Arc::new(AtomicU64::new(0));
    let flows = Arc::new(parking_lot::Mutex::new(config.inherited_flows.clone()));
    let addr = config.addr;

    let paused = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drain_req = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drain_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let t_stop = stop.clone();
    let t_paused = paused.clone();
    let t_drain_req = drain_req.clone();
    let t_drain_done = drain_done.clone();
    let t_forwarded = forwarded.clone();
    let t_flows = flows.clone();
    let join = std::thread::Builder::new()
        .name(format!("adn-shard-router-{addr}"))
        .spawn(move || {
            let ShardedConfig {
                addr: addr_for_drain,
                instances,
                service,
                shard_by,
                inherited_flows: _,
            } = config;
            while !t_stop.load(Ordering::Relaxed) {
                if t_drain_req.load(Ordering::Relaxed) && !t_drain_done.load(Ordering::Relaxed) {
                    // Re-emit queued frames to our own address; the fabric
                    // now delivers them to the successor.
                    let self_addr = addr_for_drain;
                    while let Ok(frame) = frames.try_recv() {
                        let _ = link.send(Frame {
                            src: frame.src,
                            dst: self_addr,
                            payload: frame.payload,
                        });
                    }
                    t_drain_done.store(true, Ordering::Relaxed);
                }
                if t_paused.load(Ordering::Relaxed) {
                    // Leave requests queued for the successor's drain.
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let frame = match frames.recv_timeout(Duration::from_millis(20)) {
                    Ok(f) => f,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                };
                // Decode just enough to shard; forward the original bytes.
                let Ok(msg) = wire_format::decode_message_exact(&frame.payload, &service) else {
                    continue;
                };
                if msg.kind != MessageKind::Request {
                    // A response for an in-flight call of the processor
                    // this router replaced: route it home.
                    if let Some(orig_src) = t_flows.lock().remove(&msg.call_id) {
                        let _ = link.send(Frame {
                            src: frame.src,
                            dst: orig_src,
                            payload: frame.payload,
                        });
                    }
                    continue;
                }
                let hash = match shard_by {
                    ShardBy::RequestField(idx) => msg.fields[idx].stable_hash(),
                    ShardBy::CallId => adn_rpc::value::Value::U64(msg.call_id).stable_hash(),
                };
                let instance = instances[(hash % instances.len() as u64) as usize];
                if link
                    .send(Frame {
                        src: frame.src,
                        dst: instance,
                        payload: frame.payload,
                    })
                    .is_ok()
                {
                    t_forwarded.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .expect("spawn shard router");

    ShardedHandle {
        addr,
        stop,
        paused,
        drain_req,
        drain_done,
        forwarded,
        flows,
        join: Some(join),
    }
}

/// Computes the shard an arbitrary key value lands on — used by the
/// controller to partition keyed state consistently with the router.
pub fn shard_of(key: &adn_rpc::value::Value, shards: usize) -> usize {
    (key.stable_hash() % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::processor::{spawn_processor, NextHop, ProcessorConfig, DEFAULT_BATCH_MAX};
    use adn_rpc::engine::{Engine, EngineChain, Verdict};
    use adn_rpc::message::RpcMessage;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::transport::InProcNetwork;
    use adn_rpc::value::{Value, ValueType};

    fn service() -> Arc<ServiceSchema> {
        let schema = Arc::new(
            RpcSchema::builder()
                .field("key", ValueType::U64)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "KV",
                vec![MethodDef {
                    id: 1,
                    name: "Get".into(),
                    request: schema.clone(),
                    response: schema,
                }],
            )
            .unwrap(),
        )
    }

    struct KeyRecorder {
        seen: Arc<parking_lot::Mutex<Vec<u64>>>,
    }
    impl Engine for KeyRecorder {
        fn name(&self) -> &str {
            "key_recorder"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                if let Some(Value::U64(k)) = msg.get("key") {
                    self.seen.lock().push(*k);
                }
            }
            Verdict::Forward
        }
    }

    #[test]
    fn sharding_is_consistent_and_covers_instances() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();

        // Server at 2.
        let server_frames = net.attach(2);
        let svc2 = svc.clone();
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            server_frames,
            Box::new(move |req| {
                let m = svc2.method_by_id(1).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("key", req.get("key").unwrap().clone());
                resp
            }),
        );

        // Two processor instances at 10, 11 with key recorders.
        let seen_a = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen_b = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (addr, seen) in [(10u64, seen_a.clone()), (11, seen_b.clone())] {
            let frames = net.attach(addr);
            handles.push(spawn_processor(
                ProcessorConfig {
                    addr,
                    service: svc.clone(),
                    chain: EngineChain::from_engines(vec![Box::new(KeyRecorder { seen })]),
                    request_next: NextHop::Fixed(2),
                    response_next: NextHop::Dst,
                    initial_flows: Default::default(),
                    telemetry: None,
                    clock: None,
                    batch_max: DEFAULT_BATCH_MAX,
                    overload: Default::default(),
                    inbox_capacity: None,
                },
                link.clone(),
                frames,
            ));
        }

        // Router at 5.
        let router_frames = net.attach(5);
        let router = spawn_sharded(
            ShardedConfig {
                addr: 5,
                instances: vec![10, 11],
                service: svc.clone(),
                shard_by: ShardBy::RequestField(0),
                inherited_flows: Default::default(),
            },
            link.clone(),
            router_frames,
        );

        // Client at 1.
        let client_frames = net.attach(1);
        let client = RpcClient::new(1, link, client_frames, svc.clone(), EngineChain::new());
        let m = svc.method_by_id(1).unwrap();

        for k in 0..40u64 {
            let msg = RpcMessage::request(0, 1, m.request.clone()).with("key", k);
            let resp = client.call(msg, 5).unwrap();
            assert_eq!(resp.get("key"), Some(&Value::U64(k)));
        }

        let a = seen_a.lock().clone();
        let b = seen_b.lock().clone();
        assert_eq!(a.len() + b.len(), 40);
        assert!(
            !a.is_empty() && !b.is_empty(),
            "both shards should see traffic"
        );
        // Consistency: every key landed on the shard `shard_of` predicts.
        for k in a {
            assert_eq!(shard_of(&Value::U64(k), 2), 0, "key {k} misrouted");
        }
        for k in b {
            assert_eq!(shard_of(&Value::U64(k), 2), 1, "key {k} misrouted");
        }
        assert_eq!(router.forwarded(), 40);
    }
}
