//! Flow-hash sharding of a single processor across worker threads.
//!
//! [`scaleout`](crate::scaleout) shards *across addresses*: a router in
//! front of N separately-addressed processor instances, keyed by a request
//! field. This module shards *within one address*: a dispatcher thread
//! fans frames out to N serve-loop workers that all answer for the same
//! flat address, so the rest of the cluster (clients, routers, the
//! controller's failure detector) sees one logical processor.
//!
//! ## Shard safety
//!
//! Workers keep fully private element state, dedup caches, and NAT flow
//! tables. That is only correct when every piece of mutated chain state is
//! keyed by something the flow hash pins to one shard — exactly the
//! property the verifier's V0005 partitionability lint checks. The
//! dispatcher hashes requests by `(src, call id)`:
//!
//! * the at-most-once dedup cache is keyed `(src, call id)` — a
//!   retransmission hashes identically and replays from the same shard;
//! * the NAT flow table is keyed by call id — responses are routed to the
//!   shard recorded when the request was dispatched, so the flow entry is
//!   found where it was written.
//!
//! Chains holding state keyed by a *request field* (per-user quotas, keyed
//! caches) must shard by that field instead — use
//! [`scaleout::spawn_sharded`](crate::scaleout::spawn_sharded) — or run
//! single-shard.
//!
//! With no extra chains this spawns a plain [`spawn_processor`] and adds
//! nothing in the path: no dispatcher thread, no extra queue, byte-for-byte
//! identical behavior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};

use adn_rpc::engine::EngineChain;
use adn_rpc::message::MessageKind;
use adn_rpc::retry::DedupWindow;
use adn_rpc::transport::{EndpointAddr, Frame, Link};
use adn_rpc::wire_format;

use crate::processor::{
    spawn_processor, ProcessorConfig, ProcessorHandle, StatsSnapshot, PROCESSOR_DEDUP_WINDOW,
};

/// Distance between the registry metric ids of consecutive shards. Large
/// enough that shard ids of distinct processors never collide for any
/// realistic address space.
pub const SHARD_METRICS_STRIDE: u64 = 1 << 32;

/// The registry identity shard `k` of the processor at `addr` records
/// metrics under. Shard 0 keeps the plain address, so single-shard metrics
/// look exactly like an unsharded processor's.
pub fn shard_metrics_id(addr: EndpointAddr, shard: usize) -> u64 {
    addr + SHARD_METRICS_STRIDE * shard as u64
}

/// FNV-1a over the flow identity. Stable across runs (determinism is load
///-bearing: the sim replays shard placement from the seed alone).
fn flow_hash(src: EndpointAddr, call_id: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.to_le_bytes().into_iter().chain(call_id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle to a processor sharded across worker threads behind one address.
pub struct ShardedProcessor {
    addr: EndpointAddr,
    shards: Vec<ProcessorHandle>,
    /// Per-shard registry metric ids (one entry per shard, in order).
    metrics_ids: Vec<u64>,
    stop: Arc<AtomicBool>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    inbox_drops: Arc<AtomicU64>,
}

impl ShardedProcessor {
    /// The shared flat address.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Number of shard workers (1 = plain processor, no dispatcher).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard handles, in shard order.
    pub fn handles(&self) -> &[ProcessorHandle] {
        &self.shards
    }

    /// Registry metric ids per shard — feed these to
    /// [`Registry::snapshot_merged`](adn_telemetry::Registry::snapshot_merged)
    /// with `merged_id = addr` for the one-logical-processor view.
    pub fn metrics_ids(&self) -> &[u64] {
        &self.metrics_ids
    }

    /// Counter snapshot summed across shards — the one-logical-processor
    /// view the controller reads.
    pub fn stats(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.stats()))
    }

    /// Frames the dispatcher dropped because a shard's bounded inbox was
    /// full (zero unless [`ProcessorConfig::inbox_capacity`] is set).
    pub fn inbox_drops(&self) -> u64 {
        self.inbox_drops.load(Ordering::Relaxed)
    }

    /// Union of the shards' NAT flow tables (call ids are hashed onto
    /// disjoint shards, so entries never collide).
    pub fn export_flows(&self) -> HashMap<u64, EndpointAddr> {
        let mut out = HashMap::new();
        for s in &self.shards {
            out.extend(s.export_flows());
        }
        out
    }

    /// Pauses every shard (their queues retain frames; the dispatcher keeps
    /// routing into them).
    pub fn pause_all(&self) {
        for s in &self.shards {
            s.pause();
        }
    }

    /// Resumes every shard.
    pub fn resume_all(&self) {
        for s in &self.shards {
            s.resume();
        }
    }

    /// Stops the dispatcher (draining frames it already pulled), then every
    /// shard worker.
    pub fn stop(mut self) {
        self.shutdown();
        for s in self.shards.drain(..) {
            s.stop();
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.dispatcher.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ShardedProcessor {
    fn drop(&mut self) {
        // Dispatcher first, so shard inboxes stop growing; ProcessorHandle's
        // own Drop then stops each worker.
        self.shutdown();
    }
}

/// Spawns the processor described by `config` sharded across
/// `1 + extra_chains.len()` worker threads sharing `config.addr`. Shard 0
/// runs `config.chain`; shard `k` runs `extra_chains[k-1]` (compiled from
/// the same program — each worker needs its own chain instance because
/// element state is per-shard by design).
///
/// With `extra_chains` empty this is exactly [`spawn_processor`]: same
/// thread, same queue, no dispatcher.
pub fn spawn_processor_sharded(
    mut config: ProcessorConfig,
    extra_chains: Vec<EngineChain>,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
) -> ShardedProcessor {
    let addr = config.addr;
    let stop = Arc::new(AtomicBool::new(false));
    let inbox_drops = Arc::new(AtomicU64::new(0));
    if extra_chains.is_empty() {
        return ShardedProcessor {
            addr,
            metrics_ids: vec![config
                .telemetry
                .as_ref()
                .and_then(|t| t.metrics_processor)
                .unwrap_or(addr)],
            shards: vec![spawn_processor(config, link, frames)],
            stop,
            dispatcher: None,
            inbox_drops,
        };
    }

    let n = 1 + extra_chains.len();
    let telemetry = config.telemetry.take();
    let initial_flows = std::mem::take(&mut config.initial_flows);
    let mut chains: Vec<EngineChain> = Vec::with_capacity(n);
    chains.push(std::mem::replace(&mut config.chain, EngineChain::new()));
    chains.extend(extra_chains);

    let mut shards = Vec::with_capacity(n);
    let mut metrics_ids = Vec::with_capacity(n);
    let mut inboxes: Vec<Sender<Frame>> = Vec::with_capacity(n);
    for (k, chain) in chains.into_iter().enumerate() {
        let metrics_id = shard_metrics_id(addr, k);
        metrics_ids.push(metrics_id);
        // Shard inboxes are the second bounded stage (after the transport's
        // inbound queue): a wedged shard must not buffer without limit.
        let (tx, rx) = match config.inbox_capacity {
            Some(cap) => crossbeam::channel::bounded(cap),
            None => crossbeam::channel::unbounded(),
        };
        inboxes.push(tx);
        let shard_config = ProcessorConfig {
            addr,
            service: config.service.clone(),
            chain,
            request_next: config.request_next,
            response_next: config.response_next,
            // Inherited flows live on shard 0; the dispatcher routes
            // responses with no recorded shard there.
            initial_flows: if k == 0 {
                initial_flows.clone()
            } else {
                HashMap::new()
            },
            telemetry: telemetry
                .clone()
                .map(|t| t.with_metrics_processor(metrics_id)),
            clock: config.clock.clone(),
            batch_max: config.batch_max,
            overload: config.overload,
            inbox_capacity: None,
        };
        shards.push(spawn_processor(shard_config, link.clone(), rx));
    }

    let thread_stop = stop.clone();
    let thread_drops = inbox_drops.clone();
    let dispatcher = std::thread::Builder::new()
        .name(format!("adn-shard-dispatch-{addr}"))
        .spawn(move || {
            // Where each in-flight call's request landed, so the response
            // finds the shard holding the NAT flow entry and the dedup
            // caches. Bounded like the shards' own dedup windows: a
            // response arriving after eviction falls back to shard 0, which
            // records it as stale — the same outcome an unsharded processor
            // gives a response outliving its dedup window.
            let mut call_shard: DedupWindow<u64, usize> = DedupWindow::new(PROCESSOR_DEDUP_WINDOW);
            let route = |frame: Frame, call_shard: &mut DedupWindow<u64, usize>| {
                let shard = match wire_format::peek_envelope(&frame.payload) {
                    Ok(env) => match env.kind {
                        MessageKind::Request => {
                            let k = (flow_hash(env.src, env.call_id) % n as u64) as usize;
                            call_shard.insert(env.call_id, k);
                            k
                        }
                        MessageKind::Response => call_shard.get(&env.call_id).copied().unwrap_or(0),
                    },
                    // Undecodable frames go to shard 0, which counts the
                    // decode error exactly as an unsharded processor would.
                    Err(_) => 0,
                };
                // A full bounded inbox sheds the frame like a saturated
                // NIC queue: counted, recovered by the sender's retry.
                match inboxes[shard].try_send(frame) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        thread_drops.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            };
            loop {
                if thread_stop.load(Ordering::Relaxed) {
                    // Drain what is queued so a clean stop loses nothing,
                    // then exit.
                    match frames.try_recv() {
                        Ok(f) => route(f, &mut call_shard),
                        Err(_) => return,
                    }
                    continue;
                }
                match frames.recv_timeout(Duration::from_millis(20)) {
                    Ok(f) => route(f, &mut call_shard),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn shard dispatcher thread");

    ShardedProcessor {
        addr,
        shards,
        metrics_ids,
        stop,
        dispatcher: Some(dispatcher),
        inbox_drops,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    use super::*;
    use crate::processor::NextHop;
    use adn_rpc::engine::{Engine, Verdict};
    use adn_rpc::message::RpcMessage;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema, ServiceSchema};
    use adn_rpc::transport::InProcNetwork;
    use adn_rpc::value::{Value, ValueType};

    fn service() -> Arc<ServiceSchema> {
        let schema = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "Echo",
                vec![MethodDef {
                    id: 1,
                    name: "Echo".into(),
                    request: schema.clone(),
                    response: schema,
                }],
            )
            .unwrap(),
        )
    }

    /// Counts executions into a shared per-shard cell.
    struct ShardCounter(Arc<AtomicU64>);
    impl Engine for ShardCounter {
        fn name(&self) -> &str {
            "shard_counter"
        }
        fn process(&mut self, _msg: &mut RpcMessage) -> Verdict {
            self.0.fetch_add(1, Ordering::Relaxed);
            Verdict::Forward
        }
        fn export_state(&self) -> Vec<u8> {
            Vec::new()
        }
        fn import_state(&mut self, _image: &[u8]) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn flow_hash_is_stable_and_spreads() {
        assert_eq!(flow_hash(1, 7), flow_hash(1, 7));
        let shards: std::collections::HashSet<u64> = (0..64).map(|c| flow_hash(1, c) % 4).collect();
        assert!(shards.len() > 1, "64 calls should span multiple shards");
    }

    #[test]
    fn empty_extra_chains_is_a_plain_processor() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let sharded = spawn_processor_sharded(
            ProcessorConfig::new(5, svc, EngineChain::new(), NextHop::Fixed(2), NextHop::Dst),
            Vec::new(),
            link,
            net.attach(5),
        );
        assert_eq!(sharded.shards(), 1);
        assert!(sharded.dispatcher.is_none(), "no dispatcher thread");
        assert_eq!(sharded.metrics_ids(), &[5]);
        sharded.stop();
    }

    #[test]
    fn sharded_processor_splits_work_and_keeps_request_response_pairing() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let svc2 = svc.clone();
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |request| {
                let m = svc2.method_by_id(request.method_id).unwrap();
                let mut resp = RpcMessage::response_to(request, m.response.clone());
                resp.set("x", request.get("x").unwrap().clone());
                resp
            }),
        );

        let counters: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let chain0 = EngineChain::from_engines(vec![Box::new(ShardCounter(counters[0].clone()))]);
        let chain1 = EngineChain::from_engines(vec![Box::new(ShardCounter(counters[1].clone()))]);
        let sharded = spawn_processor_sharded(
            ProcessorConfig::new(5, svc.clone(), chain0, NextHop::Fixed(2), NextHop::Dst),
            vec![chain1],
            link.clone(),
            net.attach(5),
        );
        assert_eq!(sharded.shards(), 2);

        let client = RpcClient::new(1, link, net.attach(1), svc.clone(), EngineChain::new());
        let calls = 32u64;
        for x in 0..calls {
            let m = svc.method_by_id(1).unwrap();
            let req = RpcMessage::request(0, 1, m.request.clone()).with("x", x);
            let resp = client.call(req, 5).unwrap();
            // Every response makes it home: the flow entry and the
            // response both land on the shard the request hashed to.
            assert_eq!(resp.get("x"), Some(&Value::U64(x)));
        }

        let stats = sharded.stats();
        assert_eq!(stats.requests, calls);
        assert_eq!(stats.responses, calls);
        assert_eq!(stats.forwarded, 2 * calls);
        assert_eq!(stats.stale_responses, 0);
        // Each chain instance ran request + response for its shard's calls.
        let per_shard: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 2 * calls);
        assert!(
            per_shard.iter().all(|&c| c > 0),
            "flow hash left a shard idle: {per_shard:?}"
        );
        assert_eq!(sharded.metrics_ids().len(), 2);
        assert_ne!(sharded.metrics_ids()[0], sharded.metrics_ids()[1]);
        sharded.stop();
    }
}
