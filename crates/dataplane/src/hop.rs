//! Minimal-header hop codec.
//!
//! Paper §4 Q2 / §5.3: when a chain is split across processors, the sender
//! (which holds the structured message) emits a hop frame carrying (a) a
//! compact envelope, (b) **only the header fields the downstream processors
//! read or write**, and (c) the rest of the message as an opaque blob that
//! intermediate hops forward without parsing. The final receiver merges any
//! header-field updates over the decoded blob.
//!
//! Contrast with a sidecar mesh, where every hop re-parses HTTP/2 + HPACK +
//! protobuf for the whole message. The `optimizer_ablation` bench measures
//! both the byte savings and the parse savings this buys.

use std::sync::Arc;

use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::schema::ServiceSchema;
use adn_rpc::value::Value;
use adn_rpc::wire_format;
use adn_wire::codec::{Decoder, Encoder, WireError, WireResult};
use adn_wire::header::{HeaderLayout, TraceContext};

/// A hop frame split into the parts an intermediate processor touches and
/// the part it never parses.
#[derive(Debug, Clone, PartialEq)]
pub struct HopFrame {
    /// Correlation id (mirrors the envelope inside the blob).
    pub call_id: u64,
    /// Request or response.
    pub kind: MessageKind,
    /// Destination (rewritable by routing elements at intermediate hops).
    pub dst: u64,
    /// In-band trace context. Only present when the hop's layout carries
    /// the trace extension ([`HeaderLayout::carries_trace`]); untraced
    /// layouts keep the frame byte-identical to the pre-telemetry format.
    pub trace: Option<TraceContext>,
    /// Header field values, positionally matching the hop's layout.
    pub header: Vec<Value>,
    /// The full message, opaque to intermediate hops.
    pub blob: Vec<u8>,
}

fn encode_trace_slot(enc: &mut Encoder, trace: &Option<TraceContext>) {
    match trace {
        None => enc.put_u8(0),
        Some(ctx) => {
            enc.put_u8(1);
            ctx.encode(enc);
        }
    }
}

fn decode_trace_slot(dec: &mut Decoder<'_>) -> WireResult<Option<TraceContext>> {
    match dec.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext::decode(dec)?)),
        t => Err(WireError::InvalidTag {
            tag: t as u64,
            context: "hop trace presence",
        }),
    }
}

/// Encodes a structured message into hop-frame bytes under `layout`.
pub fn encode_hop(msg: &RpcMessage, layout: &HeaderLayout) -> WireResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64 + msg.size_hint());
    enc.put_varint(msg.call_id);
    enc.put_u8(match msg.kind {
        MessageKind::Request => 0,
        MessageKind::Response => 1,
    });
    enc.put_varint(msg.dst);
    if layout.carries_trace() {
        encode_trace_slot(&mut enc, &msg.trace);
    }
    // Header: the layout's fields, pulled from the message by name.
    let values: Vec<adn_wire::header::HeaderValue> = layout
        .fields()
        .iter()
        .map(|f| {
            msg.get(&f.name)
                .map(Value::to_header_value)
                .ok_or(WireError::Malformed("layout names unknown field"))
        })
        .collect::<WireResult<_>>()?;
    layout.encode(&values, &mut enc)?;
    // Blob: the complete message, decoded only at the final receiver.
    let blob = wire_format::encode_message_to_vec(msg)?;
    enc.put_bytes(&blob);
    Ok(enc.into_bytes())
}

/// Decodes only the hop-visible parts (what an intermediate processor does).
pub fn decode_hop(bytes: &[u8], layout: &HeaderLayout) -> WireResult<HopFrame> {
    let mut dec = Decoder::new(bytes);
    let call_id = dec.get_varint()?;
    let kind = match dec.get_u8()? {
        0 => MessageKind::Request,
        1 => MessageKind::Response,
        t => {
            return Err(WireError::InvalidTag {
                tag: t as u64,
                context: "hop kind",
            })
        }
    };
    let dst = dec.get_varint()?;
    let trace = if layout.carries_trace() {
        decode_trace_slot(&mut dec)?
    } else {
        None
    };
    let header = layout
        .decode(&mut dec)?
        .into_iter()
        .map(Value::from_header_value)
        .collect();
    let blob = dec.get_bytes()?.to_vec();
    if !dec.is_exhausted() {
        return Err(WireError::Malformed("trailing bytes in hop frame"));
    }
    Ok(HopFrame {
        call_id,
        kind,
        dst,
        trace,
        header,
        blob,
    })
}

/// Re-encodes a (possibly modified) hop frame without touching the blob.
pub fn reencode_hop(frame: &HopFrame, layout: &HeaderLayout) -> WireResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(32 + frame.blob.len());
    enc.put_varint(frame.call_id);
    enc.put_u8(match frame.kind {
        MessageKind::Request => 0,
        MessageKind::Response => 1,
    });
    enc.put_varint(frame.dst);
    if layout.carries_trace() {
        encode_trace_slot(&mut enc, &frame.trace);
    }
    let values: Vec<adn_wire::header::HeaderValue> =
        frame.header.iter().map(Value::to_header_value).collect();
    layout.encode(&values, &mut enc)?;
    enc.put_bytes(&frame.blob);
    Ok(enc.into_bytes())
}

/// Final-receiver path: decode the blob and merge authoritative header
/// values over it (intermediate hops may have rewritten header fields).
pub fn finish_hop(
    frame: &HopFrame,
    layout: &HeaderLayout,
    service: &Arc<ServiceSchema>,
) -> WireResult<RpcMessage> {
    let mut msg = wire_format::decode_message_exact(&frame.blob, service)?;
    for (slot, value) in layout.fields().iter().zip(&frame.header) {
        if !msg.set(&slot.name, value.clone()) {
            return Err(WireError::Malformed("header field missing from schema"));
        }
    }
    msg.dst = frame.dst;
    if layout.carries_trace() {
        // The hop-level slot is authoritative whenever the layout carries
        // it — including `None`: an intermediate hop that cleared the
        // context (budget exhaustion) must not have it resurrected by the
        // blob's stale copy.
        msg.trace = frame.trace;
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::value::ValueType;
    use adn_wire::header::HeaderType;

    fn service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "S",
                vec![MethodDef {
                    id: 1,
                    name: "M".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    fn lb_layout() -> HeaderLayout {
        let mut l = HeaderLayout::new();
        l.push(0, "object_id", HeaderType::U64);
        l
    }

    fn sample_msg(svc: &Arc<ServiceSchema>) -> RpcMessage {
        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(9, 1, m.request.clone())
            .with("object_id", 42u64)
            .with("username", "alice")
            .with("payload", vec![7u8; 64]);
        msg.src = 1;
        msg.dst = 2;
        msg
    }

    #[test]
    fn hop_roundtrip_without_modification() {
        let svc = service();
        let layout = lb_layout();
        let msg = sample_msg(&svc);
        let bytes = encode_hop(&msg, &layout).unwrap();
        let frame = decode_hop(&bytes, &layout).unwrap();
        assert_eq!(frame.call_id, 9);
        assert_eq!(frame.header, vec![Value::U64(42)]);
        let finished = finish_hop(&frame, &layout, &svc).unwrap();
        assert_eq!(finished.fields, msg.fields);
    }

    #[test]
    fn intermediate_rewrites_merge_at_receiver() {
        let svc = service();
        let layout = lb_layout();
        let msg = sample_msg(&svc);
        let bytes = encode_hop(&msg, &layout).unwrap();
        let mut frame = decode_hop(&bytes, &layout).unwrap();
        // An intermediate hop rewrites the routed field and the dst.
        frame.header[0] = Value::U64(1000);
        frame.dst = 77;
        let bytes2 = reencode_hop(&frame, &layout).unwrap();
        let frame2 = decode_hop(&bytes2, &layout).unwrap();
        let finished = finish_hop(&frame2, &layout, &svc).unwrap();
        assert_eq!(finished.get("object_id"), Some(&Value::U64(1000)));
        assert_eq!(finished.dst, 77);
        // Untouched fields come from the blob.
        assert_eq!(finished.get("username"), Some(&Value::Str("alice".into())));
    }

    #[test]
    fn hop_header_is_tiny_relative_to_blob() {
        let svc = service();
        let layout = lb_layout();
        let mut msg = sample_msg(&svc);
        msg.set("payload", Value::Bytes(vec![1u8; 4096]));
        let bytes = encode_hop(&msg, &layout).unwrap();
        let frame = decode_hop(&bytes, &layout).unwrap();
        // Envelope + header is everything except the blob and its prefix.
        let overhead = bytes.len() - frame.blob.len();
        assert!(overhead < 16, "hop overhead {overhead} bytes");
    }

    #[test]
    fn truncated_hop_frames_error() {
        let svc = service();
        let layout = lb_layout();
        let bytes = encode_hop(&sample_msg(&svc), &layout).unwrap();
        for cut in 0..bytes.len().min(24) {
            assert!(decode_hop(&bytes[..cut], &layout).is_err());
        }
    }

    #[test]
    fn traced_layout_carries_context_and_costs_one_byte_when_off() {
        let svc = service();
        let traced = lb_layout().with_trace();
        let mut msg = sample_msg(&svc);

        // Sampling off: one presence byte of overhead, no context.
        let off_bytes = encode_hop(&msg, &traced).unwrap();
        let plain_bytes = encode_hop(&msg, &lb_layout()).unwrap();
        assert_eq!(off_bytes.len(), plain_bytes.len() + 1);
        assert_eq!(decode_hop(&off_bytes, &traced).unwrap().trace, None);

        // Sampling on: the context survives hop decode, rewrite, reencode,
        // and finish.
        msg.trace = Some(TraceContext::root(0xabc));
        let bytes = encode_hop(&msg, &traced).unwrap();
        let mut frame = decode_hop(&bytes, &traced).unwrap();
        assert_eq!(frame.trace, Some(TraceContext::root(0xabc)));
        frame.trace = Some(frame.trace.unwrap().child_from(50));
        let bytes2 = reencode_hop(&frame, &traced).unwrap();
        let frame2 = decode_hop(&bytes2, &traced).unwrap();
        let finished = finish_hop(&frame2, &traced, &svc).unwrap();
        let ctx = finished.trace.unwrap();
        assert_eq!(ctx.trace_id, 0xabc);
        assert_eq!(ctx.parent_span, TraceContext::root(0xabc).span_at(50));
    }

    #[test]
    fn traced_layout_cleared_context_stays_cleared() {
        let svc = service();
        let traced = lb_layout().with_trace();
        let mut msg = sample_msg(&svc);
        // The blob is encoded while the context is live...
        msg.trace = Some(TraceContext::root(0xdead));
        let bytes = encode_hop(&msg, &traced).unwrap();
        // ...then an intermediate hop clears it (budget exhausted).
        let mut frame = decode_hop(&bytes, &traced).unwrap();
        frame.trace = None;
        let bytes2 = reencode_hop(&frame, &traced).unwrap();
        let frame2 = decode_hop(&bytes2, &traced).unwrap();
        let finished = finish_hop(&frame2, &traced, &svc).unwrap();
        assert_eq!(
            finished.trace, None,
            "blob's stale context must not resurrect a cleared hop slot"
        );

        // An untraced layout still defers to the blob: its frames have no
        // trace slot at all.
        let plain = lb_layout();
        let bytes = encode_hop(&msg, &plain).unwrap();
        let frame = decode_hop(&bytes, &plain).unwrap();
        let finished = finish_hop(&frame, &plain, &svc).unwrap();
        assert_eq!(finished.trace, Some(TraceContext::root(0xdead)));
    }

    #[test]
    fn empty_layout_means_envelope_only() {
        let svc = service();
        let layout = HeaderLayout::new();
        let msg = sample_msg(&svc);
        let bytes = encode_hop(&msg, &layout).unwrap();
        let frame = decode_hop(&bytes, &layout).unwrap();
        assert!(frame.header.is_empty());
        let finished = finish_hop(&frame, &layout, &svc).unwrap();
        assert_eq!(finished.fields, msg.fields);
    }
}
