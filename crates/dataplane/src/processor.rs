//! Standalone ADN processor endpoints.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};

use adn_rpc::engine::{EngineChain, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, Frame, Link};
use adn_rpc::wire_format;

/// Where a processor forwards messages after processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Use the message's own destination (possibly rewritten by a ROUTE
    /// element in the chain).
    Dst,
    /// Forward to a fixed endpoint (the next processor in a split chain).
    Fixed(EndpointAddr),
}

impl NextHop {
    fn resolve(self, msg_dst: EndpointAddr) -> EndpointAddr {
        match self {
            NextHop::Dst => msg_dst,
            NextHop::Fixed(addr) => addr,
        }
    }
}

/// Cumulative processor counters.
#[derive(Debug, Default)]
pub struct ProcessorStats {
    pub requests: AtomicU64,
    pub responses: AtomicU64,
    pub forwarded: AtomicU64,
    pub dropped: AtomicU64,
    pub aborted: AtomicU64,
    pub decode_errors: AtomicU64,
}

/// Point-in-time snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub responses: u64,
    pub forwarded: u64,
    pub dropped: u64,
    pub aborted: u64,
    pub decode_errors: u64,
}

impl ProcessorStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// Control messages to a running processor.
enum Ctl {
    /// Stop pulling frames; queued frames accumulate (lossless pause).
    Pause(Sender<()>),
    /// Resume pulling frames.
    Resume,
    /// Export the chain's state images.
    ExportState(Sender<Vec<Vec<u8>>>),
    /// Import state images into the chain.
    ImportState(Vec<Vec<u8>>, Sender<Result<(), String>>),
    /// Replace the engine chain (hot update). Replies with the old chain's
    /// exported state.
    InstallChain(EngineChain, Sender<Vec<Vec<u8>>>),
    /// Re-send every currently queued frame onto the link addressed to this
    /// processor's own address (used after the fabric was re-pointed to a
    /// successor), then reply with the count.
    Drain(Sender<usize>),
    /// Exit the serve loop.
    Stop,
    /// Finish the queued frames, then exit the serve loop.
    StopWhenIdle,
}

/// Configuration for [`spawn_processor`].
pub struct ProcessorConfig {
    /// Flat address this processor serves.
    pub addr: EndpointAddr,
    /// Service schema for decoding.
    pub service: Arc<ServiceSchema>,
    /// The compiled chain.
    pub chain: EngineChain,
    /// Where requests go after processing.
    pub request_next: NextHop,
    /// Where responses go after processing (usually `Dst` — the flow table
    /// already restored the original requester).
    pub response_next: NextHop,
    /// NAT flow entries inherited from a predecessor (live migration moves
    /// in-flight flows along with element state).
    pub initial_flows: HashMap<u64, EndpointAddr>,
}

impl ProcessorConfig {
    /// Convenience constructor with an empty flow table.
    pub fn new(
        addr: EndpointAddr,
        service: Arc<ServiceSchema>,
        chain: EngineChain,
        request_next: NextHop,
        response_next: NextHop,
    ) -> Self {
        Self {
            addr,
            service,
            chain,
            request_next,
            response_next,
            initial_flows: HashMap::new(),
        }
    }
}

/// Handle to a running processor.
pub struct ProcessorHandle {
    addr: EndpointAddr,
    ctl: Sender<Ctl>,
    stats: Arc<ProcessorStats>,
    flows: Arc<parking_lot::Mutex<HashMap<u64, EndpointAddr>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ProcessorHandle {
    /// The processor's flat address.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Pauses frame processing (queued frames are retained).
    pub fn pause(&self) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::Pause(tx)).is_ok() {
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
    }

    /// Resumes frame processing.
    pub fn resume(&self) {
        let _ = self.ctl.send(Ctl::Resume);
    }

    /// Exports per-engine state images.
    pub fn export_state(&self) -> Vec<Vec<u8>> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::ExportState(tx)).is_err() {
            return Vec::new();
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default()
    }

    /// Imports per-engine state images.
    pub fn import_state(&self, images: Vec<Vec<u8>>) -> Result<(), String> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.ctl
            .send(Ctl::ImportState(images, tx))
            .map_err(|_| "processor stopped".to_owned())?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(|_| "processor unresponsive".to_owned())?
    }

    /// Hot-swaps the engine chain, returning the old chain's state images.
    pub fn install_chain(&self, chain: EngineChain) -> Vec<Vec<u8>> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::InstallChain(chain, tx)).is_err() {
            return Vec::new();
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default()
    }

    /// Snapshot of the NAT flow table (in-flight call id → requester).
    /// Live migration hands this to the successor so in-flight responses
    /// still find their way back.
    pub fn export_flows(&self) -> HashMap<u64, EndpointAddr> {
        self.flows.lock().clone()
    }

    /// Re-emits queued frames to this processor's address (after the fabric
    /// has been re-pointed at a successor). Returns frames drained.
    pub fn drain(&self) -> usize {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::Drain(tx)).is_err() {
            return 0;
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or(0)
    }

    /// Stops the processor thread.
    pub fn stop(mut self) {
        let _ = self.ctl.send(Ctl::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Asks the processor to finish its queued frames and then exit, and
    /// waits for it (make-before-break retirement).
    pub fn stop_when_idle(mut self) {
        let _ = self.ctl.send(Ctl::StopWhenIdle);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ProcessorHandle {
    fn drop(&mut self) {
        let _ = self.ctl.send(Ctl::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns a processor thread serving `config.addr` with frames from
/// `frames` over `link`.
pub fn spawn_processor(
    config: ProcessorConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
) -> ProcessorHandle {
    let (ctl_tx, ctl_rx) = crossbeam::channel::unbounded();
    let stats = Arc::new(ProcessorStats::default());
    let thread_stats = stats.clone();
    let flows = Arc::new(parking_lot::Mutex::new(config.initial_flows.clone()));
    let thread_flows = flows.clone();
    let addr = config.addr;

    let join = std::thread::Builder::new()
        .name(format!("adn-processor-{addr}"))
        .spawn(move || {
            let ProcessorConfig {
                addr,
                service,
                mut chain,
                request_next,
                response_next,
                initial_flows: _,
            } = config;
            let mut paused = false;
            let mut stopping = false;

            loop {
                // Drain control messages first.
                while let Ok(ctl) = ctl_rx.try_recv() {
                    match ctl {
                        Ctl::Pause(reply) => {
                            paused = true;
                            let _ = reply.send(());
                        }
                        Ctl::Resume => paused = false,
                        Ctl::ExportState(reply) => {
                            let _ = reply.send(chain.export_states());
                        }
                        Ctl::ImportState(images, reply) => {
                            let _ = reply.send(chain.import_states(&images));
                        }
                        Ctl::InstallChain(new_chain, reply) => {
                            let old = std::mem::replace(&mut chain, new_chain);
                            let _ = reply.send(old.export_states());
                        }
                        Ctl::Drain(reply) => {
                            let mut count = 0;
                            while let Ok(frame) = frames.try_recv() {
                                // Same dst: the fabric now delivers to the
                                // successor attached at this address.
                                if link.send(frame).is_ok() {
                                    count += 1;
                                }
                            }
                            let _ = reply.send(count);
                        }
                        Ctl::Stop => return,
                        Ctl::StopWhenIdle => stopping = true,
                    }
                }
                if paused {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let frame = if stopping {
                    // Graceful retirement: drain what is queued, then exit.
                    match frames.try_recv() {
                        Ok(f) => f,
                        Err(_) => return,
                    }
                } else {
                    match frames.recv_timeout(Duration::from_millis(20)) {
                        Ok(f) => f,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                };
                let mut msg = match wire_format::decode_message_exact(&frame.payload, &service) {
                    Ok(m) => m,
                    Err(_) => {
                        thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };

                match msg.kind {
                    MessageKind::Request => {
                        thread_stats.requests.fetch_add(1, Ordering::Relaxed);
                        let orig_src = msg.src;
                        match chain.process(&mut msg) {
                            Verdict::Forward => {
                                // NAT in: responses will come back to us.
                                thread_flows.lock().insert(msg.call_id, orig_src);
                                msg.src = addr;
                                let to = request_next.resolve(msg.dst);
                                forward(&*link, addr, to, &msg, &thread_stats);
                            }
                            Verdict::Drop => {
                                thread_stats.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Abort { code, message } => {
                                thread_stats.aborted.fetch_add(1, Ordering::Relaxed);
                                // Reflect an aborted response to the caller.
                                if let Some(method) = service.method_by_id(msg.method_id) {
                                    let mut resp =
                                        RpcMessage::response_to(&msg, method.response.clone());
                                    resp.abort(code, message);
                                    resp.src = addr;
                                    resp.dst = orig_src;
                                    forward(&*link, addr, orig_src, &resp, &thread_stats);
                                }
                            }
                        }
                    }
                    MessageKind::Response => {
                        thread_stats.responses.fetch_add(1, Ordering::Relaxed);
                        // NAT out: restore the original requester.
                        if let Some(orig_src) = thread_flows.lock().remove(&msg.call_id) {
                            msg.dst = orig_src;
                        }
                        match chain.process(&mut msg) {
                            Verdict::Forward => {
                                msg.src = addr;
                                let to = response_next.resolve(msg.dst);
                                forward(&*link, addr, to, &msg, &thread_stats);
                            }
                            Verdict::Drop => {
                                thread_stats.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Abort { code, message } => {
                                thread_stats.aborted.fetch_add(1, Ordering::Relaxed);
                                msg.abort(code, message);
                                msg.src = addr;
                                let to = msg.dst;
                                forward(&*link, addr, to, &msg, &thread_stats);
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn processor thread");

    ProcessorHandle {
        addr,
        ctl: ctl_tx,
        stats,
        flows,
        join: Some(join),
    }
}

fn forward(
    link: &dyn Link,
    src: EndpointAddr,
    to: EndpointAddr,
    msg: &RpcMessage,
    stats: &ProcessorStats,
) {
    if let Ok(payload) = wire_format::encode_message_to_vec(msg) {
        if link
            .send(Frame {
                src,
                dst: to,
                payload,
            })
            .is_ok()
        {
            stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_rpc::engine::Engine;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::transport::InProcNetwork;
    use adn_rpc::value::{Value, ValueType};
    use adn_rpc::RpcError;

    fn service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("who", ValueType::Str)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("who", ValueType::Str)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "Echo",
                vec![MethodDef {
                    id: 1,
                    name: "Echo".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    struct CountAndStamp {
        count: u64,
    }
    impl Engine for CountAndStamp {
        fn name(&self) -> &str {
            "count_stamp"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            self.count += 1;
            if msg.kind == MessageKind::Response {
                msg.set("who", Value::Str("via-processor".into()));
            }
            Verdict::Forward
        }
        fn export_state(&self) -> Vec<u8> {
            self.count.to_le_bytes().to_vec()
        }
        fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
            self.count = u64::from_le_bytes(image.try_into().map_err(|_| "bad image")?);
            Ok(())
        }
    }

    struct DenyOdd;
    impl Engine for DenyOdd {
        fn name(&self) -> &str {
            "deny_odd"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                if let Some(Value::U64(x)) = msg.get("x") {
                    if x % 2 == 1 {
                        return Verdict::Abort {
                            code: 7,
                            message: "odd".into(),
                        };
                    }
                }
            }
            Verdict::Forward
        }
    }

    /// client(1) → processor(5) → server(2)
    fn setup(
        chain: EngineChain,
    ) -> (
        Arc<RpcClient>,
        ProcessorHandle,
        adn_rpc::runtime::ServerHandle,
    ) {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();

        let server_frames = net.attach(2);
        let svc2 = svc.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            server_frames,
            Box::new(move |req| {
                let m = svc2.method_by_id(req.method_id).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("x", req.get("x").unwrap().clone());
                resp.set("who", Value::Str("server".into()));
                resp
            }),
        );

        let proc_frames = net.attach(5);
        let processor = spawn_processor(
            ProcessorConfig {
                addr: 5,
                service: svc.clone(),
                chain,
                request_next: NextHop::Fixed(2),
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
            },
            link.clone(),
            proc_frames,
        );

        let client_frames = net.attach(1);
        let client = RpcClient::new(1, link, client_frames, svc, EngineChain::new());
        (client, processor, server)
    }

    fn req(client: &RpcClient, x: u64) -> RpcMessage {
        let m = client.service().method_by_id(1).unwrap();
        RpcMessage::request(0, 1, m.request.clone())
            .with("x", x)
            .with("who", "client")
    }

    #[test]
    fn requests_and_responses_traverse_the_processor() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        // Client addresses the processor (the controller's routing choice).
        let resp = client.call(req(&client, 4), 5).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(4)));
        // The response chain ran on the processor (NAT return path).
        assert_eq!(resp.get("who"), Some(&Value::Str("via-processor".into())));
        let stats = processor.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.forwarded, 2);
    }

    #[test]
    fn processor_abort_reflects_to_client() {
        let chain = EngineChain::from_engines(vec![Box::new(DenyOdd)]);
        let (client, processor, _server) = setup(chain);
        assert!(client.call(req(&client, 2), 5).is_ok());
        let err = client.call(req(&client, 3), 5).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
        assert_eq!(processor.stats().aborted, 1);
    }

    #[test]
    fn state_export_import_across_processors() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        for i in 0..3 {
            client.call(req(&client, i * 2), 5).unwrap();
        }
        processor.pause();
        let images = processor.export_state();
        // 3 requests + 3 responses = 6 engine invocations.
        assert_eq!(images[0], 6u64.to_le_bytes().to_vec());
        processor.resume();

        // Import shifted state and verify.
        processor
            .import_state(vec![100u64.to_le_bytes().to_vec()])
            .unwrap();
        assert_eq!(processor.export_state()[0], 100u64.to_le_bytes().to_vec());
    }

    #[test]
    fn hot_chain_swap_returns_old_state() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        client.call(req(&client, 0), 5).unwrap();
        let old_state =
            processor.install_chain(EngineChain::from_engines(vec![Box::new(CountAndStamp {
                count: 0,
            })]));
        assert_eq!(old_state[0], 2u64.to_le_bytes().to_vec());
        // New chain starts fresh and still works.
        client.call(req(&client, 2), 5).unwrap();
        assert_eq!(processor.export_state()[0], 2u64.to_le_bytes().to_vec());
    }

    #[test]
    fn pause_is_lossless() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        processor.pause();
        // Send while paused: the call completes only after resume.
        let pending = client.send_call(req(&client, 8), 5).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        processor.resume();
        let resp = pending.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(8)));
    }
}
