//! Standalone ADN processor endpoints.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use adn_rpc::clock::Clock;
use adn_rpc::engine::{EngineChain, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage, RpcStatus};
use adn_rpc::retry::DedupWindow;
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, Frame, Link};
use adn_rpc::wire_format;
use adn_telemetry::{ElementMetrics, HopTelemetry, Span, TraceContext};
use adn_wire::buffer::BufferPool;
use adn_wire::header::Priority;

/// Entries retained in the processor's request/response dedup caches.
pub(crate) const PROCESSOR_DEDUP_WINDOW: usize = 4096;

/// Default ceiling on frames pulled per serve-loop iteration. One backlog
/// read, one control-drain, one beat, and one batched send amortize over up
/// to this many frames.
pub const DEFAULT_BATCH_MAX: usize = 32;

/// Why a control-plane query to a processor failed. Distinguishes a
/// processor whose serve loop has exited from one that is alive but wedged —
/// callers must not mistake either for an empty answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlError {
    /// The serve loop has exited (stopped or crashed); the control channel
    /// is closed.
    Stopped,
    /// The processor did not answer within the control deadline (wedged or
    /// overloaded).
    Unresponsive,
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Stopped => write!(f, "processor stopped"),
            CtlError::Unresponsive => write!(f, "processor unresponsive"),
        }
    }
}

impl std::error::Error for CtlError {}

fn ctl_recv_err(e: RecvTimeoutError) -> CtlError {
    match e {
        RecvTimeoutError::Timeout => CtlError::Unresponsive,
        RecvTimeoutError::Disconnected => CtlError::Stopped,
    }
}

/// Admission-control tuning for a processor under overload. The default is
/// fully permissive — no shedding, expired-frame dropping on — which leaves
/// undeadlined traffic (every message in the pre-extension format)
/// completely untouched: the batch=1 golden sim log depends on that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Inbound backlog (frames) above which the processor starts shedding
    /// requests lowest-priority-first. `0` disables shedding. The ladder:
    /// above `shed_high_water` only [`Priority::Sheddable`] is refused;
    /// above `2×` Normal goes too; above `4×` everything below Critical.
    pub shed_high_water: usize,
    /// Whether requests whose in-band deadline budget is exhausted are
    /// dropped before the chain runs (counted in
    /// [`StatsSnapshot::expired_drops`], never silently).
    pub drop_expired: bool,
    /// Brownout: refuse every [`Priority::Sheddable`] request regardless of
    /// backlog, conserving capacity for the classes above it. The per-app
    /// fail-open knob the controller flips when a service degrades.
    pub brownout: bool,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            shed_high_water: 0,
            drop_expired: true,
            brownout: false,
        }
    }
}

impl OverloadPolicy {
    /// The lowest priority class still admitted at `backlog` queued frames.
    /// Everything strictly below the returned class is shed.
    pub fn admission_floor(&self, backlog: usize) -> Priority {
        if self.shed_high_water == 0 {
            return if self.brownout {
                Priority::Normal
            } else {
                Priority::Sheddable
            };
        }
        let hw = self.shed_high_water;
        let base = if backlog > hw.saturating_mul(4) {
            Priority::Critical
        } else if backlog > hw.saturating_mul(2) {
            Priority::Important
        } else if backlog > hw {
            Priority::Normal
        } else {
            Priority::Sheddable
        };
        if self.brownout && base == Priority::Sheddable {
            Priority::Normal
        } else {
            base
        }
    }
}

/// Where a processor forwards messages after processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Use the message's own destination (possibly rewritten by a ROUTE
    /// element in the chain).
    Dst,
    /// Forward to a fixed endpoint (the next processor in a split chain).
    Fixed(EndpointAddr),
}

impl NextHop {
    fn resolve(self, msg_dst: EndpointAddr) -> EndpointAddr {
        match self {
            NextHop::Dst => msg_dst,
            NextHop::Fixed(addr) => addr,
        }
    }
}

/// Cumulative processor counters.
#[derive(Debug, Default)]
pub struct ProcessorStats {
    pub requests: AtomicU64,
    pub responses: AtomicU64,
    pub forwarded: AtomicU64,
    pub dropped: AtomicU64,
    pub aborted: AtomicU64,
    pub decode_errors: AtomicU64,
    pub dedup_hits: AtomicU64,
    pub stale_responses: AtomicU64,
    pub queue_depth: AtomicU64,
    pub drain_drops: AtomicU64,
    pub expired_drops: AtomicU64,
    pub shed: AtomicU64,
}

/// Point-in-time snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub responses: u64,
    pub forwarded: u64,
    pub dropped: u64,
    pub aborted: u64,
    pub decode_errors: u64,
    /// Retransmitted frames answered from the dedup caches without
    /// re-running the chain.
    pub dedup_hits: u64,
    /// Responses with no flow entry and no cached reply (dropped: their
    /// NAT'd destination would be this processor itself).
    pub stale_responses: u64,
    /// Frames waiting in the inbound queue when the serve loop last checked
    /// — the congestion signal the controller's load-aware placement reads.
    pub queue_depth: u64,
    /// Frames lost during a [`ProcessorHandle::drain`] because the link
    /// rejected them even after a retry. Zero-loss reconfiguration demands
    /// this stays zero; the sim's loss invariant reads it.
    pub drain_drops: u64,
    /// Requests dropped before the chain because their in-band deadline
    /// budget was already exhausted — the caller gave up; executing them
    /// would be pure waste under overload.
    pub expired_drops: u64,
    /// Requests refused with a fast-fail [`adn_rpc::message::RpcStatus::Shed`]
    /// reply, by admission control or by a chain shed verdict.
    pub shed: u64,
}

impl ProcessorStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            stale_responses: self.stale_responses.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            drain_drops: self.drain_drops.load(Ordering::Relaxed),
            expired_drops: self.expired_drops.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Element-wise sum, used to aggregate per-shard snapshots into one
    /// logical processor view. `queue_depth` also sums: it is the total
    /// backlog across shard inboxes.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests + other.requests,
            responses: self.responses + other.responses,
            forwarded: self.forwarded + other.forwarded,
            dropped: self.dropped + other.dropped,
            aborted: self.aborted + other.aborted,
            decode_errors: self.decode_errors + other.decode_errors,
            dedup_hits: self.dedup_hits + other.dedup_hits,
            stale_responses: self.stale_responses + other.stale_responses,
            queue_depth: self.queue_depth + other.queue_depth,
            drain_drops: self.drain_drops + other.drain_drops,
            expired_drops: self.expired_drops + other.expired_drops,
            shed: self.shed + other.shed,
        }
    }
}

/// Control messages to a running processor.
enum Ctl {
    /// Stop pulling frames; queued frames accumulate (lossless pause).
    Pause(Sender<()>),
    /// Resume pulling frames.
    Resume,
    /// Export the chain's state images.
    ExportState(Sender<Vec<Vec<u8>>>),
    /// Import state images into the chain.
    ImportState(Vec<Vec<u8>>, Sender<Result<(), String>>),
    /// Replace the engine chain (hot update). Replies with the old chain's
    /// exported state.
    InstallChain(EngineChain, Sender<Vec<Vec<u8>>>),
    /// Re-send every currently queued frame onto the link addressed to this
    /// processor's own address (used after the fabric was re-pointed to a
    /// successor), then reply with the count.
    Drain(Sender<usize>),
    /// Exit the serve loop.
    Stop,
    /// Finish the queued frames, then exit the serve loop.
    StopWhenIdle,
    /// Re-point where requests are forwarded after processing (controller
    /// re-routing during failover).
    SetRequestNext(NextHop),
    /// Replace the overload/admission policy (controller brownout and
    /// shedding knobs). Acknowledged so the caller knows admission
    /// decisions after the call use the new policy.
    SetOverload(OverloadPolicy, Sender<()>),
    /// Simulate a hard crash: stop processing frames and heartbeating, but
    /// keep the frame receiver open so traffic silently blackholes (a dead
    /// host, not a closed socket). Only `Stop` ends the crashed thread.
    Crash,
}

/// Configuration for [`spawn_processor`].
pub struct ProcessorConfig {
    /// Flat address this processor serves.
    pub addr: EndpointAddr,
    /// Service schema for decoding.
    pub service: Arc<ServiceSchema>,
    /// The compiled chain.
    pub chain: EngineChain,
    /// Where requests go after processing.
    pub request_next: NextHop,
    /// Where responses go after processing (usually `Dst` — the flow table
    /// already restored the original requester).
    pub response_next: NextHop,
    /// NAT flow entries inherited from a predecessor (live migration moves
    /// in-flight flows along with element state).
    pub initial_flows: HashMap<u64, EndpointAddr>,
    /// Observability wiring. `None` keeps the serve loop on the untimed
    /// path; `Some` costs one sampling branch per message until a message
    /// is actually sampled.
    pub telemetry: Option<HopTelemetry>,
    /// Time source for the liveness heartbeat. `None` uses the wall clock;
    /// deterministic tests share a virtual clock between processors and the
    /// controller so heartbeat ages follow controlled jumps.
    pub clock: Option<Arc<dyn Clock>>,
    /// Ceiling on frames pulled per serve-loop iteration
    /// ([`DEFAULT_BATCH_MAX`] unless overridden). `1` restores strict
    /// frame-at-a-time behavior.
    pub batch_max: usize,
    /// Admission-control tuning (shedding high-water mark, expired-frame
    /// dropping, brownout). The default touches nothing.
    pub overload: OverloadPolicy,
    /// Capacity of each per-shard inbox when this config is sharded via
    /// [`crate::shard::spawn_processor_sharded`] (`None` = unbounded, the
    /// historical behavior). A full inbox drops the frame, counted in
    /// [`crate::shard::ShardedProcessor::inbox_drops`].
    pub inbox_capacity: Option<usize>,
}

impl ProcessorConfig {
    /// Convenience constructor with an empty flow table.
    pub fn new(
        addr: EndpointAddr,
        service: Arc<ServiceSchema>,
        chain: EngineChain,
        request_next: NextHop,
        response_next: NextHop,
    ) -> Self {
        Self {
            addr,
            service,
            chain,
            request_next,
            response_next,
            initial_flows: HashMap::new(),
            telemetry: None,
            clock: None,
            batch_max: DEFAULT_BATCH_MAX,
            overload: OverloadPolicy::default(),
            inbox_capacity: None,
        }
    }

    /// Attaches observability wiring (builder style).
    pub fn with_telemetry(mut self, telemetry: HopTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Substitutes the heartbeat time source (builder style).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Overrides the per-iteration batch ceiling (builder style). Clamped
    /// to at least 1.
    pub fn with_batch(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Sets the overload/admission policy (builder style).
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Bounds the per-shard inboxes (builder style; sharded spawns only).
    pub fn with_inbox_capacity(mut self, capacity: usize) -> Self {
        self.inbox_capacity = Some(capacity.max(1));
        self
    }
}

/// Per-processor observation state: the chain's metric series (rebuilt on
/// hot chain swaps), the scratch stage-timing buffer, and the span sink.
struct HopObserver {
    telemetry: HopTelemetry,
    addr: EndpointAddr,
    /// Engine names in chain order, cloned once per chain install.
    names: Vec<String>,
    /// Registry series positionally matching `names`.
    series: Vec<Arc<ElementMetrics>>,
    /// Scratch buffer for [`EngineChain::process_timed`].
    stage_ns: Vec<u64>,
}

impl HopObserver {
    fn new(telemetry: HopTelemetry, addr: EndpointAddr, chain: &EngineChain) -> Self {
        let mut obs = Self {
            telemetry,
            addr,
            names: Vec::new(),
            series: Vec::new(),
            stage_ns: Vec::new(),
        };
        obs.rebind(chain);
        obs
    }

    /// Re-resolves the metric series after a chain install. Series register
    /// under the telemetry's metrics id when set (distinct per shard of a
    /// sharded processor), else under the hop address.
    fn rebind(&mut self, chain: &EngineChain) {
        let metrics_id = self.telemetry.metrics_processor.unwrap_or(self.addr);
        self.names = chain.names().into_iter().map(str::to_owned).collect();
        self.series = self
            .names
            .iter()
            .map(|n| {
                self.telemetry
                    .registry
                    .element(&self.telemetry.app, n, metrics_id)
            })
            .collect();
    }

    /// Whether this message takes the timed path: in-band context wins (so
    /// every hop of a sampled call agrees), otherwise the local sampler
    /// decides by call id.
    fn sampled(&self, trace: Option<&TraceContext>, call_id: u64) -> bool {
        trace.is_some() || self.telemetry.sampler.decide(call_id)
    }

    /// Records the stage timings `process_timed` left in `stage_ns`. Only
    /// the last executed stage can have produced a non-forward verdict.
    fn record_stages(&self, verdict: &Verdict) {
        let ran = self.stage_ns.len();
        for (i, (series, &ns)) in self.series.iter().zip(&self.stage_ns).enumerate() {
            let forwarded = verdict.is_forward() || i + 1 < ran;
            series.observe(ns, forwarded);
        }
    }

    /// Emits a span for a traced hop, honoring the context's budget flag.
    fn emit_span(&self, ctx: &TraceContext, call_id: u64, queue_ns: u64, serialize_ns: u64) {
        if !ctx.budget {
            return;
        }
        self.telemetry.spans.push(Span {
            trace_id: ctx.trace_id,
            span_id: ctx.span_at(self.addr),
            parent_span: ctx.parent_span,
            call_id,
            processor: self.addr,
            queue_ns,
            stages: self
                .names
                .iter()
                .zip(&self.stage_ns)
                .map(|(n, &ns)| (n.clone(), ns))
                .collect(),
            serialize_ns,
        });
    }
}

/// Handle to a running processor.
pub struct ProcessorHandle {
    addr: EndpointAddr,
    ctl: Sender<Ctl>,
    stats: Arc<ProcessorStats>,
    flows: Arc<parking_lot::Mutex<HashMap<u64, EndpointAddr>>>,
    /// Nanoseconds on `clock` of the serve loop's last liveness beat.
    beat: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ProcessorHandle {
    /// The processor's flat address.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Time since the serve loop last proved liveness. The loop beats every
    /// iteration (including while paused), so a large age means the
    /// processor is dead or wedged — the controller's failure detector
    /// compares this against its heartbeat timeout.
    pub fn heartbeat_age(&self) -> Duration {
        let last = Duration::from_nanos(self.beat.load(Ordering::Relaxed));
        self.clock.now().saturating_sub(last)
    }

    /// The time source this processor's heartbeat runs on. Reconfiguration
    /// hands it to successors so a migrated processor keeps the same
    /// (possibly virtual) clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// Simulates a hard crash for failure testing: frames blackhole,
    /// heartbeats stop, control queries fail with [`CtlError::Stopped`].
    /// The thread itself stays joinable (drop/stop still work).
    pub fn kill(&self) {
        let _ = self.ctl.send(Ctl::Crash);
    }

    /// Re-points where requests are forwarded after processing (controller
    /// re-routing during failover).
    pub fn set_request_next(&self, next: NextHop) {
        let _ = self.ctl.send(Ctl::SetRequestNext(next));
    }

    /// Replaces the overload/admission policy (controller brownout and
    /// shedding knobs). Blocks (bounded) until the serve loop applies it:
    /// frames admitted after this returns saw the new policy, so a
    /// brownout flip cannot race the next request.
    pub fn set_overload(&self, overload: OverloadPolicy) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::SetOverload(overload, tx)).is_ok() {
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
    }

    /// Pauses frame processing (queued frames are retained).
    pub fn pause(&self) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self.ctl.send(Ctl::Pause(tx)).is_ok() {
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
    }

    /// Resumes frame processing.
    pub fn resume(&self) {
        let _ = self.ctl.send(Ctl::Resume);
    }

    /// Exports per-engine state images. Fails explicitly if the processor
    /// is stopped or unresponsive — an empty answer is a real (stateless)
    /// export, never a masked hang.
    pub fn export_state(&self) -> Result<Vec<Vec<u8>>, CtlError> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.ctl
            .send(Ctl::ExportState(tx))
            .map_err(|_| CtlError::Stopped)?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(ctl_recv_err)
    }

    /// Imports per-engine state images.
    pub fn import_state(&self, images: Vec<Vec<u8>>) -> Result<(), String> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.ctl
            .send(Ctl::ImportState(images, tx))
            .map_err(|_| CtlError::Stopped.to_string())?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(|e| ctl_recv_err(e).to_string())?
    }

    /// Hot-swaps the engine chain, returning the old chain's state images.
    pub fn install_chain(&self, chain: EngineChain) -> Result<Vec<Vec<u8>>, CtlError> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.ctl
            .send(Ctl::InstallChain(chain, tx))
            .map_err(|_| CtlError::Stopped)?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(ctl_recv_err)
    }

    /// Snapshot of the NAT flow table (in-flight call id → requester).
    /// Live migration hands this to the successor so in-flight responses
    /// still find their way back.
    pub fn export_flows(&self) -> HashMap<u64, EndpointAddr> {
        self.flows.lock().clone()
    }

    /// Re-emits queued frames to this processor's address (after the fabric
    /// has been re-pointed at a successor). Returns frames drained, or an
    /// explicit error if the processor is stopped or unresponsive (a hung
    /// processor must not look like an empty queue).
    pub fn drain(&self) -> Result<usize, CtlError> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.ctl
            .send(Ctl::Drain(tx))
            .map_err(|_| CtlError::Stopped)?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(ctl_recv_err)
    }

    /// Stops the processor thread.
    pub fn stop(mut self) {
        let _ = self.ctl.send(Ctl::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Asks the processor to finish its queued frames and then exit, and
    /// waits for it (make-before-break retirement).
    pub fn stop_when_idle(mut self) {
        let _ = self.ctl.send(Ctl::StopWhenIdle);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ProcessorHandle {
    fn drop(&mut self) {
        let _ = self.ctl.send(Ctl::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Per-message bookkeeping carried from batch classification to verdict
/// handling.
struct RunMeta {
    sampled: bool,
    /// Inbound trace context (forwards re-parent on this hop).
    ctx: Option<TraceContext>,
    origin: Origin,
}

/// What kind of traffic a runnable message is, plus the identifiers the
/// at-most-once machinery needs after the chain has (possibly) rewritten
/// the message.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Origin {
    Request {
        /// Dedup key: (pre-NAT source, call id).
        key: (EndpointAddr, u64),
        orig_src: EndpointAddr,
    },
    Response {
        call_id: u64,
    },
}

/// A frame set aside during classification because an earlier frame in the
/// same batch holds its dedup key: its outcome is replayed from the cache
/// once the batch has executed, exactly as sequential processing would.
enum Deferred {
    Request((EndpointAddr, u64)),
    Response(u64),
}

/// Spawns a processor thread serving `config.addr` with frames from
/// `frames` over `link`.
pub fn spawn_processor(
    mut config: ProcessorConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
) -> ProcessorHandle {
    let (ctl_tx, ctl_rx) = crossbeam::channel::unbounded();
    let stats = Arc::new(ProcessorStats::default());
    let thread_stats = stats.clone();
    let flows = Arc::new(parking_lot::Mutex::new(config.initial_flows.clone()));
    let thread_flows = flows.clone();
    let clock = config.clock.take().unwrap_or_else(adn_rpc::clock::system);
    // Born live: the spawn itself counts as a beat. Otherwise a failure
    // detector polling between spawn and the serve loop's first iteration
    // sees age = now − 0 and declares a newborn (e.g. a failover
    // successor) dead — a race on the wall clock, a certainty on a
    // virtual one.
    let beat = Arc::new(AtomicU64::new(clock.now().as_nanos() as u64));
    let thread_beat = beat.clone();
    let thread_clock = clock.clone();
    let addr = config.addr;

    let join = std::thread::Builder::new()
        .name(format!("adn-processor-{addr}"))
        .spawn(move || {
            let ProcessorConfig {
                addr,
                service,
                mut chain,
                mut request_next,
                response_next,
                initial_flows: _,
                telemetry,
                clock: _,
                batch_max,
                mut overload,
                inbox_capacity: _,
            } = config;
            let batch_max = batch_max.max(1);
            let mut observer = telemetry.map(|t| HopObserver::new(t, addr, &chain));
            // When the previous batch finished, on the processor's clock: a
            // frame pulled from a non-empty queue has been waiting at least
            // since then (the queue-wait approximation spans record). Read
            // through `Clock`, not `Instant`, so queue-wait is deterministic
            // under the simulator's virtual time.
            let mut last_done = thread_clock.now();
            let mut paused = false;
            let mut stopping = false;
            let mut crashed = false;
            // Inbound payloads return here after decode and outbound encodes
            // draw from here, so the steady-state hot path does not allocate
            // per message.
            let pool = BufferPool::new(512, 2 * batch_max);
            let mut batch: Vec<Frame> = Vec::with_capacity(batch_max);
            let mut runnable: Vec<RpcMessage> = Vec::with_capacity(batch_max);
            let mut meta: Vec<RunMeta> = Vec::with_capacity(batch_max);
            let mut verdicts: Vec<Verdict> = Vec::with_capacity(batch_max);
            let mut deferred: Vec<Deferred> = Vec::new();
            // At-most-once caches. Requests key on (pre-NAT src, call id) and
            // cache the outbound frame, so a retransmission replays the
            // forward without re-running the chain or re-inserting the flow.
            // Responses key on call id and cache the post-chain reply, so a
            // response retransmitted after its flow entry was consumed still
            // reaches the requester instead of looping back to us.
            let mut req_cache: DedupWindow<(EndpointAddr, u64), Option<Frame>> =
                DedupWindow::new(PROCESSOR_DEDUP_WINDOW);
            let mut resp_cache: DedupWindow<u64, Option<Frame>> =
                DedupWindow::new(PROCESSOR_DEDUP_WINDOW);

            loop {
                if crashed {
                    // Blackhole: no frame processing, no heartbeats, no
                    // control replies. Only Stop (sent by stop()/drop) or a
                    // closed control channel ends the thread.
                    match ctl_rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(Ctl::Stop) | Err(RecvTimeoutError::Disconnected) => return,
                        _ => continue,
                    }
                }
                thread_beat.store(thread_clock.now().as_nanos() as u64, Ordering::Relaxed);
                // Drain control messages first.
                while let Ok(ctl) = ctl_rx.try_recv() {
                    match ctl {
                        Ctl::Pause(reply) => {
                            paused = true;
                            let _ = reply.send(());
                        }
                        Ctl::Resume => paused = false,
                        Ctl::ExportState(reply) => {
                            let _ = reply.send(chain.export_states());
                        }
                        Ctl::ImportState(images, reply) => {
                            let _ = reply.send(chain.import_states(&images));
                        }
                        Ctl::InstallChain(new_chain, reply) => {
                            let old = std::mem::replace(&mut chain, new_chain);
                            if let Some(obs) = observer.as_mut() {
                                obs.rebind(&chain);
                            }
                            let _ = reply.send(old.export_states());
                        }
                        Ctl::Drain(reply) => {
                            let mut count = 0;
                            while let Ok(frame) = frames.try_recv() {
                                // Same dst: the fabric now delivers to the
                                // successor attached at this address. A
                                // failed send is retried once (the link may
                                // have been mid-repoint); a frame lost after
                                // that is recorded, never silently dropped —
                                // the sim's zero-loss invariant reads this
                                // counter.
                                if link.send(frame.clone()).is_ok() || link.send(frame).is_ok() {
                                    count += 1;
                                } else {
                                    thread_stats.drain_drops.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            let _ = reply.send(count);
                        }
                        Ctl::Stop => return,
                        Ctl::StopWhenIdle => stopping = true,
                        Ctl::SetRequestNext(next) => request_next = next,
                        Ctl::SetOverload(policy, reply) => {
                            overload = policy;
                            let _ = reply.send(());
                        }
                        Ctl::Crash => crashed = true,
                    }
                }
                if crashed {
                    continue;
                }
                if paused {
                    // The gauge must keep tracking the backlog while intake
                    // is frozen — a paused processor with a growing queue is
                    // exactly what load-aware placement needs to see.
                    thread_stats
                        .queue_depth
                        .store(frames.len() as u64, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let backlog = frames.len();
                thread_stats
                    .queue_depth
                    .store(backlog as u64, Ordering::Relaxed);
                let first = if stopping {
                    // Graceful retirement: drain what is queued, then exit.
                    match frames.try_recv() {
                        Ok(f) => f,
                        Err(_) => return,
                    }
                } else {
                    match frames.recv_timeout(Duration::from_millis(20)) {
                        Ok(f) => f,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            last_done = thread_clock.now();
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                };
                // Fill the batch opportunistically: everything already
                // queued, up to the ceiling. Never blocks.
                batch.push(first);
                while batch.len() < batch_max {
                    match frames.try_recv() {
                        Ok(f) => batch.push(f),
                        Err(_) => break,
                    }
                }
                // Decay the gauge to the post-pull residue: the frames just
                // pulled are no longer "waiting", and an idle processor must
                // read zero rather than hold the last pre-drain depth.
                thread_stats
                    .queue_depth
                    .store(frames.len() as u64, Ordering::Relaxed);
                // A frame pulled from a non-empty queue was waiting while
                // the previous batch was processed; one pulled from an
                // empty queue arrived just now. One reading per batch.
                let queue_ns = if backlog > 0 {
                    thread_clock.now().saturating_sub(last_done).as_nanos() as u64
                } else {
                    0
                };

                // Phase 1 — classify. The shared header-parse fast path:
                // every frame gets one envelope peek; retransmissions and
                // stale responses are settled right here without a full
                // decode. Only chain-bound messages decode their fields.
                runnable.clear();
                meta.clear();
                deferred.clear();
                let mut outbox: Vec<Frame> = Vec::with_capacity(batch.len());
                let mut replays: Vec<Frame> = Vec::new();
                for frame in batch.drain(..) {
                    let payload = frame.payload;
                    let env = match wire_format::peek_envelope(&payload) {
                        Ok(e) => e,
                        Err(_) => {
                            thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                            pool.give(payload);
                            continue;
                        }
                    };
                    match env.kind {
                        MessageKind::Request => {
                            let key = (env.src, env.call_id);
                            if meta.iter().any(
                                |m| matches!(m.origin, Origin::Request { key: k, .. } if k == key),
                            ) {
                                // An earlier frame in this batch holds the
                                // key: replay its outcome after the batch.
                                deferred.push(Deferred::Request(key));
                                pool.give(payload);
                                continue;
                            }
                            if let Some(cached) = req_cache.get(&key) {
                                // Retransmission: replay the recorded
                                // outcome without re-running the chain
                                // (at-most-once through stateful elements)
                                // or re-inserting the flow.
                                thread_stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                                if let Some(out) = cached {
                                    replays.push(out.clone());
                                }
                                pool.give(payload);
                                continue;
                            }
                            // Admission control, straight off the envelope —
                            // refused frames never pay a full decode or the
                            // chain. The hop first charges the frame's
                            // measured queue wait (read on the `Clock`
                            // trait, so deterministic under the simulator)
                            // against its in-band budget.
                            let remaining = env.deadline.map(|d| d.consume(queue_ns));
                            if overload.drop_expired
                                && remaining.as_ref().is_some_and(|d| d.expired())
                            {
                                // The caller already gave up: executing this
                                // would be pure waste. Counted, never cached
                                // — a retry arrives with a fresh budget and
                                // is judged afresh.
                                thread_stats.expired_drops.fetch_add(1, Ordering::Relaxed);
                                pool.give(payload);
                                continue;
                            }
                            // Unstamped traffic rides as Normal: brownout
                            // (floor Normal) never touches it, deep overload
                            // (floor above Normal) sheds it like any other
                            // non-critical class.
                            let priority =
                                remaining.as_ref().map_or(Priority::Normal, |d| d.priority);
                            if priority < overload.admission_floor(backlog) {
                                // Fast-fail refusal: a Shed reply tells the
                                // client to back off instead of letting its
                                // attempt time out into a retry storm. Not
                                // dedup-cached — the request never ran, so a
                                // later retry is a fresh admission decision.
                                thread_stats.shed.fetch_add(1, Ordering::Relaxed);
                                if let Some(method) = service.method_by_id(env.method_id) {
                                    let mut r = RpcMessage::request(
                                        env.call_id,
                                        env.method_id,
                                        method.response.clone(),
                                    );
                                    r.kind = MessageKind::Response;
                                    r.status = RpcStatus::Shed;
                                    r.src = addr;
                                    r.dst = env.src;
                                    r.deadline = remaining;
                                    if let Some(frame) = encode_out(&pool, addr, env.src, &r) {
                                        replays.push(frame);
                                    }
                                }
                                pool.give(payload);
                                continue;
                            }
                            let mut msg =
                                match wire_format::decode_message_exact(&payload, &service) {
                                    Ok(m) => m,
                                    Err(_) => {
                                        thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                        pool.give(payload);
                                        continue;
                                    }
                                };
                            pool.give(payload);
                            // The forwarded message carries the decremented
                            // budget: downstream hops see strictly less.
                            msg.deadline = remaining;
                            thread_stats.requests.fetch_add(1, Ordering::Relaxed);
                            // Sampling: the in-band context wins (every hop
                            // of a sampled call agrees without
                            // coordination), otherwise the local sampler
                            // decides by call id.
                            let sampled = observer
                                .as_ref()
                                .is_some_and(|o| o.sampled(msg.trace.as_ref(), msg.call_id));
                            meta.push(RunMeta {
                                sampled,
                                ctx: msg.trace,
                                origin: Origin::Request {
                                    key,
                                    orig_src: msg.src,
                                },
                            });
                            runnable.push(msg);
                        }
                        MessageKind::Response => {
                            let call_id = env.call_id;
                            if meta.iter().any(|m| {
                                matches!(m.origin, Origin::Response { call_id: c } if c == call_id)
                            }) {
                                deferred.push(Deferred::Response(call_id));
                                pool.give(payload);
                                continue;
                            }
                            let mut msg =
                                match wire_format::decode_message_exact(&payload, &service) {
                                    Ok(m) => m,
                                    Err(_) => {
                                        thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                        pool.give(payload);
                                        continue;
                                    }
                                };
                            pool.give(payload);
                            // NAT out: restore the original requester.
                            let flow = thread_flows.lock().remove(&call_id);
                            let Some(orig_src) = flow else {
                                // No flow entry: either a retransmitted
                                // response whose flow was already consumed
                                // (replay the cached reply) or a
                                // stale/foreign response whose NAT'd
                                // destination is this processor itself
                                // (drop it — forwarding would self-loop).
                                if let Some(cached) = resp_cache.get(&call_id) {
                                    thread_stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                                    if let Some(out) = cached {
                                        replays.push(out.clone());
                                    }
                                } else {
                                    thread_stats.stale_responses.fetch_add(1, Ordering::Relaxed);
                                }
                                continue;
                            };
                            thread_stats.responses.fetch_add(1, Ordering::Relaxed);
                            msg.dst = orig_src;
                            // Responses charge their queue wait too, so the
                            // echoed budget stays monotonic end to end.
                            msg.deadline = msg.deadline.map(|d| d.consume(queue_ns));
                            let sampled = observer
                                .as_ref()
                                .is_some_and(|o| o.sampled(msg.trace.as_ref(), msg.call_id));
                            meta.push(RunMeta {
                                sampled,
                                ctx: msg.trace,
                                origin: Origin::Response { call_id },
                            });
                            runnable.push(msg);
                        }
                    }
                }

                // Phase 2+3 — run the chain and turn verdicts into outbound
                // frames. Unsampled batches (the common case) take the
                // engine-major batch entry point; a batch containing any
                // sampled message falls back to per-message processing so
                // stage timings and spans attribute to the right message.
                if meta.iter().any(|m| m.sampled) {
                    for (mut msg, m) in runnable.drain(..).zip(meta.drain(..)) {
                        let verdict = match (&mut observer, m.sampled) {
                            (Some(obs), true) => {
                                let v = chain.process_timed(&mut msg, &mut obs.stage_ns);
                                obs.record_stages(&v);
                                v
                            }
                            _ => chain.process(&mut msg),
                        };
                        let call_id = msg.call_id;
                        let forward_verdict = verdict.is_forward();
                        // Spans mirror the unbatched loop: every request
                        // outcome and forwarded/dropped responses emit;
                        // response aborts do not.
                        let emit = !(matches!(m.origin, Origin::Response { .. })
                            && matches!(verdict, Verdict::Abort { .. }));
                        let serialize = Instant::now();
                        handle_verdict(
                            verdict,
                            msg,
                            m.origin,
                            m.ctx,
                            addr,
                            request_next,
                            response_next,
                            &service,
                            &thread_flows,
                            &thread_stats,
                            &pool,
                            &mut req_cache,
                            &mut resp_cache,
                            &mut outbox,
                        );
                        if let (Some(obs), Some(c), true, true) =
                            (&observer, &m.ctx, m.sampled, emit)
                        {
                            let ser_ns = if forward_verdict {
                                serialize.elapsed().as_nanos() as u64
                            } else {
                                0
                            };
                            obs.emit_span(c, call_id, queue_ns, ser_ns);
                        }
                    }
                } else {
                    chain.process_batch(&mut runnable, &mut verdicts);
                    for ((msg, m), verdict) in runnable
                        .drain(..)
                        .zip(meta.drain(..))
                        .zip(verdicts.drain(..))
                    {
                        handle_verdict(
                            verdict,
                            msg,
                            m.origin,
                            m.ctx,
                            addr,
                            request_next,
                            response_next,
                            &service,
                            &thread_flows,
                            &thread_stats,
                            &pool,
                            &mut req_cache,
                            &mut resp_cache,
                            &mut outbox,
                        );
                    }
                }

                // Phase 4 — deferred in-batch duplicates replay the (now
                // recorded) outcome of their first instance.
                for d in deferred.drain(..) {
                    match d {
                        Deferred::Request(key) => {
                            if let Some(cached) = req_cache.get(&key) {
                                thread_stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                                if let Some(out) = cached {
                                    replays.push(out.clone());
                                }
                            }
                        }
                        Deferred::Response(call_id) => {
                            if let Some(cached) = resp_cache.get(&call_id) {
                                thread_stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                                if let Some(out) = cached {
                                    replays.push(out.clone());
                                }
                            } else {
                                thread_stats.stale_responses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }

                // Phase 5 — one batched send for fresh forwards (these count
                // toward `forwarded`, per successful frame) and one for
                // dedup replays (these never did).
                if !outbox.is_empty() {
                    let sent = link.send_batch(outbox);
                    thread_stats
                        .forwarded
                        .fetch_add(sent as u64, Ordering::Relaxed);
                }
                if !replays.is_empty() {
                    link.send_batch(replays);
                }
                last_done = thread_clock.now();
            }
        })
        .expect("spawn processor thread");

    ProcessorHandle {
        addr,
        ctl: ctl_tx,
        stats,
        flows,
        beat,
        clock,
        join: Some(join),
    }
}

/// Encodes `msg` into a pool-backed buffer as an outbound frame. The frame
/// is both queued for the batched send and recorded in a dedup cache (even
/// if the fabric later rejects it — retransmission replays resend it).
/// `None` only on encode failure.
fn encode_out(
    pool: &BufferPool,
    src: EndpointAddr,
    to: EndpointAddr,
    msg: &RpcMessage,
) -> Option<Frame> {
    let payload = wire_format::encode_message_into(pool.take(), msg).ok()?;
    Some(Frame {
        src,
        dst: to,
        payload,
    })
}

/// Applies a chain verdict to one message: NAT bookkeeping, trace
/// re-parenting, outbound encode, and the at-most-once cache insert. Fresh
/// forwards land in `outbox` (sent — and counted — once per batch).
#[allow(clippy::too_many_arguments)]
fn handle_verdict(
    verdict: Verdict,
    mut msg: RpcMessage,
    origin: Origin,
    ctx: Option<TraceContext>,
    addr: EndpointAddr,
    request_next: NextHop,
    response_next: NextHop,
    service: &ServiceSchema,
    flows: &parking_lot::Mutex<HashMap<u64, EndpointAddr>>,
    stats: &ProcessorStats,
    pool: &BufferPool,
    req_cache: &mut DedupWindow<(EndpointAddr, u64), Option<Frame>>,
    resp_cache: &mut DedupWindow<u64, Option<Frame>>,
    outbox: &mut Vec<Frame>,
) {
    match origin {
        Origin::Request { key, orig_src } => match verdict {
            Verdict::Forward => {
                // NAT in: responses will come back to us.
                flows.lock().insert(msg.call_id, orig_src);
                msg.src = addr;
                if let Some(c) = &ctx {
                    // Downstream spans parent on this hop.
                    msg.trace = Some(c.child_from(addr));
                }
                let to = request_next.resolve(msg.dst);
                let out = encode_out(pool, addr, to, &msg);
                if let Some(frame) = &out {
                    outbox.push(frame.clone());
                }
                req_cache.insert(key, out);
            }
            Verdict::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                req_cache.insert(key, None);
            }
            Verdict::Abort { code, message } => {
                stats.aborted.fetch_add(1, Ordering::Relaxed);
                // Reflect an aborted response to the caller.
                let mut out = None;
                if let Some(method) = service.method_by_id(msg.method_id) {
                    let mut resp = RpcMessage::response_to(&msg, method.response.clone());
                    resp.abort(code, message);
                    resp.src = addr;
                    resp.dst = orig_src;
                    out = encode_out(pool, addr, orig_src, &resp);
                    if let Some(frame) = &out {
                        outbox.push(frame.clone());
                    }
                }
                req_cache.insert(key, out);
            }
            Verdict::Shed => {
                // A chain element refused the request. Unlike the pre-chain
                // admission shed, the chain partially ran, so the outcome is
                // cached like an abort: a retransmission replays the refusal
                // instead of re-driving stateful elements.
                stats.shed.fetch_add(1, Ordering::Relaxed);
                let mut out = None;
                if let Some(method) = service.method_by_id(msg.method_id) {
                    let mut resp = RpcMessage::response_to(&msg, method.response.clone());
                    resp.status = RpcStatus::Shed;
                    resp.src = addr;
                    resp.dst = orig_src;
                    out = encode_out(pool, addr, orig_src, &resp);
                    if let Some(frame) = &out {
                        outbox.push(frame.clone());
                    }
                }
                req_cache.insert(key, out);
            }
        },
        Origin::Response { call_id } => match verdict {
            Verdict::Forward => {
                msg.src = addr;
                if let Some(c) = &ctx {
                    msg.trace = Some(c.child_from(addr));
                }
                let to = response_next.resolve(msg.dst);
                let out = encode_out(pool, addr, to, &msg);
                if let Some(frame) = &out {
                    outbox.push(frame.clone());
                }
                resp_cache.insert(call_id, out);
            }
            Verdict::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                resp_cache.insert(call_id, None);
            }
            Verdict::Abort { code, message } => {
                stats.aborted.fetch_add(1, Ordering::Relaxed);
                msg.abort(code, message);
                msg.src = addr;
                let to = msg.dst;
                let out = encode_out(pool, addr, to, &msg);
                if let Some(frame) = &out {
                    outbox.push(frame.clone());
                }
                resp_cache.insert(call_id, out);
            }
            Verdict::Shed => {
                // Shedding a response would waste the work already done
                // upstream; rewrite the status instead so the client learns
                // the path is overloaded, and forward it home.
                stats.shed.fetch_add(1, Ordering::Relaxed);
                msg.status = RpcStatus::Shed;
                msg.src = addr;
                let to = response_next.resolve(msg.dst);
                let out = encode_out(pool, addr, to, &msg);
                if let Some(frame) = &out {
                    outbox.push(frame.clone());
                }
                resp_cache.insert(call_id, out);
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_rpc::engine::Engine;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::transport::InProcNetwork;
    use adn_rpc::value::{Value, ValueType};
    use adn_rpc::RpcError;

    fn service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("who", ValueType::Str)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("who", ValueType::Str)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "Echo",
                vec![MethodDef {
                    id: 1,
                    name: "Echo".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    struct CountAndStamp {
        count: u64,
    }
    impl Engine for CountAndStamp {
        fn name(&self) -> &str {
            "count_stamp"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            self.count += 1;
            if msg.kind == MessageKind::Response {
                msg.set("who", Value::Str("via-processor".into()));
            }
            Verdict::Forward
        }
        fn export_state(&self) -> Vec<u8> {
            self.count.to_le_bytes().to_vec()
        }
        fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
            self.count = u64::from_le_bytes(image.try_into().map_err(|_| "bad image")?);
            Ok(())
        }
    }

    struct DenyOdd;
    impl Engine for DenyOdd {
        fn name(&self) -> &str {
            "deny_odd"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                if let Some(Value::U64(x)) = msg.get("x") {
                    if x % 2 == 1 {
                        return Verdict::Abort {
                            code: 7,
                            message: "odd".into(),
                        };
                    }
                }
            }
            Verdict::Forward
        }
    }

    /// client(1) → processor(5) → server(2)
    fn setup(
        chain: EngineChain,
    ) -> (
        Arc<RpcClient>,
        ProcessorHandle,
        adn_rpc::runtime::ServerHandle,
    ) {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();

        let server_frames = net.attach(2);
        let svc2 = svc.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            server_frames,
            Box::new(move |req| {
                let m = svc2.method_by_id(req.method_id).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("x", req.get("x").unwrap().clone());
                resp.set("who", Value::Str("server".into()));
                resp
            }),
        );

        let proc_frames = net.attach(5);
        let processor = spawn_processor(
            ProcessorConfig {
                addr: 5,
                service: svc.clone(),
                chain,
                request_next: NextHop::Fixed(2),
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: None,
                clock: None,
                batch_max: DEFAULT_BATCH_MAX,
                overload: OverloadPolicy::default(),
                inbox_capacity: None,
            },
            link.clone(),
            proc_frames,
        );

        let client_frames = net.attach(1);
        let client = RpcClient::new(1, link, client_frames, svc, EngineChain::new());
        (client, processor, server)
    }

    fn req(client: &RpcClient, x: u64) -> RpcMessage {
        let m = client.service().method_by_id(1).unwrap();
        RpcMessage::request(0, 1, m.request.clone())
            .with("x", x)
            .with("who", "client")
    }

    #[test]
    fn requests_and_responses_traverse_the_processor() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        // Client addresses the processor (the controller's routing choice).
        let resp = client.call(req(&client, 4), 5).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(4)));
        // The response chain ran on the processor (NAT return path).
        assert_eq!(resp.get("who"), Some(&Value::Str("via-processor".into())));
        // The serve loop bumps its counters after handing frames to the
        // fabric, so the client can hold the response a beat before the
        // increments land — poll rather than race them.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.stats().forwarded < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = processor.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.forwarded, 2);
    }

    #[test]
    fn sampled_calls_record_spans_and_element_metrics() {
        use adn_telemetry::{Registry, Sampler, SpanRing};

        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let svc2 = svc.clone();
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |request| {
                let m = svc2.method_by_id(request.method_id).unwrap();
                let mut resp = RpcMessage::response_to(request, m.response.clone());
                resp.set("x", request.get("x").unwrap().clone());
                resp.set("who", Value::Str("server".into()));
                resp
            }),
        );
        let telemetry = HopTelemetry {
            app: "echo".into(),
            registry: Arc::new(Registry::new()),
            spans: Arc::new(SpanRing::new(64)),
            sampler: Arc::new(Sampler::off()),
            metrics_processor: None,
        };
        let _processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]),
                NextHop::Fixed(2),
                NextHop::Dst,
            )
            .with_telemetry(telemetry.clone()),
            link.clone(),
            net.attach(5),
        );
        let client = RpcClient::new(1, link, net.attach(1), svc, EngineChain::new());

        // The client samples every call: each request carries a root trace
        // context the processor must honor regardless of its own sampler.
        client.set_trace_sampling(1.0);
        let resp = client.call(req(&client, 4), 5).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(4)));

        // Request + response each ran the one-stage chain under sampling.
        let snaps = telemetry.registry.snapshot_for("echo", 5);
        assert_eq!(snaps.len(), 1, "{snaps:?}");
        assert_eq!(snaps[0].key.element, "count_stamp");
        assert_eq!(snaps[0].count, 2);
        assert_eq!(snaps[0].errors, 0);

        // Both hop directions emitted spans under the same trace id. The
        // response-hop span lands just after the client unblocks, so give
        // the processor thread a moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while telemetry.spans.len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let spans = telemetry.spans.drain();
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
        assert!(spans.iter().all(|s| s.processor == 5));
        assert!(spans
            .iter()
            .all(|s| s.stages.len() == 1 && s.stages[0].0 == "count_stamp"));

        // With sampling off and no inbound trace, nothing is recorded.
        client.set_trace_sampling(0.0);
        client.call(req(&client, 6), 5).unwrap();
        assert!(telemetry.spans.is_empty());
        assert_eq!(telemetry.registry.snapshot_for("echo", 5)[0].count, 2);
    }

    #[test]
    fn processor_abort_reflects_to_client() {
        let chain = EngineChain::from_engines(vec![Box::new(DenyOdd)]);
        let (client, processor, _server) = setup(chain);
        assert!(client.call(req(&client, 2), 5).is_ok());
        let err = client.call(req(&client, 3), 5).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
        assert_eq!(processor.stats().aborted, 1);
    }

    #[test]
    fn state_export_import_across_processors() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        for i in 0..3 {
            client.call(req(&client, i * 2), 5).unwrap();
        }
        processor.pause();
        let images = processor.export_state().unwrap();
        // 3 requests + 3 responses = 6 engine invocations.
        assert_eq!(images[0], 6u64.to_le_bytes().to_vec());
        processor.resume();

        // Import shifted state and verify.
        processor
            .import_state(vec![100u64.to_le_bytes().to_vec()])
            .unwrap();
        assert_eq!(
            processor.export_state().unwrap()[0],
            100u64.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn hot_chain_swap_returns_old_state() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        client.call(req(&client, 0), 5).unwrap();
        let old_state = processor
            .install_chain(EngineChain::from_engines(vec![Box::new(CountAndStamp {
                count: 0,
            })]))
            .unwrap();
        assert_eq!(old_state[0], 2u64.to_le_bytes().to_vec());
        // New chain starts fresh and still works.
        client.call(req(&client, 2), 5).unwrap();
        assert_eq!(
            processor.export_state().unwrap()[0],
            2u64.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn pause_is_lossless() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        processor.pause();
        // Send while paused: the call completes only after resume.
        let pending = client.send_call(req(&client, 8), 5).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        processor.resume();
        let resp = pending.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(8)));
    }

    #[test]
    fn killed_processor_blackholes_and_control_errors() {
        let chain = EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]);
        let (client, processor, _server) = setup(chain);
        client.call(req(&client, 2), 5).unwrap();
        assert!(processor.heartbeat_age() < Duration::from_secs(1));

        processor.kill();
        // Heartbeats stopped. The serve thread may emit one last beat
        // after kill() returns (it checks the flag once per iteration, and
        // a loaded scheduler can hold it mid-iteration past a fixed
        // sleep), so wait for the age to grow instead of sleeping blind —
        // it only grows without bound if the loop is truly dead.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.heartbeat_age() < Duration::from_millis(100)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(processor.heartbeat_age() >= Duration::from_millis(100));
        // Control queries fail explicitly — a crashed processor is
        // distinguishable from an empty answer.
        assert_eq!(processor.export_state().unwrap_err(), CtlError::Stopped);
        assert_eq!(processor.drain().unwrap_err(), CtlError::Stopped);
        assert_eq!(
            processor.install_chain(EngineChain::new()).unwrap_err(),
            CtlError::Stopped
        );
        // Traffic blackholes: the deadline fires, no panic, no response.
        let err = client
            .send_call(req(&client, 4), 5)
            .unwrap()
            .wait(Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(err, RpcError::Timeout { .. }));
        // Drop of the handle (end of test) must still join cleanly.
    }

    #[test]
    fn duplicate_request_replays_cached_outcome() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let svc2 = svc.clone();
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |request| {
                let m = svc2.method_by_id(request.method_id).unwrap();
                let mut resp = RpcMessage::response_to(request, m.response.clone());
                resp.set("x", request.get("x").unwrap().clone());
                resp.set("who", Value::Str("server".into()));
                resp
            }),
        );
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::from_engines(vec![Box::new(CountAndStamp { count: 0 })]),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            link.clone(),
            net.attach(5),
        );
        let client_rx = net.attach(1);

        // Hand-build one request and send the identical frame twice (what a
        // resilient client's retransmission looks like on the wire).
        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(0, 1, m.request.clone())
            .with("x", 4u64)
            .with("who", "client");
        msg.call_id = 99;
        msg.src = 1;
        msg.dst = 2;
        let payload = wire_format::encode_message_to_vec(&msg).unwrap();
        for _ in 0..2 {
            net.send(Frame {
                src: 1,
                dst: 5,
                payload: payload.clone(),
            })
            .unwrap();
        }

        // Both transmissions produce a response back to the client.
        for _ in 0..2 {
            let frame = client_rx.recv_timeout(Duration::from_secs(5)).unwrap();
            let resp = wire_format::decode_message_exact(&frame.payload, &svc).unwrap();
            assert_eq!(resp.call_id, 99);
        }
        let stats = processor.stats();
        // ... but the chain ran for exactly one request + one response.
        assert_eq!(stats.requests, 1);
        assert!(stats.dedup_hits >= 1);
        assert_eq!(
            processor.export_state().unwrap()[0],
            2u64.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn stale_response_is_dropped_not_looped() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            link,
            net.attach(5),
        );

        // A response for a call id with no flow entry and no cached reply:
        // before dedup, the processor forwarded it unchanged — and since a
        // NAT'd response's dst is the processor itself, a duplicated frame
        // would self-loop. It must be counted stale and dropped.
        let m = svc.method_by_id(1).unwrap();
        let mut stale = RpcMessage::request(777, 1, m.response.clone())
            .with("x", 0u64)
            .with("who", "ghost");
        stale.kind = MessageKind::Response;
        stale.call_id = 777;
        stale.src = 2;
        stale.dst = 5;
        let payload = wire_format::encode_message_to_vec(&stale).unwrap();
        net.send(Frame {
            src: 2,
            dst: 5,
            payload,
        })
        .unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.stats().stale_responses == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = processor.stats();
        assert_eq!(stats.stale_responses, 1);
        assert_eq!(stats.forwarded, 0, "stale responses must not be forwarded");
    }

    #[test]
    fn set_request_next_reroutes_traffic() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let mut servers = Vec::new();
        for (addr, tag) in [(2u64, "alpha"), (3, "beta")] {
            let svc2 = svc.clone();
            servers.push(spawn_server(
                ServerConfig {
                    addr,
                    service: svc.clone(),
                    chain: EngineChain::new(),
                },
                link.clone(),
                net.attach(addr),
                Box::new(move |request| {
                    let m = svc2.method_by_id(request.method_id).unwrap();
                    let mut resp = RpcMessage::response_to(request, m.response.clone());
                    resp.set("x", request.get("x").unwrap().clone());
                    resp.set("who", Value::Str(tag.into()));
                    resp
                }),
            ));
        }
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            link.clone(),
            net.attach(5),
        );
        let client = RpcClient::new(1, link, net.attach(1), svc, EngineChain::new());

        let resp = client.call(req(&client, 0), 5).unwrap();
        assert_eq!(resp.get("who"), Some(&Value::Str("alpha".into())));

        processor.set_request_next(NextHop::Fixed(3));
        std::thread::sleep(Duration::from_millis(50));
        let resp = client.call(req(&client, 2), 5).unwrap();
        assert_eq!(resp.get("who"), Some(&Value::Str("beta".into())));
    }

    /// Heartbeat staleness on a virtual clock: a processor is born live
    /// (the spawn itself beats, so a detector polling before the serve
    /// loop's first iteration finds age zero), a crashed one ages by
    /// exactly the controlled jumps and nothing else.
    #[test]
    fn heartbeat_age_follows_virtual_clock_jumps() {
        let clock = adn_rpc::clock::VirtualClock::shared();
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                service(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            )
            .with_clock(clock.clone()),
            link,
            net.attach(5),
        );
        // Born live, even before the serve loop has run once.
        assert_eq!(processor.heartbeat_age(), Duration::ZERO);

        processor.kill();
        // Wait (bounded by thread latency, not wall time) until the serve
        // loop observes the crash; after that it never beats again.
        while processor.export_state().is_ok() {
            std::thread::yield_now();
        }
        // Every beat so far happened at virtual zero, so staleness is
        // exactly the jump we make — deterministic, not approximate.
        clock.advance(Duration::from_millis(300));
        assert_eq!(processor.heartbeat_age(), Duration::from_millis(300));
        clock.advance(Duration::from_millis(300));
        assert_eq!(processor.heartbeat_age(), Duration::from_millis(600));
    }

    /// A link that fails its next `fail_next` sends, then recovers —
    /// models a fabric caught mid-repoint during retirement.
    struct FlakyLink {
        inner: Arc<dyn Link>,
        fail_next: AtomicU64,
    }
    impl Link for FlakyLink {
        fn send(&self, frame: Frame) -> adn_rpc::RpcResult<()> {
            if self
                .fail_next
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(RpcError::Disconnected);
            }
            self.inner.send(frame)
        }
    }

    /// Builds a paused processor at 5 over a [`FlakyLink`] with `queued`
    /// frames waiting, then re-points the fabric address at a fresh
    /// receiver (the "successor"), mirroring retirement order: frames are
    /// queued on the old instance, the fabric moves, then `drain` re-emits.
    fn drain_rig(
        queued: usize,
    ) -> (
        ProcessorHandle,
        Arc<FlakyLink>,
        crossbeam::channel::Receiver<Frame>,
    ) {
        let net = InProcNetwork::new();
        let flaky = Arc::new(FlakyLink {
            inner: Arc::new(net.clone()),
            fail_next: AtomicU64::new(0),
        });
        let svc = service();
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            flaky.clone(),
            net.attach(5),
        );
        processor.pause();

        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(0, 1, m.request.clone())
            .with("x", 1u64)
            .with("who", "c");
        msg.src = 1;
        msg.dst = 2;
        let payload = wire_format::encode_message_to_vec(&msg).unwrap();
        for _ in 0..queued {
            net.send(Frame {
                src: 1,
                dst: 5,
                payload: payload.clone(),
            })
            .unwrap();
        }
        // Re-point the address: re-emitted frames now reach the successor,
        // not the retiring processor's own queue.
        let successor_rx = net.attach(5);
        (processor, flaky, successor_rx)
    }

    /// A transiently failing link during `drain` is absorbed by the
    /// per-frame retry: nothing is lost, nothing is counted dropped.
    #[test]
    fn drain_retries_transient_link_failure() {
        let (processor, flaky, successor_rx) = drain_rig(2);
        flaky.fail_next.store(1, Ordering::SeqCst);
        assert_eq!(processor.drain().unwrap(), 2);
        assert_eq!(processor.stats().drain_drops, 0);
        // Both frames reached the successor.
        for _ in 0..2 {
            successor_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        }
    }

    /// Regression for silent drain loss: a frame the link rejects on both
    /// attempts must be recorded in `drain_drops` — never silently
    /// discarded (the sim's zero-loss invariant reads this counter).
    #[test]
    fn drain_across_failing_link_counts_drops() {
        let (processor, flaky, successor_rx) = drain_rig(2);
        flaky.fail_next.store(u64::MAX, Ordering::SeqCst);
        assert_eq!(processor.drain().unwrap(), 0, "nothing was re-emitted");
        assert_eq!(processor.stats().drain_drops, 2, "loss must be counted");
        assert!(successor_rx.try_recv().is_err());
    }

    /// Regression for the queue-wait wall-clock leak: the serve loop used
    /// `Instant::now()` for its batch timestamps, bypassing the `Clock`
    /// trait, so spans recorded wall time even under a virtual clock. With
    /// the fix, a virtual-clock jump while frames wait shows up in the
    /// span's `queue_ns` exactly — deterministic, not approximate.
    /// Regression: the gauge used to go stale — it was only written when a
    /// frame was pulled, so an idle processor kept reporting its last
    /// pre-drain depth and a paused one never showed the backlog growing.
    /// Load-aware placement steers on this number; it must track both ways.
    #[test]
    fn queue_depth_gauge_tracks_backlog_and_decays_to_zero() {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            link,
            net.attach(5),
        );
        // Freeze intake; queued frames must still move the gauge up.
        processor.pause();
        let m = svc.method_by_id(1).unwrap();
        for i in 0..4u64 {
            let mut msg = RpcMessage::request(100 + i, 1, m.request.clone())
                .with("x", i)
                .with("who", "c");
            msg.src = 1;
            msg.dst = 2;
            let payload = wire_format::encode_message_to_vec(&msg).unwrap();
            net.send(Frame {
                src: 1,
                dst: 5,
                payload,
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.stats().queue_depth < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            processor.stats().queue_depth,
            4,
            "paused backlog must be visible"
        );
        // Unfreeze: the batch drains (no server at 2 answers, but the
        // forward empties the inbox) and the gauge must decay to zero
        // rather than hold the pre-drain reading.
        processor.resume();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (processor.stats().queue_depth > 0 || processor.stats().requests < 4)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = processor.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.queue_depth, 0, "idle gauge must read zero");
    }

    /// Brownout refuses Sheddable-stamped requests with zero backlog and a
    /// fast-fail Shed reply, admits unstamped (Normal) traffic untouched,
    /// and is reversible via `set_overload`.
    #[test]
    fn brownout_sheds_sheddable_requests_and_is_reversible() {
        use adn_wire::header::{OverloadContext, Priority};

        let (client, processor, _server) = setup(EngineChain::new());
        let sheddable = |client: &RpcClient, x: u64| {
            let mut msg = req(client, x);
            msg.deadline = Some(OverloadContext::root(
                Duration::from_secs(5).as_nanos() as u64,
                Priority::Sheddable,
            ));
            msg
        };
        // Permissive default: sheddable traffic flows.
        assert!(client.call(sheddable(&client, 1), 5).is_ok());

        processor.set_overload(OverloadPolicy {
            brownout: true,
            ..OverloadPolicy::default()
        });
        match client.call(sheddable(&client, 2), 5) {
            Err(RpcError::Shed { .. }) => {}
            other => panic!("expected fast-fail shed, got {other:?}"),
        }
        // Unstamped traffic rides as Normal: brownout does not touch it.
        assert!(client.call(req(&client, 3), 5).is_ok());
        assert_eq!(processor.stats().shed, 1);

        processor.set_overload(OverloadPolicy::default());
        assert!(
            client.call(sheddable(&client, 4), 5).is_ok(),
            "brownout must be reversible"
        );
    }

    /// A request arriving with an exhausted in-band budget is dropped
    /// before the chain — counted, never executed, never cached (a retry
    /// re-stamps a live budget and is judged afresh).
    #[test]
    fn expired_requests_are_dropped_and_counted_not_cached() {
        use adn_wire::header::{OverloadContext, Priority};

        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            ),
            link,
            net.attach(5),
        );
        let m = svc.method_by_id(1).unwrap();
        let send = |budget_ns: u64| {
            let mut msg = RpcMessage::request(9, 1, m.request.clone())
                .with("x", 1u64)
                .with("who", "c");
            msg.src = 1;
            msg.dst = 2;
            msg.deadline = Some(OverloadContext::root(budget_ns, Priority::Normal));
            let payload = wire_format::encode_message_to_vec(&msg).unwrap();
            net.send(Frame {
                src: 1,
                dst: 5,
                payload,
            })
            .unwrap();
        };
        send(0);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.stats().expired_drops < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = processor.stats();
        assert_eq!(stats.expired_drops, 1);
        assert_eq!(stats.requests, 0, "an expired frame never runs the chain");
        // The drop was not dedup-cached: the same call id with a live
        // budget is admitted and forwarded.
        send(Duration::from_secs(5).as_nanos() as u64);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while processor.stats().requests < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(processor.stats().requests, 1, "retry is judged afresh");
        assert_eq!(processor.stats().dedup_hits, 0);
    }

    #[test]
    fn queue_wait_is_measured_on_the_processor_clock() {
        use adn_telemetry::{Registry, Sampler, SpanRing};

        let clock = adn_rpc::clock::VirtualClock::shared();
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let telemetry = HopTelemetry {
            app: "echo".into(),
            registry: Arc::new(Registry::new()),
            spans: Arc::new(SpanRing::new(16)),
            sampler: Arc::new(Sampler::off()),
            metrics_processor: None,
        };
        let processor = spawn_processor(
            ProcessorConfig::new(
                5,
                svc.clone(),
                EngineChain::new(),
                NextHop::Fixed(2),
                NextHop::Dst,
            )
            .with_clock(clock.clone())
            .with_telemetry(telemetry.clone()),
            link,
            net.attach(5),
        );
        // Freeze intake so the frame provably waits across the jump.
        processor.pause();

        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(0, 1, m.request.clone())
            .with("x", 1u64)
            .with("who", "c");
        msg.call_id = 42;
        msg.src = 1;
        msg.dst = 2;
        // In-band context: the hop samples it regardless of the local
        // sampler, so a span (carrying queue_ns) is emitted.
        msg.trace = Some(TraceContext::root(7));
        let payload = wire_format::encode_message_to_vec(&msg).unwrap();
        net.send(Frame {
            src: 1,
            dst: 5,
            payload,
        })
        .unwrap();

        // The wait happens entirely in virtual time.
        clock.advance(Duration::from_secs(2));
        processor.resume();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while telemetry.spans.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let spans = telemetry.spans.drain();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(
            spans[0].queue_ns,
            Duration::from_secs(2).as_nanos() as u64,
            "queue wait must be the virtual-clock jump, exactly"
        );
    }
}
