//! # adn-dataplane — ADN processors
//!
//! Paper §5.3: "The ADN data plane is composed of ADN processors that carry
//! out the low-level executions of ADN elements. Each processor acquires
//! the compiled version of the RPC processing logic from the control plane
//! and periodically sends reports ... back to the controller."
//!
//! * [`processor`] — a standalone processor endpoint: a thread that decodes
//!   frames from the virtual link layer, runs its engine chain, and
//!   forwards. Processors NAT themselves into the path (rewriting `src` and
//!   keeping a call-id flow table) so responses traverse the same chain in
//!   reverse — the same trick sidecars use. A control channel supports
//!   pause / snapshot / restore / drain / hot-chain-swap, the primitives
//!   live migration is built from.
//! * [`scaleout`] — Figure 2 Configuration 4: a shard router endpoint in
//!   front of N processor instances, sharding by a request field so keyed
//!   element state stays shard-local.
//! * [`hop`] — minimal-header hop codec: intermediate hops carry only the
//!   fields downstream processors read (paper §4 Q2); everything else
//!   crosses as opaque bytes that are never re-parsed.

pub mod hop;
pub mod processor;
pub mod scaleout;
pub mod shard;

pub use processor::{
    spawn_processor, NextHop, OverloadPolicy, ProcessorConfig, ProcessorHandle, ProcessorStats,
    StatsSnapshot, DEFAULT_BATCH_MAX,
};
pub use scaleout::{spawn_sharded, ShardedConfig, ShardedHandle};
pub use shard::{spawn_processor_sharded, ShardedProcessor};
