//! Deployment: materializing a placement onto the data plane.
//!
//! Consecutive elements sharing a site become one processor (or one chain
//! segment inside an RPC library). Each element compiles for its site's
//! platform: software engines for libraries / sidecars / SmartNIC cores,
//! the eBPF adapter for kernel sites, the P4 adapter for the switch.
//! Processors chain via `NextHop::Fixed`; the last hop forwards to the
//! message's own destination (which a ROUTE element may have rewritten).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adn_backend::adapters::{EbpfEngine, SwitchEngine};
use adn_backend::jit::compile_engine;
use adn_backend::native::{element_seed, CompileOpts};
use adn_backend::{ebpf, p4};
use adn_dataplane::processor::{
    spawn_processor, NextHop, ProcessorConfig, ProcessorHandle, DEFAULT_BATCH_MAX,
};
use adn_ir::ElementIr;
use adn_rpc::clock::Clock;
use adn_rpc::engine::{Engine, EngineChain};
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, InProcNetwork, Link};
use adn_rpc::value::ValueType;
use adn_telemetry::HopTelemetry;

use crate::compile::CompiledApp;
use crate::placement::{Placement, Site};

/// Allocates flat endpoint addresses for processors.
#[derive(Debug)]
pub struct AddrAllocator {
    next: AtomicU64,
}

impl AddrAllocator {
    /// Starts allocating at `base` (keep app endpoints below it).
    pub fn new(base: u64) -> Self {
        Self {
            next: AtomicU64::new(base),
        }
    }

    /// Next unused address.
    pub fn alloc(&self) -> EndpointAddr {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// One deployed processor group.
pub struct DeployedGroup {
    /// Which site hosts the group.
    pub site: Site,
    /// Names of the elements in the group, in order.
    pub elements: Vec<String>,
    /// Index range into the compiled chain.
    pub range: (usize, usize),
    /// The processor handle (None for in-library groups).
    pub handle: Option<ProcessorHandle>,
    /// The next hop the group's processor was wired with (recorded so a
    /// failover replacement rejoins the chain at the same position;
    /// `NextHop::Dst` for in-library groups).
    pub request_next: NextHop,
}

/// A live deployment.
pub struct Deployment {
    /// Where the client's frames should enter the chain (`None` = send
    /// straight to the destination).
    pub entry: Option<EndpointAddr>,
    /// Chain to install into the caller's RPC library.
    pub client_chain: EngineChain,
    /// Chain to install into the callee's RPC library.
    pub server_chain: EngineChain,
    /// Deployed groups in path order.
    pub groups: Vec<DeployedGroup>,
    /// The placement this deployment realizes.
    pub placement: Placement,
}

impl Deployment {
    /// All live processor handles.
    pub fn processors(&self) -> impl Iterator<Item = &ProcessorHandle> {
        self.groups.iter().filter_map(|g| g.handle.as_ref())
    }
}

/// Deployment failure.
#[derive(Debug)]
pub struct DeployError {
    pub message: String,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeployError {}

/// Builds the engine for one element at one site.
pub fn build_engine(
    element: &ElementIr,
    site: Site,
    app: &CompiledApp,
    global_index: usize,
    replicas: &[EndpointAddr],
) -> Result<Box<dyn Engine>, DeployError> {
    let seed = element_seed(app.seed, global_index);
    match site.platform() {
        adn_backend::Platform::Software | adn_backend::Platform::SmartNic => Ok(compile_engine(
            element,
            &CompileOpts {
                seed,
                replicas: replicas.to_vec(),
                ..Default::default()
            },
        )),
        adn_backend::Platform::Ebpf => {
            let req_types: Vec<ValueType> = app
                .chain
                .request_schema
                .fields()
                .iter()
                .map(|f| f.ty)
                .collect();
            let resp_types: Vec<ValueType> = app
                .chain
                .response_schema
                .fields()
                .iter()
                .map(|f| f.ty)
                .collect();
            let compiled =
                ebpf::compile_for_schema(element, &req_types, &resp_types).map_err(|e| {
                    DeployError {
                        message: format!("ebpf compile of {}: {e}", element.name),
                    }
                })?;
            Ok(Box::new(EbpfEngine::new(compiled, seed, replicas.to_vec())))
        }
        adn_backend::Platform::Switch => {
            let pipeline = p4::compile(element).map_err(|e| DeployError {
                message: format!("p4 compile of {}: {e}", element.name),
            })?;
            // Budget the header window with the real schema.
            let req_types: Vec<ValueType> = app
                .chain
                .request_schema
                .fields()
                .iter()
                .map(|f| f.ty)
                .collect();
            p4::check_header_budget(&pipeline.header_fields, &req_types).map_err(|e| {
                DeployError {
                    message: format!("switch header budget for {}: {e}", element.name),
                }
            })?;
            Ok(Box::new(SwitchEngine::new(pipeline, replicas.to_vec())))
        }
    }
}

/// Materializes `placement` of `app` onto the in-process fabric.
///
/// `service` is the destination service's schema; `replicas` its current
/// replica endpoints (bound into ROUTE elements). `telemetry` (when given)
/// is cloned into every spawned processor so their element metrics and
/// spans land in the controller's registry. `clock` (when given) becomes
/// every spawned processor's heartbeat time source — the controller passes
/// its own clock so failure detection stays on one timeline.
#[allow(clippy::too_many_arguments)]
pub fn deploy(
    app: &CompiledApp,
    placement: &Placement,
    net: &InProcNetwork,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    replicas: &[EndpointAddr],
    alloc: &AddrAllocator,
    telemetry: Option<HopTelemetry>,
    clock: Option<Arc<dyn Clock>>,
) -> Result<Deployment, DeployError> {
    assert_eq!(placement.sites.len(), app.chain.len());

    let mut client_chain = EngineChain::new();
    let mut server_chain = EngineChain::new();
    let mut groups: Vec<DeployedGroup> = Vec::new();

    // Build per-group chains first (so processor next-hops can be wired
    // back-to-front afterwards).
    struct PendingGroup {
        site: Site,
        range: (usize, usize),
        chain: EngineChain,
        names: Vec<String>,
    }
    let mut pending: Vec<PendingGroup> = Vec::new();

    for (site, start, end) in placement.groups() {
        let mut chain = EngineChain::new();
        let mut names = Vec::new();
        for (offset, element) in app.chain.elements[start..end].iter().enumerate() {
            let engine = build_engine(element, site, app, start + offset, replicas)?;
            names.push(element.name.clone());
            chain.push(engine);
        }
        match site {
            Site::ClientLib => {
                client_chain = chain;
                groups.push(DeployedGroup {
                    site,
                    elements: names,
                    range: (start, end),
                    handle: None,
                    request_next: NextHop::Dst,
                });
            }
            Site::ServerLib => {
                server_chain = chain;
                groups.push(DeployedGroup {
                    site,
                    elements: names,
                    range: (start, end),
                    handle: None,
                    request_next: NextHop::Dst,
                });
            }
            _ => pending.push(PendingGroup {
                site,
                range: (start, end),
                chain,
                names,
            }),
        }
    }

    // Spawn processors back-to-front to wire Fixed next hops.
    let mut spawned: Vec<DeployedGroup> = Vec::new();
    let mut next_hop = NextHop::Dst;
    for group in pending.into_iter().rev() {
        let addr = alloc.alloc();
        let frames = net.attach(addr);
        let handle = spawn_processor(
            ProcessorConfig {
                addr,
                service: service.clone(),
                chain: group.chain,
                request_next: next_hop,
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: telemetry.clone(),
                clock: clock.clone(),
                batch_max: DEFAULT_BATCH_MAX,
                overload: Default::default(),
                inbox_capacity: None,
            },
            link.clone(),
            frames,
        );
        let request_next = next_hop;
        next_hop = NextHop::Fixed(addr);
        spawned.push(DeployedGroup {
            site: group.site,
            elements: group.names,
            range: group.range,
            handle: Some(handle),
            request_next,
        });
    }
    spawned.reverse();
    let entry = match next_hop {
        NextHop::Fixed(addr) => Some(addr),
        NextHop::Dst => None,
    };

    // Merge processor groups into the (path-ordered) group list.
    let mut all_groups: Vec<DeployedGroup> = Vec::new();
    let mut spawned_iter = spawned.into_iter();
    for g in groups {
        all_groups.push(g);
    }
    for g in spawned_iter.by_ref() {
        all_groups.push(g);
    }
    all_groups.sort_by_key(|g| g.range.0);

    Ok(Deployment {
        entry,
        client_chain,
        server_chain,
        groups: all_groups,
        placement: placement.clone(),
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::compile::compile_app;
    use crate::placement::{place, Environment};
    use adn_cluster::resources::{
        AdnConfig, ElementSpec, NodeId, NodeSpec, PlacementConstraint, SmartNicSpec, SwitchId,
        SwitchSpec,
    };
    use adn_rpc::message::RpcMessage;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::value::{Value, ValueType};
    use adn_rpc::RpcError;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn service(req: Arc<RpcSchema>, resp: Arc<RpcSchema>) -> Arc<ServiceSchema> {
        Arc::new(
            ServiceSchema::new(
                "ObjectStore",
                vec![MethodDef {
                    id: 1,
                    name: "Put".into(),
                    request: req,
                    response: resp,
                }],
            )
            .unwrap(),
        )
    }

    fn env(rich: bool) -> Environment {
        let node = |id: u32| NodeSpec {
            id: NodeId(id),
            name: format!("n{id}"),
            cpu_slots: 8,
            ebpf_capable: rich,
            smartnic: rich.then_some(SmartNicSpec { cpu_slots: 4 }),
        };
        Environment {
            client_node: node(1),
            server_node: node(2),
            switch: rich.then_some(SwitchSpec {
                id: SwitchId(1),
                name: "tor".into(),
                programmable: true,
                table_capacity: 1024,
            }),
            allow_in_app: true,
        }
    }

    fn spec(element: &str, constraints: Vec<PlacementConstraint>) -> ElementSpec {
        ElementSpec {
            element: element.into(),
            source: None,
            args: vec![],
            constraints,
        }
    }

    /// Full end-to-end: compile → place → deploy → run RPCs through it.
    fn run_deployment(
        chain: Vec<ElementSpec>,
        rich: bool,
    ) -> (Arc<RpcClient>, Vec<Result<RpcMessage, RpcError>>) {
        let (req_schema, resp_schema) = schemas();
        let svc = service(req_schema.clone(), resp_schema.clone());
        let config = AdnConfig {
            app: "t".into(),
            src_service: "frontend".into(),
            dst_service: "storage".into(),
            chain,
            seed: 5,
        };
        let app = compile_app(&config, req_schema, resp_schema.clone()).unwrap();
        let placement = place(&app.chain.elements, &app.constraints, &env(rich)).unwrap();

        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let alloc = AddrAllocator::new(1000);

        // Server replica at 200.
        let server_frames = net.attach(200);
        let svc2 = svc.clone();
        let deployment = deploy(
            &app,
            &placement,
            &net,
            link.clone(),
            svc.clone(),
            &[200],
            &alloc,
            None,
            None,
        )
        .unwrap();
        let Deployment {
            entry,
            client_chain,
            server_chain,
            groups,
            placement: _,
        } = deployment;
        let _server = spawn_server(
            ServerConfig {
                addr: 200,
                service: svc.clone(),
                chain: server_chain,
            },
            link.clone(),
            server_frames,
            Box::new(move |req| {
                let m = svc2.method_by_id(1).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("ok", Value::Bool(true));
                resp.set("payload", req.get("payload").unwrap().clone());
                resp
            }),
        );

        let client_frames = net.attach(100);
        let client = RpcClient::new(100, link, client_frames, svc.clone(), client_chain);
        client.set_via(entry);

        let m = svc.method_by_id(1).unwrap();
        let mut results = Vec::new();
        for (i, user) in ["alice", "bob", "carol", "eve"].iter().enumerate() {
            let msg = RpcMessage::request(0, 1, m.request.clone())
                .with("object_id", i as u64)
                .with("username", *user)
                .with("payload", vec![9u8; 32]);
            results.push(client.call(msg, 200));
        }
        // Keep the processors alive until the calls complete.
        std::mem::forget(groups);
        (client, results)
    }

    #[test]
    fn bare_env_in_app_deployment_enforces_acl() {
        let (_client, results) = run_deployment(vec![spec("Acl", vec![])], false);
        // alice W, bob R, carol W, eve R.
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert!(results[3].is_err());
    }

    #[test]
    fn offapp_sidecar_deployment_enforces_acl() {
        let (_client, results) =
            run_deployment(vec![spec("Acl", vec![PlacementConstraint::OffApp])], false);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn rich_env_switch_deployment_enforces_acl_and_compression_roundtrips() {
        let (_client, results) = run_deployment(
            vec![
                spec("Compress", vec![]),
                spec("Acl", vec![PlacementConstraint::OffApp]),
                spec("Decompress", vec![PlacementConstraint::ReceiverSide]),
            ],
            true,
        );
        let ok = results[0].as_ref().unwrap();
        // Payload made it through compress → decompress intact.
        assert_eq!(ok.get("payload"), Some(&Value::Bytes(vec![9u8; 32])));
        assert!(results[1].is_err(), "bob must still be denied");
    }

    #[test]
    fn lb_routes_between_replicas_via_deployment() {
        let (req_schema, resp_schema) = schemas();
        let svc = service(req_schema.clone(), resp_schema.clone());
        let config = AdnConfig {
            app: "t".into(),
            src_service: "a".into(),
            dst_service: "b".into(),
            chain: vec![spec("LoadBalancer", vec![PlacementConstraint::OffApp])],
            seed: 1,
        };
        let app = compile_app(&config, req_schema, resp_schema).unwrap();
        let placement = place(&app.chain.elements, &app.constraints, &env(false)).unwrap();

        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let alloc = AddrAllocator::new(1000);

        // Two replicas, each tagging responses with its identity.
        let mut servers = Vec::new();
        for addr in [201u64, 202] {
            let frames = net.attach(addr);
            let svc2 = svc.clone();
            servers.push(spawn_server(
                ServerConfig {
                    addr,
                    service: svc.clone(),
                    chain: EngineChain::new(),
                },
                link.clone(),
                frames,
                Box::new(move |req| {
                    let m = svc2.method_by_id(1).unwrap();
                    let mut resp = RpcMessage::response_to(req, m.response.clone());
                    resp.set("payload", Value::Bytes(vec![addr as u8]));
                    resp
                }),
            ));
        }

        let deployment = deploy(
            &app,
            &placement,
            &net,
            link.clone(),
            svc.clone(),
            &[201, 202],
            &alloc,
            None,
            None,
        )
        .unwrap();

        let client_frames = net.attach(100);
        let Deployment {
            entry,
            client_chain,
            groups,
            ..
        } = deployment;
        let client = RpcClient::new(100, link, client_frames, svc.clone(), client_chain);
        client.set_via(entry);

        let m = svc.method_by_id(1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..30u64 {
            let msg = RpcMessage::request(0, 1, m.request.clone())
                .with("object_id", i)
                .with("username", "alice")
                .with("payload", vec![]);
            // Logical dst = replica 201; the LB rewrites per key.
            let resp = client.call(msg, 201).unwrap();
            seen.insert(resp.get("payload").unwrap().as_bytes().unwrap()[0]);
        }
        assert_eq!(seen.len(), 2, "both replicas should serve traffic");
        std::mem::forget(groups);
    }
}
