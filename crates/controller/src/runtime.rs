//! The event-driven runtime controller.
//!
//! Paper §6: "The ADN controller watches for changes to this resource
//! [ADNConfig] or to the deployment (e.g., a new service replica). It
//! updates the data plane processors when either changes."
//!
//! [`Controller`] subscribes to the cluster store; each event drives a
//! reconciliation: config changes recompile and redeploy the chain
//! (make-before-break: the new path is live before the old retires),
//! replica changes rebind ROUTE replica sets, and sustained high load on a
//! processor group can be answered with keyed scale-out (exposed as an
//! explicit operation; policy thresholds live with the operator).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use adn_cluster::{ClusterEvent, ClusterStore};
use adn_dataplane::processor::{
    spawn_processor, NextHop, OverloadPolicy, ProcessorConfig, DEFAULT_BATCH_MAX,
};
use adn_rpc::clock::Clock;
use adn_rpc::engine::EngineChain;
use adn_rpc::retry::DegradedMode;
use adn_rpc::runtime::{RpcClient, ServerHandle};
use adn_rpc::schema::{RpcSchema, ServiceSchema};
use adn_rpc::transport::{EndpointAddr, InProcNetwork, Link};
use adn_telemetry::{
    ClusterView, HopTelemetry, LoadAwarePolicy, ProcessorObservation, Registry, Sampler, SpanRing,
};

use crate::compile::{compile_app, CompiledApp};
use crate::deploy::{build_engine, deploy, AddrAllocator, Deployment};
use crate::placement::{place, Environment};
use crate::reconfig::{scale_out, ScaledGroup};

/// Failure-detection and degraded-mode policy for one app.
///
/// A processor that has not stored a heartbeat within
/// `heartbeat_timeout` is declared dead; until its replacement is live,
/// the app's client behaves per `degraded`: fail-closed calls fail fast
/// on the open circuit, fail-open calls bypass the (dead) chain entry
/// and go straight to the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Maximum tolerated heartbeat age before a processor is dead.
    pub heartbeat_timeout: Duration,
    /// What the client does while the chain entry is unreachable.
    pub degraded: DegradedMode,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_millis(500),
            degraded: DegradedMode::FailClosed,
        }
    }
}

/// Everything the controller needs to manage one application.
pub struct AppRegistration {
    /// Request schema.
    pub request: Arc<RpcSchema>,
    /// Response schema.
    pub response: Arc<RpcSchema>,
    /// Service schema (decoding on processors).
    pub service: Arc<ServiceSchema>,
    /// The caller's RPC client (chains and via are installed here).
    pub client: Arc<RpcClient>,
    /// The callee's server handles, one per replica (server-side chains are
    /// installed here).
    pub servers: Vec<Arc<ServerHandle>>,
    /// Deployment environment for the placement solver.
    pub env: Environment,
}

/// How an app answers a load-policy breach: shard the breached group on
/// `shard_field` into `shards` instances. Enabled per app via
/// [`Controller::enable_autoscale`].
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Thresholds and cooldown.
    pub policy: LoadAwarePolicy,
    /// Request-schema field index the shard router hashes.
    pub shard_field: usize,
    /// Instances to scale out to.
    pub shards: usize,
}

struct ManagedApp {
    registration: AppRegistration,
    version: u64,
    compiled: Option<CompiledApp>,
    deployment: Option<Deployment>,
    health: HealthPolicy,
    /// Last state snapshot per processor group, keyed by the group's
    /// start index into the compiled chain. Restored into failover
    /// replacements (state since the snapshot is lost — crash, not
    /// migration).
    checkpoints: HashMap<usize, Vec<Vec<u8>>>,
    /// Scale-out-on-breach policy; `None` leaves scaling operator-driven.
    autoscale: Option<AutoscaleConfig>,
    /// The group scaled out by the autoscaler (its router holds the
    /// original group address). At most one per app.
    scaled: Option<ScaledGroup>,
    /// When the autoscaler last scaled out, on the controller's clock
    /// (cooldown anchor).
    last_scaleout: Option<Duration>,
    /// Scale-outs performed by the autoscaler since registration.
    scaleouts: u64,
    /// Overload/admission policy applied to every processor of the app.
    /// Persisted here so redeploys (sync, failover, scale-out) re-apply
    /// it to fresh processors; the default is fully permissive.
    overload: OverloadPolicy,
}

/// Controller error.
#[derive(Debug)]
pub struct ControllerError {
    pub message: String,
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ControllerError {}

fn cerr(message: impl std::fmt::Display) -> ControllerError {
    ControllerError {
        message: message.to_string(),
    }
}

/// Copies state between deployments for groups whose element sequences and
/// table layouts match exactly (same names, columns, keys, capacities).
fn transfer_matching_state(
    old_dep: &Deployment,
    old_comp: &CompiledApp,
    new_dep: &Deployment,
    new_comp: &CompiledApp,
) {
    let signature = |comp: &CompiledApp, range: (usize, usize)| {
        comp.chain.elements[range.0..range.1]
            .iter()
            .map(|e| (e.name.clone(), e.tables.clone()))
            .collect::<Vec<_>>()
    };
    for new_group in &new_dep.groups {
        let Some(new_handle) = new_group.handle.as_ref() else {
            continue;
        };
        let new_sig = signature(new_comp, new_group.range);
        if new_sig.iter().all(|(_, tables)| tables.is_empty()) {
            continue; // stateless group: nothing to carry
        }
        for old_group in &old_dep.groups {
            let Some(old_handle) = old_group.handle.as_ref() else {
                continue;
            };
            if signature(old_comp, old_group.range) == new_sig {
                // A crashed (unresponsive) old processor simply has no
                // state to carry; the new group starts fresh.
                if let Ok(images) = old_handle.export_state() {
                    let _ = new_handle.import_state(images);
                }
                break;
            }
        }
    }
}

/// The logically centralized ADN controller.
pub struct Controller {
    store: ClusterStore,
    net: InProcNetwork,
    link: Arc<dyn Link>,
    alloc: AddrAllocator,
    apps: Mutex<HashMap<String, ManagedApp>>,
    /// Shared metric registry; processors deployed by this controller
    /// record element metrics here, and heartbeats snapshot from it.
    registry: Arc<Registry>,
    /// Span sink for every traced hop of every app.
    spans: Arc<SpanRing>,
    /// Sliding-window cluster view fed by `ClusterEvent::Load`.
    view: Arc<ClusterView>,
    /// Per-app trace samplers (shared with every hop of the app).
    /// Lock ordering: never held together with `apps`.
    samplers: Mutex<HashMap<String, Arc<Sampler>>>,
    /// Time source for autoscale cooldowns, the cluster view's window, and
    /// the heartbeat clock handed to deployed processors.
    clock: Arc<dyn Clock>,
}

impl Controller {
    /// Creates a controller over the cluster store and fabric. Processor
    /// addresses are allocated starting at `addr_base`.
    pub fn new(store: ClusterStore, net: InProcNetwork, addr_base: u64) -> Self {
        let link: Arc<dyn Link> = Arc::new(net.clone());
        Self::with_link(store, net, link, addr_base)
    }

    /// Like [`Controller::new`] but with an explicit link — used to route
    /// controller-deployed processors through a wrapper link (e.g. an
    /// `adn_rpc::ChaosLink` injecting faults in tests).
    pub fn with_link(
        store: ClusterStore,
        net: InProcNetwork,
        link: Arc<dyn Link>,
        addr_base: u64,
    ) -> Self {
        Self::with_link_and_clock(store, net, link, addr_base, adn_rpc::clock::system())
    }

    /// Like [`Controller::with_link`] but with an explicit time source.
    /// Deterministic tests pass a [`adn_rpc::clock::VirtualClock`] shared
    /// with the processors so cooldowns and heartbeat ages follow
    /// controlled jumps.
    pub fn with_link_and_clock(
        store: ClusterStore,
        net: InProcNetwork,
        link: Arc<dyn Link>,
        addr_base: u64,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self {
            store,
            net,
            link,
            alloc: AddrAllocator::new(addr_base),
            apps: Mutex::new(HashMap::new()),
            registry: Arc::new(Registry::new()),
            spans: Arc::new(SpanRing::new(4096)),
            view: Arc::new(ClusterView::with_clock(
                Duration::from_secs(10),
                clock.clone(),
            )),
            samplers: Mutex::new(HashMap::new()),
            clock,
        }
    }

    /// The controller's time source.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// The shared metric registry (element metrics plus re-exported
    /// legacy counters).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The span ring every traced hop writes into.
    pub fn spans(&self) -> &Arc<SpanRing> {
        &self.spans
    }

    /// The sliding-window cluster view fed by load reports.
    pub fn view(&self) -> &Arc<ClusterView> {
        &self.view
    }

    /// The app's trace sampler (created off on first use).
    fn sampler(&self, app: &str) -> Arc<Sampler> {
        self.samplers
            .lock()
            .entry(app.to_owned())
            .or_insert_with(|| Arc::new(Sampler::off()))
            .clone()
    }

    /// Sets the app's trace-sampling rate in [0, 1]. Pushed to both the
    /// client (which synthesizes root trace contexts) and every processor
    /// hop (which decides locally for untraced frames).
    pub fn set_trace_sampling(&self, app: &str, rate: f64) {
        self.sampler(app).set_rate(rate);
        // Locks taken one at a time: sampler first, then apps.
        let client = self
            .apps
            .lock()
            .get(app)
            .map(|m| m.registration.client.clone());
        if let Some(client) = client {
            client.set_trace_sampling(rate);
        }
    }

    /// The telemetry bundle handed to every processor of `app`.
    pub fn hop_telemetry(&self, app: &str) -> HopTelemetry {
        HopTelemetry {
            app: app.to_owned(),
            registry: self.registry.clone(),
            spans: self.spans.clone(),
            sampler: self.sampler(app),
            metrics_processor: None,
        }
    }

    /// Enables scale-out-on-breach for the app.
    pub fn enable_autoscale(&self, app: &str, config: AutoscaleConfig) {
        if let Some(managed) = self.apps.lock().get_mut(app) {
            managed.autoscale = Some(config);
        }
    }

    /// Scale-outs the autoscaler has performed for the app.
    pub fn scaleout_count(&self, app: &str) -> u64 {
        self.apps.lock().get(app).map(|m| m.scaleouts).unwrap_or(0)
    }

    /// The least-loaded candidate per the app's load-aware policy (falls
    /// back to the default policy when autoscale is not configured).
    pub fn preferred_processor(
        &self,
        app: &str,
        candidates: &[EndpointAddr],
    ) -> Option<EndpointAddr> {
        let policy = self
            .apps
            .lock()
            .get(app)
            .and_then(|m| m.autoscale.as_ref().map(|a| a.policy.clone()))
            .unwrap_or_default();
        policy.prefer(&self.view, candidates)
    }

    /// The address allocator (shared with manual reconfiguration calls).
    pub fn alloc(&self) -> &AddrAllocator {
        &self.alloc
    }

    /// Registers an application. Call before applying its AdnConfig.
    pub fn register_app(&self, app: &str, registration: AppRegistration) {
        self.apps.lock().insert(
            app.to_owned(),
            ManagedApp {
                registration,
                version: 0,
                compiled: None,
                deployment: None,
                health: HealthPolicy::default(),
                checkpoints: HashMap::new(),
                autoscale: None,
                scaled: None,
                last_scaleout: None,
                scaleouts: 0,
                overload: OverloadPolicy::default(),
            },
        );
    }

    /// Sets the app's overload/admission policy and pushes it to every
    /// live processor. The policy persists on the controller, so later
    /// redeploys (sync, failover, scale-out) re-apply it to replacement
    /// processors. Returns how many processors received the update.
    pub fn set_overload_policy(&self, app: &str, policy: OverloadPolicy) -> usize {
        let mut apps = self.apps.lock();
        let Some(managed) = apps.get_mut(app) else {
            return 0;
        };
        managed.overload = policy;
        let mut pushed = 0;
        if let Some(deployment) = managed.deployment.as_ref() {
            for handle in deployment.processors() {
                handle.set_overload(policy);
                pushed += 1;
            }
        }
        pushed
    }

    /// Flips the app's brownout bit — refuse every `Priority::Sheddable`
    /// request regardless of backlog — keeping the rest of its overload
    /// policy intact. The fail-open degradation knob: optional work is
    /// turned away at the entry hop while important traffic keeps its
    /// full capacity. Returns how many processors received the update.
    pub fn set_brownout(&self, app: &str, on: bool) -> usize {
        let current = match self.apps.lock().get(app) {
            Some(managed) => managed.overload,
            None => return 0,
        };
        self.set_overload_policy(
            app,
            OverloadPolicy {
                brownout: on,
                ..current
            },
        )
    }

    /// Sets the app's failure-detection policy and pushes the degraded
    /// mode into its client (effective on the next resilient call).
    pub fn set_health_policy(&self, app: &str, policy: HealthPolicy) {
        let mut apps = self.apps.lock();
        if let Some(managed) = apps.get_mut(app) {
            managed.health = policy;
            managed
                .registration
                .client
                .set_degraded_mode(policy.degraded);
        }
    }

    /// The app's current failure-detection policy.
    pub fn health_policy(&self, app: &str) -> Option<HealthPolicy> {
        self.apps.lock().get(app).map(|m| m.health)
    }

    /// Current replica endpoints of an app's destination service.
    fn replicas_of(&self, dst_service: &str) -> Vec<EndpointAddr> {
        self.store
            .service(dst_service)
            .map(|s| s.replicas.iter().map(|r| r.endpoint).collect())
            .unwrap_or_default()
    }

    /// Reconciles one app against the store's current AdnConfig and
    /// replica inventory. Returns the placement description.
    pub fn sync_app(&self, app: &str) -> Result<String, ControllerError> {
        // Bundle built before the apps lock (sampler lock ordering).
        let telemetry = self.hop_telemetry(app);
        let mut apps = self.apps.lock();
        let managed = apps
            .get_mut(app)
            .ok_or_else(|| cerr(format!("app {app:?} not registered")))?;
        let (version, config) = self
            .store
            .config(app)
            .ok_or_else(|| cerr(format!("no AdnConfig for {app:?}")))?;

        let compiled = compile_app(
            &config,
            managed.registration.request.clone(),
            managed.registration.response.clone(),
        )
        .map_err(cerr)?;
        let placement = place(
            &compiled.chain.elements,
            &compiled.constraints,
            &managed.registration.env,
        )
        .map_err(cerr)?;

        let replicas = self.replicas_of(&config.dst_service);
        let deployment = deploy(
            &compiled,
            &placement,
            &self.net,
            self.link.clone(),
            managed.registration.service.clone(),
            &replicas,
            &self.alloc,
            Some(telemetry),
            Some(self.clock.clone()),
        )
        .map_err(cerr)?;

        let description = placement.describe(&compiled.chain.elements);

        // Hot logic update (paper §5.2): where the new deployment hosts a
        // group with the same elements and table layouts as the old one,
        // carry the element state over before traffic switches. Traffic
        // processed between the snapshot and the switchover updates the old
        // state only; for strictly lossless moves use
        // `reconfig::migrate_processor` (same-address takeover).
        if let (Some(old_dep), Some(old_comp)) =
            (managed.deployment.as_ref(), managed.compiled.as_ref())
        {
            transfer_matching_state(old_dep, old_comp, &deployment, &compiled);
        }

        // Make before break: install the new path, then retire the old.
        managed
            .registration
            .client
            .install_chain(deployment.client_chain);
        managed.registration.client.set_via(deployment.entry);
        for server in &managed.registration.servers {
            // Each replica gets its own instance of the server-side chain.
            let chain = {
                let mut c = adn_rpc::engine::EngineChain::new();
                for group in &deployment.groups {
                    if group.site == crate::placement::Site::ServerLib {
                        let (start, end) = group.range;
                        for (offset, element) in
                            compiled.chain.elements[start..end].iter().enumerate()
                        {
                            let engine = crate::deploy::build_engine(
                                element,
                                group.site,
                                &compiled,
                                start + offset,
                                &replicas,
                            )
                            .map_err(cerr)?;
                            c.push(engine);
                        }
                    }
                }
                c
            };
            server.install_chain(chain);
        }

        // The Deployment struct moves chains out; rebuild group handles by
        // replacing the stored deployment (old processors retire lazily).
        let old = managed.deployment.replace(Deployment {
            entry: deployment.entry,
            client_chain: adn_rpc::engine::EngineChain::new(),
            server_chain: adn_rpc::engine::EngineChain::new(),
            groups: deployment.groups,
            placement: deployment.placement,
        });
        managed.compiled = Some(compiled);
        managed.version = version;
        // Fresh processors spawn with the permissive default; re-apply the
        // app's persisted overload policy before traffic reaches them.
        if managed.overload != OverloadPolicy::default() {
            if let Some(dep) = managed.deployment.as_ref() {
                for handle in dep.processors() {
                    handle.set_overload(managed.overload);
                }
            }
        }
        drop(apps);

        if let Some(old) = old {
            for group in old.groups {
                if let Some(handle) = group.handle {
                    handle.stop_when_idle();
                }
            }
        }
        Ok(description)
    }

    /// Handles one cluster event.
    pub fn process_event(&self, event: &ClusterEvent) -> Result<(), ControllerError> {
        match event {
            ClusterEvent::ConfigUpdated { app, .. } => {
                self.sync_app(app)?;
            }
            ClusterEvent::ReplicaAdded { service, .. }
            | ClusterEvent::ReplicaRemoved { service, .. } => {
                // Re-sync every app targeting this service so ROUTE replica
                // sets rebind.
                let affected: Vec<String> = {
                    let apps = self.apps.lock();
                    apps.keys()
                        .filter(|app| {
                            self.store
                                .config(app)
                                .map(|(_, c)| &c.dst_service == service)
                                .unwrap_or(false)
                        })
                        .cloned()
                        .collect()
                };
                for app in affected {
                    self.sync_app(&app)?;
                }
            }
            ClusterEvent::NodeAdded { .. } => {
                // Inventory growth feeds placement on the next sync.
            }
            ClusterEvent::Load(report) => {
                // Every heartbeat updates the sliding-window cluster view;
                // apps with autoscale enabled are then checked for breach.
                self.view.observe(ProcessorObservation {
                    endpoint: report.endpoint,
                    processed: report.processed,
                    queue_depth: report.queue_depth,
                    shed: report.shed,
                    expired_drops: report.expired_drops,
                    elements: report.elements.clone(),
                });
                self.maybe_autoscale(report.endpoint)?;
            }
            ClusterEvent::ProcessorDown { endpoint } => {
                // Fail over every app hosting the dead processor.
                let affected: Vec<String> = {
                    let apps = self.apps.lock();
                    apps.iter()
                        .filter(|(_, m)| {
                            m.deployment
                                .as_ref()
                                .is_some_and(|d| d.processors().any(|p| p.addr() == *endpoint))
                        })
                        .map(|(app, _)| app.clone())
                        .collect()
                };
                for app in affected {
                    self.fail_over_app(&app)?;
                }
            }
        }
        Ok(())
    }

    /// Checks the breached endpoint against its owning app's autoscale
    /// policy and, at most once per cooldown, shards the group out.
    ///
    /// Exactly-once per breach episode: the group's handle is `take()`n
    /// into [`scale_out`], so a second breach report finds no handle (the
    /// scaled group no longer heartbeats through `report_loads`) and the
    /// `scaled` slot plus cooldown guard refuse re-entry regardless.
    fn maybe_autoscale(&self, endpoint: EndpointAddr) -> Result<(), ControllerError> {
        // Find the app that autoscales this endpoint (locks: apps only).
        let app = {
            let apps = self.apps.lock();
            apps.iter()
                .find(|(_, m)| {
                    m.autoscale.is_some()
                        && m.scaled.is_none()
                        && m.deployment.as_ref().is_some_and(|d| {
                            d.groups
                                .iter()
                                .any(|g| g.handle.as_ref().is_some_and(|h| h.addr() == endpoint))
                        })
                })
                .map(|(app, _)| app.clone())
        };
        let Some(app) = app else {
            return Ok(());
        };
        let telemetry = self.hop_telemetry(&app);
        let replicas = match self.store.config(&app) {
            Some((_, config)) => self.replicas_of(&config.dst_service),
            None => Vec::new(),
        };

        let mut apps = self.apps.lock();
        let Some(managed) = apps.get_mut(&app) else {
            return Ok(());
        };
        let Some(cfg) = managed.autoscale.clone() else {
            return Ok(());
        };
        if managed.scaled.is_some() {
            return Ok(());
        }
        if let Some(last) = managed.last_scaleout {
            if self.clock.now().saturating_sub(last) < cfg.policy.cooldown {
                return Ok(());
            }
        }
        if !cfg.policy.breached(&self.view, endpoint) {
            return Ok(());
        }
        let Some(compiled) = managed.compiled.as_ref() else {
            return Ok(());
        };
        let seed = compiled.seed;
        let service = managed.registration.service.clone();
        let Some(deployment) = managed.deployment.as_mut() else {
            return Ok(());
        };
        let Some(group) = deployment
            .groups
            .iter_mut()
            .find(|g| g.handle.as_ref().is_some_and(|h| h.addr() == endpoint))
        else {
            return Ok(());
        };
        let Some(old) = group.handle.take() else {
            return Ok(());
        };
        let (start, end) = group.range;
        let request_next = group.request_next;
        let scaled = scale_out(
            old,
            &compiled.chain.elements[start..end],
            cfg.shard_field,
            cfg.shards,
            seed,
            &replicas,
            &self.net,
            self.link.clone(),
            service,
            request_next,
            &self.alloc,
            Some(telemetry),
        )
        .map_err(cerr)?;
        // New shard instances spawn permissive; inherit the app's policy.
        if managed.overload != OverloadPolicy::default() {
            for instance in &scaled.instances {
                instance.set_overload(managed.overload);
            }
        }
        managed.scaled = Some(scaled);
        managed.last_scaleout = Some(self.clock.now());
        managed.scaleouts += 1;
        drop(apps);
        // The old endpoint now fronts the shard router; its congested
        // observations no longer describe a schedulable processor.
        self.view.forget(endpoint);
        Ok(())
    }

    /// Drains all pending store events, reconciling as needed.
    pub fn run_pending(
        &self,
        events: &crossbeam::channel::Receiver<ClusterEvent>,
    ) -> Result<usize, ControllerError> {
        let mut handled = 0;
        while let Ok(event) = events.try_recv() {
            self.process_event(&event)?;
            handled += 1;
        }
        Ok(handled)
    }

    /// Placement description of the app's current deployment.
    pub fn describe_app(&self, app: &str) -> Option<String> {
        let apps = self.apps.lock();
        let managed = apps.get(app)?;
        let deployment = managed.deployment.as_ref()?;
        let compiled = managed.compiled.as_ref()?;
        Some(deployment.placement.describe(&compiled.chain.elements))
    }

    /// Publishes one telemetry round for an app: every processor's counter
    /// deltas become [`adn_cluster::LoadReport`]s in the store (paper §5.3:
    /// processors "periodically send reports ... back to the controller").
    /// Returns the number of reports published.
    pub fn report_loads(&self, app: &str) -> usize {
        let stats = self.processor_stats(app);
        let mut published = 0;
        for (endpoint, snap) in stats {
            let processed = snap.requests + snap.responses;
            self.store.report_load(adn_cluster::LoadReport {
                endpoint,
                processed,
                rejected: snap.dropped + snap.aborted,
                // Utilization proxy: share of handled frames that were
                // forwarded (a saturated processor would drop/abort more);
                // a real deployment would sample CPU time instead.
                utilization: if processed == 0 {
                    0.0
                } else {
                    snap.forwarded as f64 / processed as f64
                },
                queue_depth: snap.queue_depth,
                shed: snap.shed,
                expired_drops: snap.expired_drops,
                elements: self.registry.snapshot_for(app, endpoint),
            });
            published += 1;
        }
        published
    }

    /// Stats from every processor of an app (endpoint, snapshot).
    pub fn processor_stats(
        &self,
        app: &str,
    ) -> Vec<(EndpointAddr, adn_dataplane::processor::StatsSnapshot)> {
        let apps = self.apps.lock();
        let Some(managed) = apps.get(app) else {
            return Vec::new();
        };
        let Some(deployment) = managed.deployment.as_ref() else {
            return Vec::new();
        };
        deployment
            .processors()
            .map(|p| (p.addr(), p.stats()))
            .collect()
    }

    /// Snapshots every live processor group's element state into the
    /// controller's checkpoint map (the images a failover replacement is
    /// restored from). Returns the number of groups checkpointed; groups
    /// whose processor is unresponsive keep their previous checkpoint.
    pub fn checkpoint_app(&self, app: &str) -> usize {
        let mut apps = self.apps.lock();
        let Some(managed) = apps.get_mut(app) else {
            return 0;
        };
        let Some(deployment) = managed.deployment.as_ref() else {
            return 0;
        };
        let mut taken = 0;
        for group in &deployment.groups {
            let Some(handle) = group.handle.as_ref() else {
                continue;
            };
            if let Ok(images) = handle.export_state() {
                managed.checkpoints.insert(group.range.0, images);
                taken += 1;
            }
        }
        taken
    }

    /// Endpoints of the app's processors whose heartbeat age exceeds the
    /// app's [`HealthPolicy`] timeout.
    pub fn dead_processors(&self, app: &str) -> Vec<EndpointAddr> {
        let apps = self.apps.lock();
        let Some(managed) = apps.get(app) else {
            return Vec::new();
        };
        let Some(deployment) = managed.deployment.as_ref() else {
            return Vec::new();
        };
        deployment
            .processors()
            .filter(|p| p.heartbeat_age() > managed.health.heartbeat_timeout)
            .map(|p| p.addr())
            .collect()
    }

    /// Crashes one of the app's processors (chaos testing): it stops
    /// heartbeating and blackholes traffic but stays attached to the
    /// fabric, exactly like a hung process. Returns false if no processor
    /// of the app owns `endpoint`.
    pub fn kill_processor(&self, app: &str, endpoint: EndpointAddr) -> bool {
        let apps = self.apps.lock();
        let Some(managed) = apps.get(app) else {
            return false;
        };
        let Some(deployment) = managed.deployment.as_ref() else {
            return false;
        };
        for p in deployment.processors() {
            if p.addr() == endpoint {
                p.kill();
                return true;
            }
        }
        false
    }

    /// One failure-detector sweep: reports every newly-dead processor of
    /// the app to the cluster store (whose watchers — including this
    /// controller via [`Controller::process_event`] — drive failover).
    /// Returns the endpoints reported.
    pub fn monitor_health(&self, app: &str) -> Vec<EndpointAddr> {
        let dead = self.dead_processors(app);
        for &endpoint in &dead {
            self.store.report_processor_down(endpoint);
        }
        dead
    }

    /// Re-places every heartbeat-dead processor group of the app: rebuilds
    /// the group's engines, restores the latest checkpoint, takes over the
    /// dead processor's flat address on the fabric, and rejoins the chain
    /// at the recorded next hop. The old handle is dropped (its crashed
    /// thread exits on the stop signal). Returns the replaced endpoints.
    pub fn fail_over_app(&self, app: &str) -> Result<Vec<EndpointAddr>, ControllerError> {
        // Bundle built before the apps lock (sampler lock ordering).
        let telemetry = self.hop_telemetry(app);
        let mut apps = self.apps.lock();
        let managed = apps
            .get_mut(app)
            .ok_or_else(|| cerr(format!("app {app:?} not registered")))?;
        let timeout = managed.health.heartbeat_timeout;
        let replicas = match self.store.config(app) {
            Some((_, config)) => self.replicas_of(&config.dst_service),
            None => Vec::new(),
        };
        let ManagedApp {
            registration,
            compiled,
            deployment,
            checkpoints,
            overload,
            ..
        } = managed;
        let overload = *overload;
        let (Some(compiled), Some(deployment)) = (compiled.as_ref(), deployment.as_mut()) else {
            return Ok(Vec::new());
        };
        let mut replaced = Vec::new();
        for group in deployment.groups.iter_mut() {
            let Some(handle) = group.handle.as_ref() else {
                continue;
            };
            if handle.heartbeat_age() <= timeout {
                continue;
            }
            let addr = handle.addr();
            let (start, end) = group.range;
            let mut chain = EngineChain::new();
            for (offset, element) in compiled.chain.elements[start..end].iter().enumerate() {
                chain.push(
                    build_engine(element, group.site, compiled, start + offset, &replicas)
                        .map_err(cerr)?,
                );
            }
            if let Some(images) = checkpoints.get(&start) {
                chain
                    .import_states(images)
                    .map_err(|e| cerr(format!("checkpoint restore at {addr:#x}: {e}")))?;
            }
            // Same-address takeover: attaching the successor atomically
            // redirects all new frames; in-flight state since the last
            // checkpoint is lost (crash semantics, not migration).
            let frames = self.net.attach(addr);
            let successor = spawn_processor(
                ProcessorConfig {
                    addr,
                    service: registration.service.clone(),
                    chain,
                    request_next: group.request_next,
                    response_next: NextHop::Dst,
                    initial_flows: Default::default(),
                    telemetry: Some(telemetry.clone()),
                    clock: Some(self.clock.clone()),
                    batch_max: DEFAULT_BATCH_MAX,
                    // Failover replacements keep the app's overload policy:
                    // a crash must not silently disable admission control.
                    overload,
                    inbox_capacity: None,
                },
                self.link.clone(),
                frames,
            );
            // Dropping the old handle signals its (crashed) thread to
            // exit; it never touched the fabric again after the kill.
            group.handle = Some(successor);
            replaced.push(addr);
        }
        Ok(replaced)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_cluster::resources::{
        AdnConfig, ElementSpec, NodeId, NodeSpec, PlacementConstraint, ReplicaSpec, ServiceSpec,
    };
    use adn_rpc::engine::EngineChain;
    use adn_rpc::message::RpcMessage;
    use adn_rpc::runtime::{spawn_server, ServerConfig};
    use adn_rpc::schema::MethodDef;
    use adn_rpc::value::{Value, ValueType};

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn node(id: u32) -> NodeSpec {
        NodeSpec {
            id: NodeId(id),
            name: format!("n{id}"),
            cpu_slots: 8,
            ebpf_capable: false,
            smartnic: None,
        }
    }

    struct World {
        store: ClusterStore,
        controller: Controller,
        client: Arc<RpcClient>,
        svc: Arc<ServiceSchema>,
        events: crossbeam::channel::Receiver<ClusterEvent>,
        server_tags: Vec<u64>,
        _servers: Vec<Arc<ServerHandle>>,
    }

    fn world(replica_endpoints: &[u64]) -> World {
        world_with_clock(replica_endpoints, adn_rpc::clock::system())
    }

    fn world_with_clock(replica_endpoints: &[u64], clock: Arc<dyn Clock>) -> World {
        let (req, resp) = schemas();
        let svc = Arc::new(
            ServiceSchema::new(
                "Storage",
                vec![MethodDef {
                    id: 1,
                    name: "Put".into(),
                    request: req.clone(),
                    response: resp.clone(),
                }],
            )
            .unwrap(),
        );
        let store = ClusterStore::new();
        let events = store.watch();
        store.add_node(node(1));
        store.add_node(node(2));
        store.add_service(ServiceSpec {
            name: "storage".into(),
            replicas: replica_endpoints
                .iter()
                .map(|&endpoint| ReplicaSpec {
                    node: NodeId(2),
                    endpoint,
                })
                .collect(),
        });

        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let mut servers = Vec::new();
        for &endpoint in replica_endpoints {
            let frames = net.attach(endpoint);
            let svc2 = svc.clone();
            servers.push(Arc::new(spawn_server(
                ServerConfig {
                    addr: endpoint,
                    service: svc.clone(),
                    chain: EngineChain::new(),
                },
                link.clone(),
                frames,
                Box::new(move |request| {
                    let m = svc2.method_by_id(1).unwrap();
                    let mut r = RpcMessage::response_to(request, m.response.clone());
                    r.set("ok", Value::Bool(true));
                    r.set("payload", Value::Bytes(vec![endpoint as u8]));
                    r
                }),
            )));
        }

        let client_frames = net.attach(100);
        let client = RpcClient::new(
            100,
            link.clone(),
            client_frames,
            svc.clone(),
            EngineChain::new(),
        );

        let controller =
            Controller::with_link_and_clock(store.clone(), net, link.clone(), 10_000, clock);
        controller.register_app(
            "shop",
            AppRegistration {
                request: req,
                response: resp,
                service: svc.clone(),
                client: client.clone(),
                servers: servers.clone(),
                env: Environment {
                    client_node: node(1),
                    server_node: node(2),
                    switch: None,
                    allow_in_app: true,
                },
            },
        );

        World {
            store,
            controller,
            client,
            svc,
            events,
            server_tags: replica_endpoints.to_vec(),
            _servers: servers,
        }
    }

    fn call(w: &World, oid: u64, user: &str) -> Result<RpcMessage, adn_rpc::RpcError> {
        let m = w.svc.method_by_id(1).unwrap();
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", oid)
            .with("username", user)
            .with("payload", vec![1u8; 8]);
        w.client.call(msg, w.server_tags[0])
    }

    fn config(chain: Vec<ElementSpec>) -> AdnConfig {
        AdnConfig {
            app: "shop".into(),
            src_service: "frontend".into(),
            dst_service: "storage".into(),
            chain,
            seed: 3,
        }
    }

    fn spec(name: &str, constraints: Vec<PlacementConstraint>) -> ElementSpec {
        ElementSpec {
            element: name.into(),
            source: None,
            args: vec![],
            constraints,
        }
    }

    #[test]
    fn config_event_deploys_the_chain() {
        let w = world(&[200]);
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        let handled = w.controller.run_pending(&w.events).unwrap();
        assert!(handled >= 1);
        assert!(call(&w, 1, "alice").is_ok());
        assert!(call(&w, 1, "bob").is_err());
        let desc = w.controller.describe_app("shop").unwrap();
        assert!(desc.contains("Sidecar"), "{desc}");
    }

    #[test]
    fn config_update_changes_behavior() {
        let w = world(&[200]);
        w.store.apply_config(config(vec![spec("Acl", vec![])]));
        w.controller.run_pending(&w.events).unwrap();
        assert!(call(&w, 1, "bob").is_err());

        // New config without the ACL: bob gets through.
        w.store.apply_config(config(vec![spec("Logging", vec![])]));
        w.controller.run_pending(&w.events).unwrap();
        assert!(call(&w, 1, "bob").is_ok());
    }

    #[test]
    fn replica_event_rebinds_load_balancer() {
        let w = world(&[200, 201]);
        // Start with only replica 200 known to the store? Both are known;
        // apply LB config and check spread, then remove one and verify all
        // traffic lands on the survivor.
        w.store.apply_config(config(vec![spec(
            "LoadBalancer",
            vec![PlacementConstraint::OffApp],
        )]));
        w.controller.run_pending(&w.events).unwrap();

        let mut seen = std::collections::HashSet::new();
        for i in 0..30 {
            let resp = call(&w, i, "alice").unwrap();
            seen.insert(resp.get("payload").unwrap().as_bytes().unwrap()[0]);
        }
        assert_eq!(seen.len(), 2);

        w.store.remove_replica("storage", 201).unwrap();
        w.controller.run_pending(&w.events).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..30 {
            let resp = call(&w, i, "alice").unwrap();
            seen.insert(resp.get("payload").unwrap().as_bytes().unwrap()[0]);
        }
        assert_eq!(seen, std::collections::HashSet::from([200_u8]));
    }

    #[test]
    fn processor_stats_visible_through_controller() {
        let w = world(&[200]);
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        for i in 0..5 {
            let _ = call(&w, i, "alice");
        }
        let stats = w.controller.processor_stats("shop");
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.requests, 5);
    }

    #[test]
    fn config_resync_carries_state_for_unchanged_groups() {
        let w = world(&[200]);
        // Quota sheds after `limit` requests per user; its `used` counters
        // are the state that must survive a config re-apply.
        let mut quota = spec("Quota", vec![PlacementConstraint::OffApp]);
        quota.args = vec![("limit".into(), serde_json::json!(10))];
        w.store.apply_config(config(vec![quota.clone()]));
        w.controller.run_pending(&w.events).unwrap();
        for i in 0..6 {
            call(&w, i, "alice").unwrap();
        }

        // Re-apply the same config (e.g. an unrelated metadata change).
        w.store.apply_config(config(vec![quota]));
        w.controller.run_pending(&w.events).unwrap();

        // 4 more requests reach the limit of 10; the 11th sheds. If state
        // had been lost, alice would have 10 fresh requests available.
        for i in 0..4 {
            call(&w, 100 + i, "alice").unwrap_or_else(|e| panic!("call {i}: {e}"));
        }
        assert!(
            call(&w, 999, "alice").is_err(),
            "quota counters must survive the re-deploy"
        );
    }

    #[test]
    fn telemetry_reports_reach_the_store() {
        let w = world(&[200]);
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        for i in 0..4 {
            let _ = call(&w, i, "alice");
        }
        let watcher = w.store.watch();
        assert_eq!(w.controller.report_loads("shop"), 1);
        match watcher.try_recv().unwrap() {
            ClusterEvent::Load(report) => {
                assert_eq!(report.processed, 8, "4 requests + 4 responses");
                assert_eq!(report.rejected, 0);
            }
            other => panic!("expected a load report, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_app_errors() {
        let w = world(&[200]);
        assert!(w.controller.sync_app("ghost").is_err());
    }

    fn lenient_health(w: &World) {
        w.controller.set_health_policy(
            "shop",
            HealthPolicy {
                heartbeat_timeout: Duration::from_millis(100),
                degraded: DegradedMode::FailClosed,
            },
        );
    }

    fn wait_dead(w: &World) -> Vec<EndpointAddr> {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let dead = w.controller.dead_processors("shop");
            if !dead.is_empty() || std::time::Instant::now() > deadline {
                return dead;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn killed_processor_is_detected_and_failed_over() {
        let w = world(&[200]);
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        lenient_health(&w);
        assert!(call(&w, 1, "alice").is_ok());

        let endpoint = w.controller.processor_stats("shop")[0].0;
        assert!(w.controller.kill_processor("shop", endpoint));
        assert_eq!(wait_dead(&w), vec![endpoint]);

        // A detector sweep publishes ProcessorDown; draining the event
        // stream re-places the group at the same address.
        assert_eq!(w.controller.monitor_health("shop"), vec![endpoint]);
        assert!(w.controller.run_pending(&w.events).unwrap() >= 1);
        assert!(w.controller.dead_processors("shop").is_empty());
        assert!(call(&w, 2, "alice").is_ok());
        assert!(
            call(&w, 2, "bob").is_err(),
            "ACL must still be enforced after failover"
        );
    }

    #[test]
    fn failover_restores_checkpointed_state() {
        let w = world(&[200]);
        let mut quota = spec("Quota", vec![PlacementConstraint::OffApp]);
        quota.args = vec![("limit".into(), serde_json::json!(10))];
        w.store.apply_config(config(vec![quota]));
        w.controller.run_pending(&w.events).unwrap();
        lenient_health(&w);
        for i in 0..6 {
            call(&w, i, "alice").unwrap();
        }
        assert_eq!(w.controller.checkpoint_app("shop"), 1);

        let endpoint = w.controller.processor_stats("shop")[0].0;
        assert!(w.controller.kill_processor("shop", endpoint));
        assert!(!wait_dead(&w).is_empty());
        assert_eq!(w.controller.fail_over_app("shop").unwrap(), vec![endpoint]);

        // 6 of alice's 10 were used before the crash and restored from the
        // checkpoint: 4 remain, the 5th sheds.
        for i in 0..4 {
            call(&w, 100 + i, "alice").unwrap_or_else(|e| panic!("call {i}: {e}"));
        }
        assert!(
            call(&w, 999, "alice").is_err(),
            "quota counters must survive failover"
        );
    }

    fn load(endpoint: EndpointAddr, processed: u64, queue_depth: u64) -> adn_cluster::LoadReport {
        adn_cluster::LoadReport {
            endpoint,
            processed,
            rejected: 0,
            utilization: 0.5,
            queue_depth,
            shed: 0,
            expired_drops: 0,
            elements: vec![],
        }
    }

    /// The autoscale cooldown anchor lives on the controller's clock, not
    /// the wall clock: a breach inside the window is refused, and jumping
    /// the virtual clock past the window (no sleeping) re-arms it.
    #[test]
    fn autoscale_cooldown_gates_on_the_virtual_clock() {
        let clock = adn_rpc::clock::VirtualClock::shared();
        let w = world_with_clock(&[200], clock.clone());
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        assert!(call(&w, 1, "alice").is_ok());
        let entry = w.controller.processor_stats("shop")[0].0;

        let cooldown = Duration::from_secs(5);
        w.controller.enable_autoscale(
            "shop",
            AutoscaleConfig {
                policy: LoadAwarePolicy {
                    queue_depth_threshold: 2,
                    cooldown,
                    ..LoadAwarePolicy::default()
                },
                shard_field: 1, // username
                shards: 2,
            },
        );
        // Seed the cooldown anchor at virtual-now, as if a scale-out had
        // just happened (the state a scale-in hands back): the guard — and
        // only the guard — must refuse the next breach.
        {
            let mut apps = w.controller.apps.lock();
            apps.get_mut("shop").unwrap().last_scaleout = Some(clock.now());
        }

        // A breach inside the cooldown window is refused.
        w.store.report_load(load(entry, 10, 100));
        w.controller.run_pending(&w.events).unwrap();
        assert_eq!(w.controller.scaleout_count("shop"), 0, "inside cooldown");

        // Jump virtual time past the window; the same breach now scales.
        clock.advance(cooldown + Duration::from_millis(1));
        w.store.report_load(load(entry, 20, 100));
        w.controller.run_pending(&w.events).unwrap();
        assert_eq!(w.controller.scaleout_count("shop"), 1, "cooldown expired");
        assert!(call(&w, 2, "alice").is_ok());
        assert!(call(&w, 3, "bob").is_err(), "ACL enforced on shards");
    }

    /// A sustained shed rate in the heartbeat reports is a capacity
    /// breach: the autoscaler must react to it even when queue depth and
    /// p99 look healthy (the whole point of shedding is that they will).
    #[test]
    fn shed_rate_breach_triggers_autoscale() {
        let clock = adn_rpc::clock::VirtualClock::shared();
        let w = world_with_clock(&[200], clock.clone());
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        assert!(call(&w, 1, "alice").is_ok());
        let entry = w.controller.processor_stats("shop")[0].0;

        w.controller.enable_autoscale(
            "shop",
            AutoscaleConfig {
                policy: LoadAwarePolicy {
                    // Queue depth and p99 can never trip here; only the
                    // shed rate can.
                    queue_depth_threshold: u64::MAX,
                    p99_threshold_ns: u64::MAX,
                    shed_rate_threshold: 5,
                    cooldown: Duration::from_millis(1),
                },
                shard_field: 1, // username
                shards: 2,
            },
        );

        // First report seeds the window; a single observation has no rate.
        w.store.report_load(adn_cluster::LoadReport {
            shed: 0,
            ..load(entry, 10, 0)
        });
        w.controller.run_pending(&w.events).unwrap();
        assert_eq!(w.controller.scaleout_count("shop"), 0, "no rate yet");

        // 40 sheds + 10 expired drops over 2 s = 25/s > 5/s: scale out.
        clock.advance(Duration::from_secs(2));
        w.store.report_load(adn_cluster::LoadReport {
            shed: 40,
            expired_drops: 10,
            ..load(entry, 20, 0)
        });
        w.controller.run_pending(&w.events).unwrap();
        assert_eq!(w.controller.scaleout_count("shop"), 1, "shed rate breach");
        assert!(call(&w, 2, "alice").is_ok(), "service survives scale-out");
    }

    /// The brownout knob: flipping it refuses Sheddable-stamped requests
    /// at the entry processor with zero backlog, leaves unstamped
    /// (Normal) traffic untouched, and flipping it back restores service.
    #[test]
    fn brownout_sheds_sheddable_traffic_and_is_reversible() {
        use adn_wire::header::{OverloadContext, Priority};

        let w = world(&[200]);
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        assert!(call(&w, 1, "alice").is_ok());

        let sheddable_call = |oid: u64| {
            let m = w.svc.method_by_id(1).unwrap();
            let mut msg = RpcMessage::request(0, 1, m.request.clone())
                .with("object_id", oid)
                .with("username", "alice")
                .with("payload", vec![1u8; 8]);
            // A generous budget: only the priority class matters here.
            msg.deadline = Some(OverloadContext::root(
                Duration::from_secs(5).as_nanos() as u64,
                Priority::Sheddable,
            ));
            w.client.call(msg, w.server_tags[0])
        };

        // Off (default): sheddable traffic flows.
        assert!(sheddable_call(2).is_ok());

        assert_eq!(w.controller.set_brownout("shop", true), 1);
        match sheddable_call(3) {
            Err(adn_rpc::RpcError::Shed { .. }) => {}
            other => panic!("expected fast-fail shed, got {other:?}"),
        }
        // Unstamped traffic is Normal priority: admitted through brownout.
        assert!(call(&w, 4, "alice").is_ok());

        assert_eq!(w.controller.set_brownout("shop", false), 1);
        assert!(sheddable_call(5).is_ok(), "brownout is reversible");
    }

    /// Heartbeat staleness is pure clock arithmetic: with the cluster on a
    /// virtual clock, a crashed processor is declared dead by advancing
    /// time in one controlled jump — no sleep-polling for a detector.
    #[test]
    fn crashed_processor_staleness_follows_virtual_clock_jumps() {
        let clock = adn_rpc::clock::VirtualClock::shared();
        let w = world_with_clock(&[200], clock.clone());
        w.store
            .apply_config(config(vec![spec("Acl", vec![PlacementConstraint::OffApp])]));
        w.controller.run_pending(&w.events).unwrap();
        lenient_health(&w); // heartbeat_timeout = 100ms
        assert!(call(&w, 1, "alice").is_ok());
        assert!(w.controller.dead_processors("shop").is_empty());

        let endpoint = w.controller.processor_stats("shop")[0].0;
        assert!(w.controller.kill_processor("shop", endpoint));
        // Wait (bounded by thread latency, not wall time) for the serve
        // loop to observe the crash; after that it never beats again.
        while w.controller.checkpoint_app("shop") > 0 {
            std::thread::yield_now();
        }
        // Virtual time hasn't moved, so the corpse is not yet stale...
        assert!(w.controller.dead_processors("shop").is_empty());
        // ...one controlled jump past the timeout makes it exactly stale.
        clock.advance(Duration::from_millis(101));
        assert_eq!(w.controller.dead_processors("shop"), vec![endpoint]);

        // Failover replaces it; the successor beats at current virtual
        // time, so it is immediately live again without advancing.
        assert_eq!(w.controller.fail_over_app("shop").unwrap(), vec![endpoint]);
        assert!(w.controller.dead_processors("shop").is_empty());
        assert!(call(&w, 2, "alice").is_ok());
        assert!(call(&w, 2, "bob").is_err(), "ACL enforced after failover");
    }
}
