//! # adn-controller — the ADN control plane
//!
//! Paper §5.2: the controller is "a logically centralized component that
//! has global knowledge ... of the network topology, service locations, and
//! available ADN processors. It provisions network processing on available
//! processors. In response to workload changes and failures, it also
//! migrates and scales ADN elements."
//!
//! * [`compile`] — AdnConfig → typechecked, lowered, optimized chain.
//! * [`placement`] — the placement solver: a DP over the path-ordered
//!   processor sites (client RPC library → client kernel/NIC → switch →
//!   server NIC/kernel → server library, with sidecars on both hosts),
//!   under trust/co-location constraints and per-platform feasibility.
//!   The four configurations of the paper's Figure 2 fall out of this
//!   solver as the environment changes.
//! * [`deploy`] — materializes a placement: fuses same-site runs of
//!   elements, spawns processors, wires hop-by-hop forwarding, returns the
//!   chains to install into the client/server RPC libraries.
//! * [`reconfig`] — live operations: lossless processor migration
//!   (pause → snapshot → takeover → drain), keyed-state scale-out behind a
//!   shard router, and scale-in by state merge (paper §5.2).
//! * [`runtime`] — the event-driven controller: watches the cluster store
//!   and reacts to config updates, replica changes, and load reports.

pub mod compile;
pub mod deploy;
pub mod placement;
pub mod reconfig;
pub mod runtime;

pub use compile::{compile_app, compile_app_verified, CompileError, CompiledApp, VerifyLevel};
pub use deploy::{deploy, AddrAllocator, Deployment};
pub use placement::{
    place, place_for_class, place_whole_chain, place_with_policy, ClassPlacement, DpuSpec,
    ElementConstraints, Environment, PlaceError, Placement, ProcessorClass, Site,
};
pub use runtime::Controller;
