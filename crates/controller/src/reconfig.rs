//! Live reconfiguration: migration, scale-out, scale-in.
//!
//! Paper §5.2: "To migrate or scale out a load balancer, the controller can
//! copy over its state and start running a new instance; while reducing the
//! number of load balancer instances, it can merge their states. Some
//! reconfigurations may require us to put the network in intermediate
//! states to prevent transient disruptions."
//!
//! The migration protocol here is make-before-break and lossless:
//!
//! 1. **Pause** the old processor — frames queue, nothing is processed.
//! 2. **Snapshot** its per-engine state images.
//! 3. Build the successor with the imported state.
//! 4. **Take over the flat address** — attaching the successor to the same
//!    address atomically redirects all new frames.
//! 5. **Drain** — the old processor re-emits its queued frames onto the
//!    link; they land at the successor. Every in-flight message is
//!    processed exactly once, after the state it depends on has moved.
//! 6. Retire the old processor.

use std::sync::Arc;

use adn_backend::jit::compile_engine;
use adn_backend::native::{element_seed, CompileOpts};
use adn_backend::state::StateTable;
use adn_dataplane::processor::{
    spawn_processor, NextHop, ProcessorConfig, ProcessorHandle, DEFAULT_BATCH_MAX,
};
use adn_dataplane::scaleout::{spawn_sharded, ShardBy, ShardedConfig, ShardedHandle};
use adn_ir::element::{ElementIr, IrStmt, JoinStrategy};
use adn_rpc::engine::EngineChain;
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, InProcNetwork, Link};
use adn_telemetry::HopTelemetry;
use adn_wire::codec::{Decoder, Encoder};

use crate::deploy::AddrAllocator;

/// Reconfiguration failure.
#[derive(Debug)]
pub struct ReconfigError {
    pub message: String,
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ReconfigError {}

fn err(message: impl Into<String>) -> ReconfigError {
    ReconfigError {
        message: message.into(),
    }
}

/// Migrates a processor to a fresh instance (e.g. new logic or a new host
/// in a real deployment) at the same flat address, losing no messages.
/// `make_chain` builds the successor's chain; the old state is imported
/// into it before any message reaches it.
pub fn migrate_processor(
    old: ProcessorHandle,
    mut make_chain: impl FnMut() -> EngineChain,
    net: &InProcNetwork,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    request_next: NextHop,
) -> Result<ProcessorHandle, ReconfigError> {
    let addr = old.addr();
    // 1-2: pause and snapshot (element state AND in-flight NAT flows).
    old.pause();
    let images = old
        .export_state()
        .map_err(|e| err(format!("snapshot of {addr:#x}: {e}")))?;
    let flows = old.export_flows();
    // 3: successor with imported state.
    let mut chain = make_chain();
    chain
        .import_states(&images)
        .map_err(|e| err(format!("state import: {e}")))?;
    // 4: address takeover.
    let frames = net.attach(addr);
    let successor = spawn_processor(
        ProcessorConfig {
            addr,
            service,
            chain,
            request_next,
            response_next: NextHop::Dst,
            initial_flows: flows,
            telemetry: None,
            // The successor keeps the predecessor's (possibly virtual)
            // heartbeat time source across the migration.
            clock: Some(old.clock()),
            batch_max: DEFAULT_BATCH_MAX,
            overload: Default::default(),
            inbox_capacity: None,
        },
        link,
        frames,
    );
    // 5: drain queued frames to the successor.
    old.drain()
        .map_err(|e| err(format!("drain of {addr:#x}: {e}")))?;
    // 6: retire.
    old.stop();
    Ok(successor)
}

// ---------------------------------------------------------------------------
// State image surgery for scale-out / scale-in
// ---------------------------------------------------------------------------

/// Parses a NativeEngine state image into its tables.
fn decode_engine_image(
    element: &ElementIr,
    image: &[u8],
) -> Result<Vec<StateTable>, ReconfigError> {
    let mut dec = Decoder::new(image);
    let count = dec
        .get_varint()
        .map_err(|e| err(format!("image header: {e}")))? as usize;
    if count != element.tables.len() {
        return Err(err(format!(
            "element {} image has {count} tables, IR has {}",
            element.name,
            element.tables.len()
        )));
    }
    let mut tables = Vec::with_capacity(count);
    for layout in &element.tables {
        let bytes = dec
            .get_bytes()
            .map_err(|e| err(format!("table bytes: {e}")))?;
        let mut table = StateTable::new(adn_ir::TableIr {
            init_rows: vec![],
            ..layout.clone()
        });
        table
            .restore(bytes)
            .map_err(|e| err(format!("table restore: {e}")))?;
        tables.push(table);
    }
    Ok(tables)
}

/// Re-encodes tables into a NativeEngine state image.
fn encode_engine_image(tables: &[StateTable]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_varint(tables.len() as u64);
    for t in tables {
        enc.put_bytes(&t.snapshot());
    }
    enc.into_bytes()
}

/// Whether `table_idx` of `element` is keyed by the shard field: some
/// key-lookup join (or keyed update/delete) maps `shard_field` onto the
/// table's key column. Aligned tables partition by key; others replicate.
fn table_aligned_with(element: &ElementIr, table_idx: usize, shard_field: usize) -> bool {
    let key_cols = &element.tables[table_idx].key_columns;
    let [key_col] = key_cols.as_slice() else {
        return false; // composite/empty keys never partition
    };
    for stmt in element.all_stmts() {
        match stmt {
            IrStmt::Select {
                join: Some(join), ..
            } if join.table == table_idx => {
                if let JoinStrategy::KeyLookup { input_fields } = &join.strategy {
                    if input_fields.as_slice() == [shard_field] {
                        return true;
                    }
                }
            }
            IrStmt::Update {
                table,
                condition: Some(cond),
                ..
            }
            | IrStmt::Delete {
                table,
                condition: Some(cond),
            } if *table == table_idx && cond_matches_key_field(cond, *key_col, shard_field) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Whether a condition contains the conjunct `Col(key_col) == Field(field)`.
fn cond_matches_key_field(cond: &adn_ir::IrExpr, key_col: usize, field: usize) -> bool {
    use adn_ir::expr::IrBinOp;
    use adn_ir::IrExpr;
    match cond {
        IrExpr::Binary {
            op: IrBinOp::And,
            left,
            right,
        } => {
            cond_matches_key_field(left, key_col, field)
                || cond_matches_key_field(right, key_col, field)
        }
        IrExpr::Binary {
            op: IrBinOp::Eq,
            left,
            right,
        } => matches!(
            (left.as_ref(), right.as_ref()),
            (IrExpr::Col(c), IrExpr::Field(f)) | (IrExpr::Field(f), IrExpr::Col(c))
                if *c == key_col && *f == field
        ),
        _ => false,
    }
}

/// Splits one engine image into `shards` images. Tables keyed by the shard
/// field partition by `stable_hash(key) % shards` (matching the router);
/// other tables are replicated to every shard (safe for read-mostly state;
/// the caller is responsible for choosing a shard field that keys all
/// write-heavy tables).
pub fn partition_engine_image(
    element: &ElementIr,
    image: &[u8],
    shard_field: usize,
    shards: usize,
) -> Result<Vec<Vec<u8>>, ReconfigError> {
    let tables = decode_engine_image(element, image)?;
    let mut per_shard: Vec<Vec<StateTable>> = (0..shards).map(|_| Vec::new()).collect();
    for (ti, table) in tables.iter().enumerate() {
        if table_aligned_with(element, ti, shard_field) {
            let key_col = element.tables[ti].key_columns[0];
            let parts = table.partition_by_column(key_col, shards);
            for (s, part) in parts.into_iter().enumerate() {
                per_shard[s].push(part);
            }
        } else {
            for shard_tables in per_shard.iter_mut() {
                shard_tables.push(table.clone());
            }
        }
    }
    Ok(per_shard.iter().map(|t| encode_engine_image(t)).collect())
}

/// Merges shard engine images back into one (scale-in). Keyed tables union
/// by key; key-less tables concatenate.
pub fn merge_engine_images(
    element: &ElementIr,
    images: &[Vec<u8>],
) -> Result<Vec<u8>, ReconfigError> {
    let mut merged: Option<Vec<StateTable>> = None;
    for image in images {
        let tables = decode_engine_image(element, image)?;
        match &mut merged {
            None => merged = Some(tables),
            Some(acc) => {
                for (a, t) in acc.iter_mut().zip(&tables) {
                    a.merge_from(t);
                }
            }
        }
    }
    Ok(encode_engine_image(&merged.unwrap_or_default()))
}

/// A scaled-out processor group.
pub struct ScaledGroup {
    /// The shard router (serving the group's original address).
    pub router: ShardedHandle,
    /// The per-shard processors.
    pub instances: Vec<ProcessorHandle>,
}

/// Scales a single-processor group out to `shards` instances behind a shard
/// router that takes over the group's address (clients are untouched).
/// `elements` are the IR elements the old processor hosted (one engine
/// each, in order); `shard_field` is the request-schema field index the
/// router hashes. `telemetry` is cloned into each instance so the scaled
/// group keeps reporting element metrics.
#[allow(clippy::too_many_arguments)]
pub fn scale_out(
    old: ProcessorHandle,
    elements: &[ElementIr],
    shard_field: usize,
    shards: usize,
    seed: u64,
    replicas: &[EndpointAddr],
    net: &InProcNetwork,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    request_next: NextHop,
    alloc: &AddrAllocator,
    telemetry: Option<HopTelemetry>,
) -> Result<ScaledGroup, ReconfigError> {
    let addr = old.addr();
    // Pause + snapshot (element state and in-flight NAT flows).
    old.pause();
    let images = old
        .export_state()
        .map_err(|e| err(format!("snapshot of {addr:#x}: {e}")))?;
    let inherited_flows = old.export_flows();
    if images.len() != elements.len() {
        return Err(err("engine/image arity mismatch"));
    }

    // Partition each engine's state.
    let mut shard_images: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards];
    for (element, image) in elements.iter().zip(&images) {
        let parts = partition_engine_image(element, image, shard_field, shards)?;
        for (s, part) in parts.into_iter().enumerate() {
            shard_images[s].push(part);
        }
    }

    // Spawn instances with their shard of the state.
    let mut instances = Vec::with_capacity(shards);
    let mut instance_addrs = Vec::with_capacity(shards);
    for (s, images) in shard_images.into_iter().enumerate() {
        let mut chain = EngineChain::new();
        for (i, element) in elements.iter().enumerate() {
            chain.push(compile_engine(
                element,
                &CompileOpts {
                    // Distinct RNG stream per shard.
                    seed: element_seed(seed ^ ((s as u64 + 1) << 32), i),
                    replicas: replicas.to_vec(),
                    ..Default::default()
                },
            ));
        }
        chain
            .import_states(&images)
            .map_err(|e| err(format!("shard {s} import: {e}")))?;
        let instance_addr = alloc.alloc();
        let frames = net.attach(instance_addr);
        instances.push(spawn_processor(
            ProcessorConfig {
                addr: instance_addr,
                service: service.clone(),
                chain,
                request_next,
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: telemetry.clone(),
                clock: Some(old.clock()),
                batch_max: DEFAULT_BATCH_MAX,
                overload: Default::default(),
                inbox_capacity: None,
            },
            link.clone(),
            frames,
        ));
        instance_addrs.push(instance_addr);
    }

    // Router takes over the group's address, then the old processor drains.
    let router_frames = net.attach(addr);
    let router = spawn_sharded(
        ShardedConfig {
            addr,
            instances: instance_addrs,
            service,
            shard_by: ShardBy::RequestField(shard_field),
            inherited_flows,
        },
        link,
        router_frames,
    );
    old.drain()
        .map_err(|e| err(format!("drain of {addr:#x}: {e}")))?;
    old.stop();

    Ok(ScaledGroup { router, instances })
}

/// Scales a group back in: merges instance state into one processor that
/// takes over the router's address.
#[allow(clippy::too_many_arguments)]
pub fn scale_in(
    group: ScaledGroup,
    elements: &[ElementIr],
    seed: u64,
    replicas: &[EndpointAddr],
    net: &InProcNetwork,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    request_next: NextHop,
) -> Result<ProcessorHandle, ReconfigError> {
    let addr = group.router.addr();

    // Quiesce each instance: responses for its in-flight calls are
    // addressed to the instance's own endpoint, which retires with it, so
    // wait (processing continues) until its NAT flow table drains before
    // pausing. New requests keep arriving through the router during this
    // window, so quiescing is per-instance and bounded by one server RTT
    // once the router is stopped; stop the router first.
    group.router.stop_routing();
    for instance in &group.instances {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if instance.export_flows().is_empty() {
                instance.pause();
                if instance.export_flows().is_empty() {
                    break;
                }
                instance.resume();
            }
            if std::time::Instant::now() > deadline {
                return Err(err("instance failed to quiesce within 10s"));
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let mut per_element_images: Vec<Vec<Vec<u8>>> = vec![Vec::new(); elements.len()];
    let merged_flows = group.router.export_flows();
    for instance in &group.instances {
        let images = instance
            .export_state()
            .map_err(|e| err(format!("instance snapshot: {e}")))?;
        if images.len() != elements.len() {
            return Err(err("instance image arity mismatch"));
        }
        for (i, image) in images.into_iter().enumerate() {
            per_element_images[i].push(image);
        }
    }

    // Merge state per element.
    let mut chain = EngineChain::new();
    let mut merged_images = Vec::with_capacity(elements.len());
    for (i, element) in elements.iter().enumerate() {
        merged_images.push(merge_engine_images(element, &per_element_images[i])?);
        chain.push(compile_engine(
            element,
            &CompileOpts {
                seed: element_seed(seed, i),
                replicas: replicas.to_vec(),
                ..Default::default()
            },
        ));
    }
    chain
        .import_states(&merged_images)
        .map_err(|e| err(format!("merged import: {e}")))?;

    // The merged processor takes over the router's address. Requests the
    // router had queued but not yet sharded re-enter through the drain;
    // the router's residual inherited flows come along so even pre-scale-
    // out stragglers find their way home.
    let frames = net.attach(addr);
    let merged = spawn_processor(
        ProcessorConfig {
            addr,
            service,
            chain,
            request_next,
            response_next: NextHop::Dst,
            initial_flows: merged_flows,
            telemetry: None,
            // The merged processor keeps the shards' (possibly virtual)
            // heartbeat time source.
            clock: group.instances.first().map(|i| i.clock()),
            batch_max: DEFAULT_BATCH_MAX,
            overload: Default::default(),
            inbox_capacity: None,
        },
        link,
        frames,
    );
    // The router already stopped routing; re-emit anything left in its
    // queue to the (now merged-processor-owned) address, then retire all.
    group.router.drain();
    group.router.stop();
    for instance in group.instances {
        // Best-effort: the instances are retiring either way.
        let _ = instance.drain();
        instance.stop();
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;
    use adn_backend::native::compile_element;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::message::RpcMessage;
    use adn_rpc::runtime::{spawn_server, RpcClient, ServerConfig};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::value::{Value, ValueType};

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn service() -> Arc<ServiceSchema> {
        let (req, resp) = schemas();
        Arc::new(
            ServiceSchema::new(
                "S",
                vec![MethodDef {
                    id: 1,
                    name: "M".into(),
                    request: req,
                    response: resp,
                }],
            )
            .unwrap(),
        )
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    const COUNTER: &str = r#"
        element Counter() {
            state hits(username: string key, n: u64);
            on request {
                INSERT INTO hits VALUES (input.username, 0);
                UPDATE hits SET n = hits.n + 1 WHERE hits.username == input.username;
                SELECT * FROM input;
            }
        }
    "#;

    struct Harness {
        net: InProcNetwork,
        link: Arc<dyn Link>,
        svc: Arc<ServiceSchema>,
        client: Arc<RpcClient>,
        _server: adn_rpc::runtime::ServerHandle,
    }

    fn harness() -> Harness {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();
        let frames = net.attach(200);
        let svc2 = svc.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 200,
                service: svc.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            frames,
            Box::new(move |req| {
                let m = svc2.method_by_id(1).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("ok", Value::Bool(true));
                resp
            }),
        );
        let client_frames = net.attach(100);
        let client = RpcClient::new(
            100,
            link.clone(),
            client_frames,
            svc.clone(),
            EngineChain::new(),
        );
        Harness {
            net,
            link,
            svc,
            client,
            _server: server,
        }
    }

    fn spawn_counter_processor(h: &Harness, addr: u64, element: &ElementIr) -> ProcessorHandle {
        let frames = h.net.attach(addr);
        let mut chain = EngineChain::new();
        chain.push(compile_engine(
            element,
            &CompileOpts {
                seed: 1,
                replicas: vec![],
                ..Default::default()
            },
        ));
        spawn_processor(
            ProcessorConfig {
                addr,
                service: h.svc.clone(),
                chain,
                request_next: NextHop::Fixed(200),
                response_next: NextHop::Dst,
                initial_flows: Default::default(),
                telemetry: None,
                clock: None,
                batch_max: DEFAULT_BATCH_MAX,
                overload: Default::default(),
                inbox_capacity: None,
            },
            h.link.clone(),
            frames,
        )
    }

    fn call(h: &Harness, oid: u64, user: &str) -> Result<RpcMessage, adn_rpc::RpcError> {
        let m = h.svc.method_by_id(1).unwrap();
        let msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", oid)
            .with("username", user);
        h.client
            .send_call(msg, 200)
            .and_then(|p| p.wait(Duration::from_secs(5)))
    }

    #[test]
    fn migration_preserves_state_and_loses_nothing() {
        let h = harness();
        h.client.set_via(Some(50));
        let element = lower(COUNTER);
        let old = spawn_counter_processor(&h, 50, &element);

        for i in 0..5 {
            call(&h, i, "alice").unwrap();
        }
        let element2 = element.clone();
        let new = migrate_processor(
            old,
            move || {
                let mut chain = EngineChain::new();
                chain.push(compile_engine(
                    &element2,
                    &CompileOpts {
                        seed: 2,
                        replicas: vec![],
                        ..Default::default()
                    },
                ));
                chain
            },
            &h.net,
            h.link.clone(),
            h.svc.clone(),
            NextHop::Fixed(200),
        )
        .unwrap();

        // Traffic keeps flowing after migration.
        for i in 5..10 {
            call(&h, i, "alice").unwrap();
        }
        // Counter state survived: 10 requests total for alice.
        let images = new.export_state().unwrap();
        let tables = decode_engine_image(&element, &images[0]).unwrap();
        let hits = &tables[0];
        let key = Value::Str("alice".into());
        let row = hits.lookup(hits.key_hash_of(&[&key])).unwrap();
        assert_eq!(row[1], Value::U64(10));
        new.stop();
    }

    #[test]
    fn scale_out_then_in_preserves_counts() {
        let h = harness();
        h.client.set_via(Some(50));
        let element = lower(COUNTER);
        let old = spawn_counter_processor(&h, 50, &element);
        let alloc = AddrAllocator::new(5000);

        let users = ["alice", "bob", "carol", "dave", "eve", "frank"];
        for (i, user) in users.iter().cycle().take(30).enumerate() {
            call(&h, i as u64, user).unwrap();
        }

        // Scale out to 3 shards on the username field (index 1).
        let group = scale_out(
            old,
            std::slice::from_ref(&element),
            1,
            3,
            9,
            &[],
            &h.net,
            h.link.clone(),
            h.svc.clone(),
            NextHop::Fixed(200),
            &alloc,
            None,
        )
        .unwrap();

        for (i, user) in users.iter().cycle().take(30).enumerate() {
            call(&h, 100 + i as u64, user).unwrap();
        }

        // Scale back in and verify merged counts: 60 total, 10 per user.
        let merged = scale_in(
            group,
            std::slice::from_ref(&element),
            9,
            &[],
            &h.net,
            h.link.clone(),
            h.svc.clone(),
            NextHop::Fixed(200),
        )
        .unwrap();

        for (i, user) in users.iter().cycle().take(6).enumerate() {
            call(&h, 200 + i as u64, user).unwrap();
        }

        let images = merged.export_state().unwrap();
        let tables = decode_engine_image(&element, &images[0]).unwrap();
        let hits = &tables[0];
        assert_eq!(hits.len(), users.len());
        for user in users {
            let key = Value::Str(user.into());
            let row = hits.lookup(hits.key_hash_of(&[&key])).unwrap();
            assert_eq!(row[1], Value::U64(11), "count for {user}");
        }
        merged.stop();
    }

    #[test]
    fn partition_images_align_with_router() {
        let element = lower(COUNTER);
        // Build a populated engine, export, partition, check shard homes.
        let mut engine = compile_element(
            &element,
            &CompileOpts {
                seed: 0,
                replicas: vec![],
                ..Default::default()
            },
        );
        use adn_rpc::engine::Engine as _;
        let (req, _) = schemas();
        for user in ["u1", "u2", "u3", "u4", "u5"] {
            let mut msg = RpcMessage::request(1, 1, req.clone())
                .with("object_id", 1u64)
                .with("username", user);
            engine.process(&mut msg);
        }
        let image = engine.export_state();
        let parts = partition_engine_image(&element, &image, 1, 2).unwrap();
        for (s, part) in parts.iter().enumerate() {
            let tables = decode_engine_image(&element, part).unwrap();
            for row in tables[0].scan() {
                let expected = adn_dataplane::scaleout::shard_of(&row[0], 2);
                assert_eq!(expected, s, "row {:?} in wrong shard", row[0]);
            }
        }
    }

    #[test]
    fn unaligned_tables_replicate() {
        // A table not keyed by the shard field replicates to all shards.
        let element = lower(
            r#"element E() {
                state t(object_id: u64 key, v: u64) init { (1, 10), (2, 20) };
                on request {
                    SELECT * FROM input JOIN t ON input.object_id == t.object_id;
                }
            }"#,
        );
        let engine = compile_element(
            &element,
            &CompileOpts {
                seed: 0,
                replicas: vec![],
                ..Default::default()
            },
        );
        use adn_rpc::engine::Engine as _;
        let image = engine.export_state();
        // Shard on username (field 1), but the table is keyed by object_id.
        let parts = partition_engine_image(&element, &image, 1, 3).unwrap();
        for part in &parts {
            let tables = decode_engine_image(&element, part).unwrap();
            assert_eq!(tables[0].len(), 2, "replicated tables keep all rows");
        }
    }
}
