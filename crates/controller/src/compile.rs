//! AdnConfig → compiled application network.
//!
//! Resolves each [`ElementSpec`] against the element catalog (or inline
//! source), typechecks against the application's schemas, lowers with bound
//! arguments, applies constraint flags, runs the optimizer, and returns
//! everything the deployer needs.

use std::sync::Arc;

use adn_cluster::resources::{AdnConfig, ElementSpec, PlacementConstraint};
use adn_dsl::diag::Diagnostic;
use adn_ir::{ChainIr, ElementIr, OptReport, PassConfig};
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::Value;

use crate::placement::ElementConstraints;

/// How much static verification runs during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// Skip the verifier entirely.
    Off,
    /// Run it; record diagnostics on the [`CompiledApp`] but never fail.
    #[default]
    Warn,
    /// Run it; any error-severity diagnostic fails compilation.
    Deny,
}

/// A compiled application network, ready for placement and deployment.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    /// Optimized chain.
    pub chain: ChainIr,
    /// Per-element constraints, reordered alongside the chain.
    pub constraints: Vec<ElementConstraints>,
    /// What the optimizer did.
    pub report: OptReport,
    /// Verifier findings (chain lints + optimizer audit), when the
    /// [`VerifyLevel`] asked for them.
    pub diagnostics: Vec<Diagnostic>,
    /// Seed for engine RNGs.
    pub seed: u64,
}

/// Compilation failure.
#[derive(Debug)]
pub enum CompileError {
    UnknownElement(String),
    Frontend(String, adn_dsl::FrontendError),
    Lower(String, adn_ir::LowerError),
    BadArgument(String, String),
    /// [`VerifyLevel::Deny`] and the verifier reported errors.
    Verification(Vec<Diagnostic>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnknownElement(name) => write!(f, "unknown element {name:?}"),
            CompileError::Frontend(name, e) => write!(f, "element {name}: {e}"),
            CompileError::Lower(name, e) => write!(f, "element {name}: {e}"),
            CompileError::BadArgument(name, what) => {
                write!(f, "element {name}: bad argument: {what}")
            }
            CompileError::Verification(diags) => {
                write!(f, "verification failed:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

fn json_to_value(v: &serde_json::Value) -> Option<Value> {
    match v {
        serde_json::Value::Bool(b) => Some(Value::Bool(*b)),
        serde_json::Value::Number(n) => {
            if let Some(u) = n.as_u64() {
                Some(Value::U64(u))
            } else if let Some(i) = n.as_i64() {
                Some(Value::I64(i))
            } else {
                n.as_f64().map(Value::F64)
            }
        }
        serde_json::Value::String(s) => Some(Value::Str(s.clone())),
        _ => None,
    }
}

/// Compiles one element spec.
pub fn compile_element_spec(
    spec: &ElementSpec,
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<ElementIr, CompileError> {
    let source: String = match &spec.source {
        Some(src) => src.clone(),
        None => adn_elements::dsl_source(&spec.element)
            .ok_or_else(|| CompileError::UnknownElement(spec.element.clone()))?
            .to_owned(),
    };
    let checked = adn_dsl::compile_frontend(&source, request, response)
        .map_err(|e| CompileError::Frontend(spec.element.clone(), e))?;
    let mut args = Vec::with_capacity(spec.args.len());
    for (name, json) in &spec.args {
        let value = json_to_value(json).ok_or_else(|| {
            CompileError::BadArgument(spec.element.clone(), format!("{name}: {json}"))
        })?;
        args.push((name.clone(), value));
    }
    let mut ir = adn_ir::lower_element(&checked, &args, request, response)
        .map_err(|e| CompileError::Lower(spec.element.clone(), e))?;
    for c in &spec.constraints {
        match c {
            PlacementConstraint::DropInsensitive => ir.drop_insensitive = true,
            PlacementConstraint::OffApp => ir.enforce_off_app = true,
            PlacementConstraint::SenderSide => ir.pin_sender_side = true,
            PlacementConstraint::ReceiverSide => {}
        }
    }
    Ok(ir)
}

/// Compiles a full AdnConfig with the given pass configuration, verifying
/// at [`VerifyLevel::Warn`].
pub fn compile_app_with_passes(
    config: &AdnConfig,
    request: Arc<RpcSchema>,
    response: Arc<RpcSchema>,
    passes: &PassConfig,
) -> Result<CompiledApp, CompileError> {
    compile_app_verified(config, request, response, passes, VerifyLevel::Warn)
}

/// Compiles a full AdnConfig with explicit pass configuration and
/// verification level. Verification runs the chain dataflow lints over the
/// pre-optimization chain and re-audits every optimizer decision (order,
/// stages, parallel pairs, minimal headers) on the optimized one.
pub fn compile_app_verified(
    config: &AdnConfig,
    request: Arc<RpcSchema>,
    response: Arc<RpcSchema>,
    passes: &PassConfig,
    verify: VerifyLevel,
) -> Result<CompiledApp, CompileError> {
    let mut elements = Vec::with_capacity(config.chain.len());
    for spec in &config.chain {
        elements.push(compile_element_spec(spec, &request, &response)?);
    }
    let chain = ChainIr::new(elements, request, response);
    let original = match verify {
        VerifyLevel::Off => None,
        _ => Some(chain.clone()),
    };
    let (chain, report) = adn_ir::optimize(chain, passes);

    let mut diagnostics = Vec::new();
    if let Some(original) = original {
        let opts = adn_verifier::ChainVerifyOptions::default();
        diagnostics.extend(
            adn_verifier::verify_chain(&original, &opts)
                .into_iter()
                .map(|f| f.diagnostic),
        );
        diagnostics.extend(adn_verifier::audit_report(&original, &chain, &report));
        diagnostics.extend(adn_verifier::audit_headers(&chain));
        if verify == VerifyLevel::Deny && diagnostics.iter().any(|d| d.is_error()) {
            return Err(CompileError::Verification(diagnostics));
        }
    }

    // The optimizer may have reordered elements; constraints follow their
    // element by name (names are unique per config position; when an
    // element name repeats, order within equals is preserved).
    let mut remaining: Vec<(String, ElementConstraints)> = config
        .chain
        .iter()
        .map(|spec| {
            (
                spec_name(spec),
                ElementConstraints {
                    constraints: spec.constraints.clone(),
                },
            )
        })
        .collect();
    let mut constraints = Vec::with_capacity(chain.len());
    for element in &chain.elements {
        let pos = remaining
            .iter()
            .position(|(n, _)| *n == element.name)
            .expect("optimizer preserves the element multiset");
        constraints.push(remaining.remove(pos).1);
    }

    Ok(CompiledApp {
        chain,
        constraints,
        report,
        diagnostics,
        seed: config.seed,
    })
}

fn spec_name(spec: &ElementSpec) -> String {
    match &spec.source {
        Some(src) => adn_dsl::parse_element(src)
            .map(|e| e.name)
            .unwrap_or_else(|_| spec.element.clone()),
        None => spec.element.clone(),
    }
}

/// Compiles with the default optimization passes.
pub fn compile_app(
    config: &AdnConfig,
    request: Arc<RpcSchema>,
    response: Arc<RpcSchema>,
) -> Result<CompiledApp, CompileError> {
    compile_app_with_passes(config, request, response, &PassConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_rpc::value::ValueType;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn spec(element: &str) -> ElementSpec {
        ElementSpec {
            element: element.into(),
            source: None,
            args: vec![],
            constraints: vec![],
        }
    }

    fn config(chain: Vec<ElementSpec>) -> AdnConfig {
        AdnConfig {
            app: "t".into(),
            src_service: "a".into(),
            dst_service: "b".into(),
            chain,
            seed: 7,
        }
    }

    #[test]
    fn compiles_the_paper_chain() {
        let (req, resp) = schemas();
        let cfg = config(vec![spec("Logging"), spec("Acl"), spec("Fault")]);
        let app = compile_app(&cfg, req, resp).unwrap();
        assert_eq!(app.chain.len(), 3);
        assert_eq!(app.seed, 7);
    }

    #[test]
    fn constraints_follow_reordered_elements() {
        let (req, resp) = schemas();
        // Compress (expensive, no drop) then Acl (cheap dropper): the
        // optimizer swaps them. Acl carries OffApp.
        let mut acl = spec("Acl");
        acl.constraints = vec![PlacementConstraint::OffApp];
        let cfg = config(vec![spec("Compress"), acl]);
        let app = compile_app(&cfg, req, resp).unwrap();
        assert_eq!(app.chain.names(), vec!["Acl", "Compress"]);
        assert_eq!(
            app.constraints[0].constraints,
            vec![PlacementConstraint::OffApp]
        );
        assert!(app.constraints[1].constraints.is_empty());
        assert_eq!(app.report.swaps, 1);
    }

    #[test]
    fn inline_source_compiles() {
        let (req, resp) = schemas();
        let cfg = config(vec![ElementSpec {
            element: "Custom".into(),
            source: Some(
                "element Custom() { on request { DROP WHERE input.object_id == 0; SELECT * FROM input; } }"
                    .into(),
            ),
            args: vec![],
            constraints: vec![],
        }]);
        let app = compile_app(&cfg, req, resp).unwrap();
        assert_eq!(app.chain.names(), vec!["Custom"]);
    }

    #[test]
    fn json_args_bind() {
        let (req, resp) = schemas();
        let cfg = config(vec![ElementSpec {
            element: "Fault".into(),
            source: None,
            args: vec![("abort_prob".into(), serde_json::json!(0.5))],
            constraints: vec![],
        }]);
        assert!(compile_app(&cfg, req, resp).is_ok());
    }

    #[test]
    fn unknown_element_fails() {
        let (req, resp) = schemas();
        let cfg = config(vec![spec("Ghost")]);
        assert!(matches!(
            compile_app(&cfg, req, resp),
            Err(CompileError::UnknownElement(_))
        ));
    }

    #[test]
    fn bad_json_arg_fails() {
        let (req, resp) = schemas();
        let cfg = config(vec![ElementSpec {
            element: "Fault".into(),
            source: None,
            args: vec![("abort_prob".into(), serde_json::json!([1, 2]))],
            constraints: vec![],
        }]);
        assert!(matches!(
            compile_app(&cfg, req, resp),
            Err(CompileError::BadArgument(..))
        ));
    }

    #[test]
    fn warn_level_records_diagnostics_without_failing() {
        let (req, resp) = schemas();
        // A pure pass-through element: V0003 (dead element) warning.
        let cfg = config(vec![
            ElementSpec {
                element: "Tee".into(),
                source: Some("element Tee() { on request { SELECT * FROM input; } }".into()),
                args: vec![],
                constraints: vec![],
            },
            spec("Compress"),
        ]);
        let app = compile_app(&cfg, req, resp).unwrap();
        assert!(
            app.diagnostics.iter().any(|d| d.code == "V0003"),
            "{:?}",
            app.diagnostics
        );
        assert!(app.diagnostics.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn deny_level_accepts_a_clean_chain() {
        let (req, resp) = schemas();
        let cfg = config(vec![spec("Logging"), spec("Acl"), spec("Fault")]);
        let app = compile_app_verified(&cfg, req, resp, &PassConfig::default(), VerifyLevel::Deny)
            .unwrap();
        assert!(app.diagnostics.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn off_level_records_nothing() {
        let (req, resp) = schemas();
        let cfg = config(vec![spec("Acl")]);
        let app = compile_app_verified(&cfg, req, resp, &PassConfig::default(), VerifyLevel::Off)
            .unwrap();
        assert!(app.diagnostics.is_empty());
    }

    #[test]
    fn drop_insensitive_flag_lands_on_element() {
        let (req, resp) = schemas();
        let mut metrics = spec("Metrics");
        metrics.constraints = vec![PlacementConstraint::DropInsensitive];
        let cfg = config(vec![metrics]);
        let app = compile_app(&cfg, req, resp).unwrap();
        assert!(app.chain.elements[0].drop_insensitive);
    }
}
