//! The placement solver.
//!
//! Elements of a chain execute somewhere on the path from the calling
//! application to the called application. The candidate sites, in path
//! order:
//!
//! ```text
//! ClientLib → ClientEbpf → ClientNic → ClientSidecar
//!     → Switch → ServerSidecar → ServerNic → ServerEbpf → ServerLib
//! ```
//!
//! A valid placement assigns each element a site such that site order is
//! non-decreasing along the chain (messages only move forward). The solver
//! is an exact dynamic program over (element, site) minimizing estimated
//! per-RPC latency: per-element execution cost scaled by the platform's
//! speed factor, plus a boundary cost each time processing moves to a new
//! site (an extra process hop costs far more than staying in-context).
//!
//! Feasibility combines three gates, all from the paper:
//! * **capability** — `adn_backend::supports` (can this element compile to
//!   that platform at all? §2 "non-portability"),
//! * **resources** — the environment must offer the device (eBPF-capable
//!   kernel, SmartNIC present, programmable switch on path),
//! * **constraints** — trust (`OffApp`: not inside the application binary,
//!   §3) and co-location pins (`SenderSide`/`ReceiverSide`, §4 Q1).

use adn_backend::Platform;
use adn_cluster::resources::{NodeSpec, PlacementConstraint, SwitchSpec};
use adn_ir::ElementIr;
use adn_verifier::ebpf::EbpfPolicy;

/// A processor site on the client→server path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Site {
    /// Inside the caller's RPC library (Figure 2, Configuration 1).
    ClientLib,
    /// Caller-side kernel eBPF.
    ClientEbpf,
    /// Caller-side SmartNIC.
    ClientNic,
    /// Caller-side sidecar process (today's service-mesh position).
    ClientSidecar,
    /// Programmable switch on the path.
    Switch,
    /// Callee-side sidecar process.
    ServerSidecar,
    /// Callee-side SmartNIC.
    ServerNic,
    /// Callee-side kernel eBPF.
    ServerEbpf,
    /// Inside the callee's RPC library.
    ServerLib,
}

/// All sites in path order.
pub const ALL_SITES: [Site; 9] = [
    Site::ClientLib,
    Site::ClientEbpf,
    Site::ClientNic,
    Site::ClientSidecar,
    Site::Switch,
    Site::ServerSidecar,
    Site::ServerNic,
    Site::ServerEbpf,
    Site::ServerLib,
];

impl Site {
    /// Position along the path (for the ordering constraint).
    pub fn path_index(self) -> usize {
        ALL_SITES.iter().position(|s| *s == self).expect("site")
    }

    /// The backend platform implementing this site.
    pub fn platform(self) -> Platform {
        match self {
            Site::ClientLib | Site::ServerLib | Site::ClientSidecar | Site::ServerSidecar => {
                Platform::Software
            }
            Site::ClientEbpf | Site::ServerEbpf => Platform::Ebpf,
            Site::ClientNic | Site::ServerNic => Platform::SmartNic,
            Site::Switch => Platform::Switch,
        }
    }

    /// Whether the site sits inside the application binary's process.
    pub fn in_app(self) -> bool {
        matches!(self, Site::ClientLib | Site::ServerLib)
    }

    /// Whether the site is on the caller's host.
    pub fn client_side(self) -> bool {
        matches!(
            self,
            Site::ClientLib | Site::ClientEbpf | Site::ClientNic | Site::ClientSidecar
        )
    }

    /// Whether the site is on the callee's host.
    pub fn server_side(self) -> bool {
        matches!(
            self,
            Site::ServerLib | Site::ServerEbpf | Site::ServerNic | Site::ServerSidecar
        )
    }

    /// Whether the site needs a standalone processor endpoint (vs running
    /// inside the application's RPC library).
    pub fn needs_processor(self) -> bool {
        !self.in_app()
    }

    /// Relative per-unit execution speed (lower = faster for the host CPU
    /// budget; the switch is effectively free for supported operations).
    fn speed_factor(self) -> f64 {
        match self {
            Site::ClientLib | Site::ServerLib => 1.0,
            Site::ClientSidecar | Site::ServerSidecar => 1.1, // cache-cold process
            Site::ClientEbpf | Site::ServerEbpf => 0.8,
            Site::ClientNic | Site::ServerNic => 0.7,
            Site::Switch => 0.05,
        }
    }

    /// Cost of moving processing into this site from a different site
    /// (serialization + context/process/device boundary).
    fn entry_cost(self) -> f64 {
        match self {
            Site::ClientLib | Site::ServerLib => 0.0, // app path, already there
            Site::ClientEbpf | Site::ServerEbpf => 15.0, // kernel boundary
            Site::ClientNic | Site::ServerNic => 25.0, // PCIe hop
            Site::ClientSidecar | Site::ServerSidecar => 120.0, // extra process hop
            Site::Switch => 5.0,                      // on the path anyway
        }
    }
}

/// The deployment environment the solver works against.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Caller's node.
    pub client_node: NodeSpec,
    /// Callee's node.
    pub server_node: NodeSpec,
    /// Switch on the path, if any.
    pub switch: Option<SwitchSpec>,
    /// Trust policy: when false, `ClientLib`/`ServerLib` are unavailable
    /// for *all* elements (operator forbids in-app processing entirely).
    pub allow_in_app: bool,
}

impl Environment {
    /// Whether `site` exists in this environment.
    fn available(&self, site: Site) -> bool {
        match site {
            Site::ClientLib | Site::ServerLib => self.allow_in_app,
            Site::ClientSidecar | Site::ServerSidecar => true,
            Site::ClientEbpf => self.client_node.ebpf_capable,
            Site::ServerEbpf => self.server_node.ebpf_capable,
            Site::ClientNic => self.client_node.smartnic.is_some(),
            Site::ServerNic => self.server_node.smartnic.is_some(),
            Site::Switch => self
                .switch
                .as_ref()
                .map(|s| s.programmable)
                .unwrap_or(false),
        }
    }
}

/// A placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Site per element, in chain order (non-decreasing path index).
    pub sites: Vec<Site>,
    /// The DP's estimated per-RPC cost.
    pub cost: f64,
}

impl Placement {
    /// Groups consecutive elements on the same site: (site, start, end).
    pub fn groups(&self) -> Vec<(Site, usize, usize)> {
        let mut out: Vec<(Site, usize, usize)> = Vec::new();
        for (i, &site) in self.sites.iter().enumerate() {
            match out.last_mut() {
                Some((s, _, end)) if *s == site => *end = i + 1,
                _ => out.push((site, i, i + 1)),
            }
        }
        out
    }

    /// Human-readable summary for examples and reports.
    pub fn describe(&self, elements: &[ElementIr]) -> String {
        let mut s = String::new();
        for (site, start, end) in self.groups() {
            if !s.is_empty() {
                s.push_str(" → ");
            }
            let names: Vec<&str> = elements[start..end]
                .iter()
                .map(|e| e.name.as_str())
                .collect();
            s.push_str(&format!("{site:?}[{}]", names.join("+")));
        }
        s
    }
}

/// Placement failure: some element fits nowhere.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceError {
    pub element: String,
    pub reasons: Vec<(Site, String)>,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "element {:?} has no feasible site:", self.element)?;
        for (site, reason) in &self.reasons {
            writeln!(f, "  {site:?}: {reason}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlaceError {}

/// Per-element constraints resolved from the AdnConfig.
#[derive(Debug, Clone, Default)]
pub struct ElementConstraints {
    pub constraints: Vec<PlacementConstraint>,
}

impl ElementConstraints {
    fn allows(&self, site: Site) -> Result<(), String> {
        for c in &self.constraints {
            match c {
                PlacementConstraint::OffApp if site.in_app() => {
                    return Err("mandatory policy may not run inside the app binary".into())
                }
                PlacementConstraint::SenderSide if !site.client_side() => {
                    return Err("pinned to the sender side".into())
                }
                PlacementConstraint::ReceiverSide if !site.server_side() => {
                    return Err("pinned to the receiver side".into())
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Execution-cost weight of one verified encoded instruction on an eBPF
/// site (the kernel runs straight-line bytecode close to native speed).
const EBPF_INSN_UNIT: f64 = 0.1;
/// Weight of one verified worst-case helper call on an eBPF site (map
/// accesses hash, probe, and copy — far heavier than an ALU op).
const EBPF_HELPER_UNIT: f64 = 1.0;

/// Solves placement for `elements` under `constraints` in `env`, with the
/// default (permissive) kernel offload policy.
pub fn place(
    elements: &[ElementIr],
    constraints: &[ElementConstraints],
    env: &Environment,
) -> Result<Placement, PlaceError> {
    place_with_policy(elements, constraints, env, &EbpfPolicy::default())
}

/// Solves placement under an explicit eBPF offload policy. An element only
/// qualifies for an eBPF site if the offload verifier
/// ([`adn_verifier::ebpf::audit_element`]) passes it under `policy`; one
/// that compiles but fails the audit falls back to native processors.
pub fn place_with_policy(
    elements: &[ElementIr],
    constraints: &[ElementConstraints],
    env: &Environment,
    ebpf_policy: &EbpfPolicy,
) -> Result<Placement, PlaceError> {
    assert_eq!(elements.len(), constraints.len());
    if elements.is_empty() {
        return Ok(Placement {
            sites: Vec::new(),
            cost: 0.0,
        });
    }

    // Feasible sites + execution cost per element.
    let mut feasible: Vec<Vec<(usize, f64)>> = Vec::with_capacity(elements.len());
    for (element, cons) in elements.iter().zip(constraints) {
        let facts = adn_ir::analysis::analyze(element);
        let exec_units = facts.total_cost() as f64;
        // Offload verdict is per element, not per site: compute it once.
        let ebpf_verdict = adn_verifier::ebpf::audit_element(element, ebpf_policy);
        let mut options = Vec::new();
        let mut reasons = Vec::new();
        for (si, &site) in ALL_SITES.iter().enumerate() {
            if !env.available(site) {
                reasons.push((site, "not available in this environment".to_owned()));
                continue;
            }
            if let Err(reason) = cons.allows(site) {
                reasons.push((site, reason));
                continue;
            }
            if let Err(reason) = adn_backend::supports(element, site.platform()) {
                reasons.push((site, reason));
                continue;
            }
            let exec = if site.platform() == Platform::Ebpf {
                match &ebpf_verdict {
                    Err(diags) => {
                        let why: Vec<String> = diags.iter().map(|d| d.message.clone()).collect();
                        reasons.push((site, format!("offload verifier: {}", why.join("; "))));
                        continue;
                    }
                    // Rank the kernel site by the *verified* worst-case
                    // bound from the abstract interpreter, not the IR
                    // estimate: encoded instructions on the longest
                    // feasible path of each direction, plus helper-call
                    // overhead (a map access dominates straight-line
                    // arithmetic by an order of magnitude).
                    Ok(report) => {
                        let insns = report.request_path_insns + report.response_path_insns;
                        insns as f64 * EBPF_INSN_UNIT
                            + report.helper_calls as f64 * EBPF_HELPER_UNIT
                    }
                }
            } else {
                exec_units * site.speed_factor()
            };
            options.push((si, exec));
        }
        if options.is_empty() {
            return Err(PlaceError {
                element: element.name.clone(),
                reasons,
            });
        }
        feasible.push(options);
    }

    // DP over (element, site index): min cost with non-decreasing sites.
    // Boundary costs are paid on each site change, including the implicit
    // start at ClientLib (the app emits there) — entering any non-app site
    // pays its entry cost once per contiguous group.
    let n = elements.len();
    let mut dp: Vec<Vec<f64>> = vec![vec![f64::INFINITY; ALL_SITES.len()]; n];
    let mut parent: Vec<Vec<usize>> = vec![vec![usize::MAX; ALL_SITES.len()]; n];

    for &(si, exec) in &feasible[0] {
        dp[0][si] = ALL_SITES[si].entry_cost() + exec;
    }
    for i in 1..n {
        for &(si, exec) in &feasible[i] {
            for prev_si in 0..=si {
                if dp[i - 1][prev_si].is_finite() {
                    let boundary = if prev_si == si {
                        0.0
                    } else {
                        ALL_SITES[si].entry_cost()
                    };
                    let cost = dp[i - 1][prev_si] + boundary + exec;
                    if cost < dp[i][si] {
                        dp[i][si] = cost;
                        parent[i][si] = prev_si;
                    }
                }
            }
        }
    }

    // Pick the best terminal site (delivery to the server app is free from
    // any site — the message continues along the path regardless).
    let (mut best_si, mut best_cost) = (usize::MAX, f64::INFINITY);
    for (si, &cost) in dp[n - 1].iter().enumerate().take(ALL_SITES.len()) {
        if cost < best_cost {
            best_cost = cost;
            best_si = si;
        }
    }
    if best_si == usize::MAX {
        // Every element has a feasible site in isolation, but no
        // non-decreasing assignment exists along the path (e.g. a
        // receiver-pinned element ordered before a sender-pinned one).
        return Err(PlaceError {
            element: "<chain ordering>".to_owned(),
            reasons: vec![(
                Site::ClientLib,
                "element constraints are individually satisfiable but their                  chain order admits no forward-only path assignment"
                    .to_owned(),
            )],
        });
    }

    let mut sites_rev = vec![best_si];
    for i in (1..n).rev() {
        let prev = parent[i][*sites_rev.last().expect("nonempty")];
        sites_rev.push(prev);
    }
    sites_rev.reverse();
    Ok(Placement {
        sites: sites_rev.into_iter().map(|si| ALL_SITES[si]).collect(),
        cost: best_cost,
    })
}

/// Relative per-unit execution speed of DPU SoC cores. Wimpier than the
/// host CPU (FlatProxy's trade: slower cores, but the host spends zero
/// cycles and the chain stays off the application path entirely).
const DPU_SPEED: f64 = 1.4;

/// A DPU-class device fronting the callee: an on-path SoC (think
/// BlueField-style NIC) that can host an *entire* chain as one software
/// processor, FlatProxy-style. Unlike a SmartNIC site — which competes
/// per element inside the DP — a DPU either takes the whole chain or
/// nothing: splitting a chain across the DPU boundary would reintroduce
/// the PCIe round-trips the device exists to avoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpuSpec {
    /// SoC cores available for chain processors.
    pub cpu_slots: u32,
    /// Largest total per-RPC execution cost (IR units) the SoC absorbs
    /// before it would become the bottleneck.
    pub max_chain_units: f64,
    /// Program-table limit: how many elements fit at once.
    pub max_elements: usize,
}

impl Default for DpuSpec {
    fn default() -> Self {
        DpuSpec {
            cpu_slots: 4,
            max_chain_units: 1024.0,
            max_elements: 8,
        }
    }
}

/// Processor hardware class for a deployment, as swept by eval-matrix.
/// Each class implies a canonical [`Environment`] for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessorClass {
    /// Plain hosts: no kernel offload, no NIC, no programmable switch.
    Host,
    /// eBPF-capable hosts with SmartNICs and a programmable switch.
    SmartNic,
    /// A DPU fronting the server; the host side stays plain.
    Dpu,
}

impl ProcessorClass {
    /// The canonical environment for this class, against standard nodes.
    pub fn environment(self) -> Environment {
        use adn_cluster::resources::{NodeId, SmartNicSpec};
        let node = |id: u32, ebpf: bool, nic: bool| NodeSpec {
            id: NodeId(id),
            name: format!("n{id}"),
            cpu_slots: 8,
            ebpf_capable: ebpf,
            smartnic: nic.then_some(SmartNicSpec { cpu_slots: 4 }),
        };
        match self {
            ProcessorClass::Host => Environment {
                client_node: node(1, false, false),
                server_node: node(2, false, false),
                switch: None,
                allow_in_app: true,
            },
            ProcessorClass::SmartNic => Environment {
                client_node: node(1, true, true),
                server_node: node(2, true, true),
                switch: Some(adn_cluster::resources::SwitchSpec {
                    id: adn_cluster::resources::SwitchId(1),
                    name: "tor".into(),
                    programmable: true,
                    table_capacity: 1024,
                }),
                allow_in_app: true,
            },
            ProcessorClass::Dpu => Environment {
                client_node: node(1, false, false),
                server_node: node(2, false, true),
                switch: None,
                allow_in_app: true,
            },
        }
    }
}

/// How a chain landed when a DPU was on offer.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassPlacement {
    /// The DPU took the whole chain (every element at [`Site::ServerNic`]).
    WholeChain(Placement),
    /// Whole-chain offload was refused; the per-element DP placed it.
    PerElement(Placement),
}

impl ClassPlacement {
    pub fn placement(&self) -> &Placement {
        match self {
            ClassPlacement::WholeChain(p) | ClassPlacement::PerElement(p) => p,
        }
    }

    pub fn whole_chain(&self) -> bool {
        matches!(self, ClassPlacement::WholeChain(_))
    }
}

/// Whole-chain DPU offload: all-or-nothing. Accepts iff every element
/// compiles to a software engine (the SoC runs ordinary processors), no
/// element is pinned to the sender side (the DPU fronts the receiver),
/// the chain fits the program table, and the summed execution cost stays
/// within the SoC budget. On refusal the error lists every offending
/// element with its reason, so callers can fall back per element.
pub fn place_whole_chain(
    elements: &[ElementIr],
    constraints: &[ElementConstraints],
    dpu: &DpuSpec,
) -> Result<Placement, PlaceError> {
    assert_eq!(elements.len(), constraints.len());
    let site = Site::ServerNic;
    let mut reasons: Vec<(Site, String)> = Vec::new();
    let mut first_bad: Option<String> = None;
    let mut total_units = 0.0;
    for (element, cons) in elements.iter().zip(constraints) {
        let before = reasons.len();
        if let Err(reason) = adn_backend::supports(element, Platform::Software) {
            reasons.push((
                site,
                format!(
                    "{}: does not compile to a software engine: {reason}",
                    element.name
                ),
            ));
        }
        if let Err(reason) = cons.allows(site) {
            reasons.push((
                site,
                format!("{}: constraint forbids the DPU: {reason}", element.name),
            ));
        }
        if reasons.len() > before && first_bad.is_none() {
            first_bad = Some(element.name.clone());
        }
        total_units += adn_ir::analysis::analyze(element).total_cost() as f64;
    }
    if elements.len() > dpu.max_elements {
        reasons.push((
            site,
            format!(
                "chain has {} elements; DPU program table holds {}",
                elements.len(),
                dpu.max_elements
            ),
        ));
        first_bad.get_or_insert_with(|| "<chain size>".to_owned());
    }
    if total_units > dpu.max_chain_units {
        reasons.push((
            site,
            format!(
                "chain costs {total_units:.1} units; DPU budget is {:.1}",
                dpu.max_chain_units
            ),
        ));
        first_bad.get_or_insert_with(|| "<chain cost>".to_owned());
    }
    if let Some(element) = first_bad {
        return Err(PlaceError { element, reasons });
    }
    Ok(Placement {
        sites: vec![site; elements.len()],
        cost: site.entry_cost() + total_units * DPU_SPEED,
    })
}

/// Places a chain for a hardware class: DPU-class deployments try the
/// whole-chain offload first and fall back to the per-element DP in the
/// class environment; other classes go straight to the DP.
pub fn place_for_class(
    elements: &[ElementIr],
    constraints: &[ElementConstraints],
    class: ProcessorClass,
    ebpf_policy: &EbpfPolicy,
) -> Result<ClassPlacement, PlaceError> {
    if class == ProcessorClass::Dpu {
        if let Ok(p) = place_whole_chain(elements, constraints, &DpuSpec::default()) {
            return Ok(ClassPlacement::WholeChain(p));
        }
    }
    place_with_policy(elements, constraints, &class.environment(), ebpf_policy)
        .map(ClassPlacement::PerElement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_cluster::resources::{NodeId, SmartNicSpec, SwitchId};
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn schemas() -> (RpcSchema, RpcSchema) {
        (
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .build()
                .unwrap(),
        )
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn node(id: u32, ebpf: bool, nic: bool) -> NodeSpec {
        NodeSpec {
            id: NodeId(id),
            name: format!("n{id}"),
            cpu_slots: 8,
            ebpf_capable: ebpf,
            smartnic: nic.then_some(SmartNicSpec { cpu_slots: 4 }),
        }
    }

    fn bare_env() -> Environment {
        Environment {
            client_node: node(1, false, false),
            server_node: node(2, false, false),
            switch: None,
            allow_in_app: true,
        }
    }

    fn rich_env() -> Environment {
        Environment {
            client_node: node(1, true, true),
            server_node: node(2, true, true),
            switch: Some(SwitchSpec {
                id: SwitchId(1),
                name: "tor".into(),
                programmable: true,
                table_capacity: 1024,
            }),
            allow_in_app: true,
        }
    }

    const COMPRESS: &str =
        "element Compress() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }";
    const LB: &str = "element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }";
    const FIREWALL: &str =
        "element Fw() { on request { DROP WHERE input.object_id == 13; SELECT * FROM input; } }";

    #[test]
    fn config1_everything_in_app_when_bare() {
        // Paper Figure 2 Configuration 1: no offload hardware, no trust
        // constraints → the whole chain runs inside the RPC libraries.
        let elements = vec![lower(LB), lower(COMPRESS)];
        let cons = vec![ElementConstraints::default(), ElementConstraints::default()];
        let p = place(&elements, &cons, &bare_env()).unwrap();
        assert!(
            p.sites.iter().all(|s| s.in_app()),
            "expected in-app, got {:?}",
            p.sites
        );
    }

    #[test]
    fn offapp_forces_out_of_process() {
        let elements = vec![lower(FIREWALL)];
        let cons = vec![ElementConstraints {
            constraints: vec![PlacementConstraint::OffApp],
        }];
        // Bare environment: only sidecars qualify.
        let p = place(&elements, &cons, &bare_env()).unwrap();
        assert!(matches!(
            p.sites[0],
            Site::ClientSidecar | Site::ServerSidecar
        ));
        // Rich environment: the firewall fits the switch, which beats a
        // sidecar hop hands-down (Configuration 3 flavour).
        let p = place(&elements, &cons, &rich_env()).unwrap();
        assert_eq!(p.sites[0], Site::Switch);
    }

    #[test]
    fn switch_offload_of_lb_in_rich_env() {
        // OffApp LB in a rich environment should land on the switch.
        let elements = vec![lower(LB)];
        let cons = vec![ElementConstraints {
            constraints: vec![PlacementConstraint::OffApp],
        }];
        let p = place(&elements, &cons, &rich_env()).unwrap();
        assert_eq!(p.sites[0], Site::Switch);
    }

    #[test]
    fn compression_cannot_reach_switch_or_ebpf() {
        let elements = vec![lower(COMPRESS)];
        let cons = vec![ElementConstraints {
            constraints: vec![PlacementConstraint::OffApp],
        }];
        let p = place(&elements, &cons, &rich_env()).unwrap();
        // SmartNIC runs software engines; it's the cheapest off-app option.
        assert!(
            matches!(p.sites[0], Site::ClientNic | Site::ServerNic),
            "got {:?}",
            p.sites[0]
        );
    }

    #[test]
    fn path_order_is_monotonic() {
        let elements = vec![lower(FIREWALL), lower(LB), lower(COMPRESS)];
        let cons = vec![
            ElementConstraints {
                constraints: vec![PlacementConstraint::OffApp],
            },
            ElementConstraints::default(),
            ElementConstraints {
                constraints: vec![PlacementConstraint::ReceiverSide],
            },
        ];
        let p = place(&elements, &cons, &rich_env()).unwrap();
        for w in p.sites.windows(2) {
            assert!(
                w[0].path_index() <= w[1].path_index(),
                "order violated: {:?}",
                p.sites
            );
        }
        assert!(p.sites[2].server_side());
    }

    #[test]
    fn sender_side_pin_respected() {
        let enc = lower(
            "element Enc() { on request { SET payload = encrypt(input.payload, 'k'); SELECT * FROM input; } }",
        );
        let cons = vec![ElementConstraints {
            constraints: vec![PlacementConstraint::SenderSide, PlacementConstraint::OffApp],
        }];
        let p = place(&[enc], &cons, &rich_env()).unwrap();
        assert!(p.sites[0].client_side() && !p.sites[0].in_app());
    }

    #[test]
    fn infeasible_when_constraints_conflict() {
        // OffApp + no sidecars possible? Sidecars always exist, so force a
        // conflict: sender-side pin + receiver-side pin.
        let elements = vec![lower(FIREWALL)];
        let cons = vec![ElementConstraints {
            constraints: vec![
                PlacementConstraint::SenderSide,
                PlacementConstraint::ReceiverSide,
            ],
        }];
        let err = place(&elements, &cons, &rich_env()).unwrap_err();
        assert_eq!(err.element, "Fw");
        assert!(!err.reasons.is_empty());
    }

    #[test]
    fn no_in_app_policy_pushes_everything_out() {
        let mut env = rich_env();
        env.allow_in_app = false;
        let elements = vec![lower(LB), lower(COMPRESS)];
        let cons = vec![ElementConstraints::default(), ElementConstraints::default()];
        let p = place(&elements, &cons, &env).unwrap();
        assert!(p.sites.iter().all(|s| !s.in_app()), "{:?}", p.sites);
    }

    #[test]
    fn groups_cluster_consecutive_sites() {
        let p = Placement {
            sites: vec![
                Site::ClientLib,
                Site::ClientLib,
                Site::Switch,
                Site::ServerLib,
            ],
            cost: 0.0,
        };
        assert_eq!(
            p.groups(),
            vec![
                (Site::ClientLib, 0, 2),
                (Site::Switch, 2, 3),
                (Site::ServerLib, 3, 4)
            ]
        );
    }

    #[test]
    fn restrictive_ebpf_policy_forces_native_fallback() {
        // A u64-keyed ACL compiles to eBPF; in an eBPF-only environment
        // (no NIC, no switch, no in-app) it lands in the kernel…
        let acl = lower(
            r#"
            element NumAcl() {
                state acl(object_id: u64 key, allowed: u64) init { (1, 1) };
                on request {
                    SELECT * FROM input JOIN acl ON input.object_id == acl.object_id
                    WHERE acl.allowed == 1;
                }
            }
            "#,
        );
        let cons = vec![ElementConstraints::default()];
        let env = Environment {
            client_node: node(1, true, false),
            server_node: node(2, true, false),
            switch: None,
            allow_in_app: false,
        };
        let p = place(std::slice::from_ref(&acl), &cons, &env).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientEbpf | Site::ServerEbpf),
            "default policy should offload, got {:?}",
            p.sites[0]
        );
        // …but a site policy that refuses map helpers pushes it back to a
        // native processor even though the element still compiles.
        let policy = EbpfPolicy {
            allow_map_helpers: false,
            ..EbpfPolicy::default()
        };
        let p = place_with_policy(&[acl], &cons, &env, &policy).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientSidecar | Site::ServerSidecar),
            "audited-out element must fall back, got {:?}",
            p.sites[0]
        );
    }

    #[test]
    fn verified_stack_bound_unlocks_offload_the_heuristic_rejected() {
        // Pure arithmetic writes several registers, so the old simulated
        // stack model (8 bytes per written register) busts a 16-byte
        // budget and forces a sidecar. The abstract interpreter proves
        // the program never touches the stack, so the same element under
        // the same budget now offloads into the kernel with a bound.
        let arith = lower(
            "element A() { on request { SET object_id = input.object_id * 3 + input.object_id % 7; SELECT * FROM input; } }",
        );
        let cons = vec![ElementConstraints::default()];
        let env = Environment {
            client_node: node(1, true, false),
            server_node: node(2, true, false),
            switch: None,
            allow_in_app: false,
        };

        let heuristic = EbpfPolicy {
            max_stack_bytes: 16,
            use_absint: false,
            ..EbpfPolicy::default()
        };
        let p = place_with_policy(std::slice::from_ref(&arith), &cons, &env, &heuristic).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientSidecar | Site::ServerSidecar),
            "heuristic audit should reject the offload, got {:?}",
            p.sites[0]
        );

        let proved = EbpfPolicy {
            max_stack_bytes: 16,
            ..EbpfPolicy::default()
        };
        let report = adn_verifier::ebpf::audit_element(&arith, &proved).unwrap();
        assert_eq!(report.stack_bytes, 0, "{report:?}");
        assert!(report.precise);
        let p = place_with_policy(std::slice::from_ref(&arith), &cons, &env, &proved).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientEbpf | Site::ServerEbpf),
            "proved zero-stack element should offload, got {:?}",
            p.sites[0]
        );
    }

    #[test]
    fn ctx_bound_violation_rejects_offload_with_spanned_diagnostic() {
        // `username` is field 1, so hashing it provably needs 16 context
        // bytes. A site guaranteeing only 8 must reject the program — and
        // the diagnostic names the offending instruction slot.
        let h = lower(
            "element H() { on request { DROP WHERE hash(input.username) % 2 == 0; SELECT * FROM input; } }",
        );
        let cons = vec![ElementConstraints::default()];
        let env = Environment {
            client_node: node(1, true, false),
            server_node: node(2, true, false),
            switch: None,
            allow_in_app: false,
        };
        let tiny = EbpfPolicy {
            max_ctx_bytes: Some(8),
            ..EbpfPolicy::default()
        };
        let diags = adn_verifier::ebpf::audit_element(&h, &tiny).unwrap_err();
        assert!(
            diags
                .iter()
                .any(|d| d.code == adn_verifier::codes::EBPF_OOB && d.span.is_some()),
            "{diags:?}"
        );
        let p = place_with_policy(std::slice::from_ref(&h), &cons, &env, &tiny).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientSidecar | Site::ServerSidecar),
            "ctx-rejected element must fall back, got {:?}",
            p.sites[0]
        );

        // The same element offloads when the site's context is big enough.
        let roomy = EbpfPolicy {
            max_ctx_bytes: Some(16),
            ..EbpfPolicy::default()
        };
        let p = place_with_policy(std::slice::from_ref(&h), &cons, &env, &roomy).unwrap();
        assert!(
            matches!(p.sites[0], Site::ClientEbpf | Site::ServerEbpf),
            "got {:?}",
            p.sites[0]
        );
    }

    #[test]
    fn empty_chain_places_trivially() {
        let p = place(&[], &[], &bare_env()).unwrap();
        assert!(p.sites.is_empty());
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn dpu_takes_a_whole_software_chain() {
        let elements = vec![lower(FIREWALL), lower(LB), lower(COMPRESS)];
        let cons = vec![ElementConstraints::default(); 3];
        let p = place_whole_chain(&elements, &cons, &DpuSpec::default()).unwrap();
        assert_eq!(p.sites, vec![Site::ServerNic; 3]);
        let cp = place_for_class(
            &elements,
            &cons,
            ProcessorClass::Dpu,
            &EbpfPolicy::default(),
        )
        .unwrap();
        assert!(cp.whole_chain());
        assert_eq!(cp.placement().sites, vec![Site::ServerNic; 3]);
    }

    #[test]
    fn dpu_refuses_sender_pinned_elements_and_falls_back() {
        let elements = vec![lower(COMPRESS), lower(FIREWALL)];
        let cons = vec![
            ElementConstraints {
                constraints: vec![PlacementConstraint::SenderSide],
            },
            ElementConstraints::default(),
        ];
        let err = place_whole_chain(&elements, &cons, &DpuSpec::default()).unwrap_err();
        assert_eq!(err.element, "Compress");
        assert!(err.reasons.iter().any(|(_, r)| r.contains("sender side")));
        // place_for_class degrades to the per-element DP, which still
        // honours the pin.
        let cp = place_for_class(
            &elements,
            &cons,
            ProcessorClass::Dpu,
            &EbpfPolicy::default(),
        )
        .unwrap();
        assert!(!cp.whole_chain());
        assert!(cp.placement().sites[0].client_side());
    }

    #[test]
    fn dpu_budget_and_program_table_are_enforced() {
        let elements: Vec<ElementIr> = (0..3).map(|_| lower(COMPRESS)).collect();
        let cons = vec![ElementConstraints::default(); 3];
        let tiny_table = DpuSpec {
            max_elements: 2,
            ..DpuSpec::default()
        };
        let err = place_whole_chain(&elements, &cons, &tiny_table).unwrap_err();
        assert!(err.reasons.iter().any(|(_, r)| r.contains("program table")));
        let tiny_budget = DpuSpec {
            max_chain_units: 0.5,
            ..DpuSpec::default()
        };
        let err = place_whole_chain(&elements, &cons, &tiny_budget).unwrap_err();
        assert!(err.reasons.iter().any(|(_, r)| r.contains("budget")));
    }

    #[test]
    fn class_environments_reflect_hardware() {
        let host = ProcessorClass::Host.environment();
        assert!(!host.available(Site::ClientEbpf) && !host.available(Site::ServerNic));
        let rich = ProcessorClass::SmartNic.environment();
        assert!(rich.available(Site::Switch) && rich.available(Site::ClientNic));
        let dpu = ProcessorClass::Dpu.environment();
        assert!(dpu.available(Site::ServerNic) && !dpu.available(Site::ClientNic));
    }
}
