//! Property tests for the placement solver: every solution it returns must
//! satisfy the paper's constraints by construction — path-monotonic order,
//! trust pins, co-location pins, device availability, and platform
//! capability — across random chains, constraint sets, and environments.

use adn_cluster::resources::{
    NodeId, NodeSpec, PlacementConstraint, SmartNicSpec, SwitchId, SwitchSpec,
};
use adn_controller::placement::{place, ElementConstraints, Environment};
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;
use proptest::prelude::*;

fn schemas() -> (RpcSchema, RpcSchema) {
    (
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
        RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap(),
    )
}

fn element_pool() -> Vec<adn_ir::ElementIr> {
    let (req, resp) = schemas();
    [
        "Logging",
        "Acl",
        "Fault",
        "LoadBalancer",
        "Compress",
        "Decompress",
        "Firewall",
        "Metrics",
    ]
    .iter()
    .map(|n| adn_elements::build(n, &[], &req, &resp).unwrap())
    .collect()
}

fn arb_constraints() -> impl Strategy<Value = Vec<PlacementConstraint>> {
    prop_oneof![
        Just(vec![]),
        Just(vec![PlacementConstraint::OffApp]),
        Just(vec![PlacementConstraint::SenderSide]),
        Just(vec![PlacementConstraint::ReceiverSide]),
        Just(vec![
            PlacementConstraint::OffApp,
            PlacementConstraint::SenderSide
        ]),
        Just(vec![
            PlacementConstraint::OffApp,
            PlacementConstraint::ReceiverSide
        ]),
    ]
}

fn env(ebpf: bool, nic: bool, switch: bool, allow_in_app: bool) -> Environment {
    let node = |id: u32| NodeSpec {
        id: NodeId(id),
        name: format!("n{id}"),
        cpu_slots: 8,
        ebpf_capable: ebpf,
        smartnic: nic.then_some(SmartNicSpec { cpu_slots: 4 }),
    };
    Environment {
        client_node: node(1),
        server_node: node(2),
        switch: switch.then_some(SwitchSpec {
            id: SwitchId(1),
            name: "tor".into(),
            programmable: true,
            table_capacity: 1024,
        }),
        allow_in_app,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placements_satisfy_all_constraints(
        picks in proptest::collection::vec(0usize..8, 1..6),
        constraint_picks in proptest::collection::vec(arb_constraints(), 6),
        ebpf in any::<bool>(),
        nic in any::<bool>(),
        switch in any::<bool>(),
        allow_in_app in any::<bool>(),
    ) {
        let pool = element_pool();
        let elements: Vec<_> = picks.iter().map(|&i| pool[i].clone()).collect();
        let constraints: Vec<ElementConstraints> = picks
            .iter()
            .enumerate()
            .map(|(slot, _)| ElementConstraints {
                constraints: constraint_picks[slot % constraint_picks.len()].clone(),
            })
            .collect();
        let environment = env(ebpf, nic, switch, allow_in_app);

        let Ok(placement) = place(&elements, &constraints, &environment) else {
            // Infeasible combinations are allowed to fail; the properties
            // below only bind successful solutions.
            return Ok(());
        };

        // 1. One site per element, path-monotonic.
        prop_assert_eq!(placement.sites.len(), elements.len());
        for w in placement.sites.windows(2) {
            prop_assert!(
                w[0].path_index() <= w[1].path_index(),
                "order violated: {:?}",
                placement.sites
            );
        }
        // 2. Constraints respected.
        for (site, cons) in placement.sites.iter().zip(&constraints) {
            for c in &cons.constraints {
                match c {
                    PlacementConstraint::OffApp => prop_assert!(!site.in_app()),
                    PlacementConstraint::SenderSide => prop_assert!(site.client_side()),
                    PlacementConstraint::ReceiverSide => prop_assert!(site.server_side()),
                    PlacementConstraint::DropInsensitive => {}
                }
            }
        }
        // 3. Environment availability + platform capability.
        for (site, element) in placement.sites.iter().zip(&elements) {
            if site.in_app() {
                prop_assert!(allow_in_app);
            }
            match site.platform() {
                adn_backend::Platform::Ebpf => prop_assert!(ebpf),
                adn_backend::Platform::SmartNic => prop_assert!(nic),
                adn_backend::Platform::Switch => prop_assert!(switch),
                adn_backend::Platform::Software => {}
            }
            prop_assert!(
                adn_backend::supports(element, site.platform()).is_ok(),
                "{} cannot run on {:?}",
                element.name,
                site
            );
        }
        // 4. Groups partition the chain exactly.
        let mut covered = 0;
        for (_, start, end) in placement.groups() {
            prop_assert_eq!(start, covered);
            covered = end;
        }
        prop_assert_eq!(covered, elements.len());
        // 5. Cost is finite and non-negative.
        prop_assert!(placement.cost.is_finite() && placement.cost >= 0.0);
    }

    /// With in-app allowed and no constraints, bare environments always
    /// produce a feasible (fully in-app is always available) placement.
    #[test]
    fn unconstrained_chains_always_place(picks in proptest::collection::vec(0usize..8, 1..6)) {
        let pool = element_pool();
        let elements: Vec<_> = picks.iter().map(|&i| pool[i].clone()).collect();
        let constraints = vec![ElementConstraints::default(); elements.len()];
        let environment = env(false, false, false, true);
        let placement = place(&elements, &constraints, &environment);
        prop_assert!(placement.is_ok(), "{placement:?}");
    }

    /// Richer environments never place worse: adding devices can only
    /// lower (or keep) the solver's cost.
    #[test]
    fn more_hardware_never_hurts(
        picks in proptest::collection::vec(0usize..8, 1..5),
        cons in proptest::collection::vec(arb_constraints(), 5),
    ) {
        let pool = element_pool();
        let elements: Vec<_> = picks.iter().map(|&i| pool[i].clone()).collect();
        let constraints: Vec<ElementConstraints> = picks
            .iter()
            .enumerate()
            .map(|(slot, _)| ElementConstraints {
                constraints: cons[slot % cons.len()].clone(),
            })
            .collect();
        let bare = place(&elements, &constraints, &env(false, false, false, true));
        let rich = place(&elements, &constraints, &env(true, true, true, true));
        if let (Ok(b), Ok(r)) = (bare, rich) {
            prop_assert!(
                r.cost <= b.cost + 1e-9,
                "rich cost {} > bare cost {}",
                r.cost,
                b.cost
            );
        }
    }
}
