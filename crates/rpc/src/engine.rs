//! The chainable network-function abstraction ("engine", after mRPC).
//!
//! An ADN element, once compiled, runs as an [`Engine`]: a stateful object
//! invoked once per RPC message, in place, in structured form. Engines are
//! composed into an [`EngineChain`] — the paper's "RPC processing chain".
//!
//! Engines expose their internal state for export/import because state
//! decoupling is what lets the controller migrate and scale elements without
//! disrupting the application (paper §5.2).

use std::fmt;

use crate::message::RpcMessage;

/// The outcome of processing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Pass the (possibly modified) message downstream.
    Forward,
    /// Silently discard the message (e.g. rate limiter shedding load).
    Drop,
    /// Reject the message; the runtime reflects an error to the caller.
    Abort {
        /// Application-meaningful status code.
        code: u32,
        /// Human-readable reason.
        message: String,
    },
    /// Refuse the message at an overloaded hop without executing it; the
    /// runtime reflects a fast-fail [`crate::message::RpcStatus::Shed`]
    /// response so the caller backs off instead of retrying into the
    /// collapse. Admission control (and brownout-mode chains) emit this.
    Shed,
}

impl Verdict {
    /// Standard abort for access-control denials.
    pub fn abort_permission_denied() -> Verdict {
        Verdict::Abort {
            code: 7,
            message: "permission denied".to_owned(),
        }
    }

    /// Whether the message continues downstream.
    pub fn is_forward(&self) -> bool {
        matches!(self, Verdict::Forward)
    }
}

/// A network function processing structured RPC messages.
pub trait Engine: Send {
    /// Stable engine name for diagnostics and telemetry.
    fn name(&self) -> &str;

    /// Processes one message in place and decides its fate.
    fn process(&mut self, msg: &mut RpcMessage) -> Verdict;

    /// Serializes internal state for live migration. Engines with no state
    /// return an empty buffer.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores internal state from a prior [`Engine::export_state`] image.
    /// The default accepts only the empty image.
    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        if image.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "engine {} does not accept state images",
                self.name()
            ))
        }
    }
}

impl fmt::Debug for dyn Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Engine({})", self.name())
    }
}

/// An ordered chain of engines applied to each message.
#[derive(Default)]
pub struct EngineChain {
    engines: Vec<Box<dyn Engine>>,
}

impl EngineChain {
    /// Empty chain (messages pass through untouched).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a chain from boxed engines.
    pub fn from_engines(engines: Vec<Box<dyn Engine>>) -> Self {
        Self { engines }
    }

    /// Appends an engine to the tail of the chain.
    pub fn push(&mut self, engine: Box<dyn Engine>) {
        self.engines.push(engine);
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Engine names in order, for diagnostics.
    pub fn names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Runs the message through every engine in order. The first non-forward
    /// verdict short-circuits the chain.
    pub fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        for engine in &mut self.engines {
            match engine.process(msg) {
                Verdict::Forward => continue,
                other => return other,
            }
        }
        Verdict::Forward
    }

    /// Runs a batch of messages through the chain, writing one verdict per
    /// message into `verdicts` (cleared first).
    ///
    /// The loop is engine-major — each engine processes every still-live
    /// message before the next engine runs — which amortizes the dynamic
    /// dispatch and keeps each engine's state hot in cache. This is
    /// observationally equivalent to calling [`EngineChain::process`] on
    /// each message in order: engines see messages in the same relative
    /// order at every stage (message *i* always visits an engine before
    /// message *i+1* does), and a message that earns a non-forward verdict
    /// is skipped by all later engines, exactly as the per-message
    /// short-circuit would.
    pub fn process_batch(&mut self, msgs: &mut [RpcMessage], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        verdicts.resize(msgs.len(), Verdict::Forward);
        for engine in &mut self.engines {
            for (msg, verdict) in msgs.iter_mut().zip(verdicts.iter_mut()) {
                if verdict.is_forward() {
                    *verdict = engine.process(msg);
                }
            }
        }
    }

    /// Like [`EngineChain::process`], but appends each executed stage's
    /// wall time in nanoseconds to `stage_ns` (cleared first). Stages the
    /// chain short-circuited past contribute no entry. Telemetry-sampled
    /// messages take this path; everything else stays on `process`.
    pub fn process_timed(&mut self, msg: &mut RpcMessage, stage_ns: &mut Vec<u64>) -> Verdict {
        stage_ns.clear();
        for engine in &mut self.engines {
            let start = std::time::Instant::now();
            let verdict = engine.process(msg);
            stage_ns.push(start.elapsed().as_nanos() as u64);
            match verdict {
                Verdict::Forward => continue,
                other => return other,
            }
        }
        Verdict::Forward
    }

    /// Mutable access to an engine by index (used by hot-update).
    pub fn engine_mut(&mut self, idx: usize) -> Option<&mut Box<dyn Engine>> {
        self.engines.get_mut(idx)
    }

    /// Replaces the engine at `idx`, returning the old one. The new engine
    /// may import the old engine's state to implement hot logic updates.
    pub fn replace(&mut self, idx: usize, engine: Box<dyn Engine>) -> Option<Box<dyn Engine>> {
        if idx < self.engines.len() {
            Some(std::mem::replace(&mut self.engines[idx], engine))
        } else {
            None
        }
    }

    /// Exports the state of every engine, in order.
    pub fn export_states(&self) -> Vec<Vec<u8>> {
        self.engines.iter().map(|e| e.export_state()).collect()
    }

    /// Imports per-engine state images, in order.
    pub fn import_states(&mut self, images: &[Vec<u8>]) -> Result<(), String> {
        if images.len() != self.engines.len() {
            return Err(format!(
                "state image count {} != engine count {}",
                images.len(),
                self.engines.len()
            ));
        }
        for (engine, image) in self.engines.iter_mut().zip(images) {
            engine.import_state(image)?;
        }
        Ok(())
    }
}

impl fmt::Debug for EngineChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EngineChain{:?}", self.names())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::schema::RpcSchema;
    use crate::value::{Value, ValueType};

    struct Increment {
        field: usize,
    }
    impl Engine for Increment {
        fn name(&self) -> &str {
            "increment"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if let Value::U64(v) = msg.get_idx(self.field) {
                let v = *v;
                msg.set_idx(self.field, Value::U64(v + 1));
            }
            Verdict::Forward
        }
    }

    struct DropOdd {
        field: usize,
    }
    impl Engine for DropOdd {
        fn name(&self) -> &str {
            "drop_odd"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            match msg.get_idx(self.field) {
                Value::U64(v) if v % 2 == 1 => Verdict::Drop,
                _ => Verdict::Forward,
            }
        }
    }

    struct Counter {
        count: u64,
    }
    impl Engine for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn process(&mut self, _msg: &mut RpcMessage) -> Verdict {
            self.count += 1;
            Verdict::Forward
        }
        fn export_state(&self) -> Vec<u8> {
            self.count.to_le_bytes().to_vec()
        }
        fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = image.try_into().map_err(|_| "bad image".to_owned())?;
            self.count = u64::from_le_bytes(bytes);
            Ok(())
        }
    }

    fn msg(v: u64) -> RpcMessage {
        let schema = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .build()
                .unwrap(),
        );
        RpcMessage::request(1, 1, schema).with("x", v)
    }

    #[test]
    fn chain_runs_in_order() {
        let mut chain = EngineChain::from_engines(vec![
            Box::new(Increment { field: 0 }),
            Box::new(DropOdd { field: 0 }),
        ]);
        // 0 -> incremented to 1 -> dropped (order matters).
        let mut m = msg(0);
        assert_eq!(chain.process(&mut m), Verdict::Drop);
        // 1 -> incremented to 2 -> forwarded.
        let mut m = msg(1);
        assert_eq!(chain.process(&mut m), Verdict::Forward);
        assert_eq!(m.get("x"), Some(&Value::U64(2)));
    }

    #[test]
    fn short_circuit_skips_downstream() {
        let mut chain = EngineChain::from_engines(vec![
            Box::new(DropOdd { field: 0 }),
            Box::new(Increment { field: 0 }),
        ]);
        let mut m = msg(3);
        assert_eq!(chain.process(&mut m), Verdict::Drop);
        // Increment must not have run.
        assert_eq!(m.get("x"), Some(&Value::U64(3)));
    }

    #[test]
    fn state_export_import_roundtrip() {
        let mut chain = EngineChain::from_engines(vec![Box::new(Counter { count: 0 })]);
        let mut m = msg(0);
        chain.process(&mut m);
        chain.process(&mut m);
        let images = chain.export_states();

        let mut fresh = EngineChain::from_engines(vec![Box::new(Counter { count: 0 })]);
        fresh.import_states(&images).unwrap();
        assert_eq!(fresh.export_states(), images);
    }

    #[test]
    fn import_rejects_wrong_arity() {
        let mut chain = EngineChain::from_engines(vec![Box::new(Counter { count: 0 })]);
        assert!(chain.import_states(&[]).is_err());
    }

    #[test]
    fn hot_replace_preserves_state() {
        let mut chain = EngineChain::from_engines(vec![Box::new(Counter { count: 0 })]);
        let mut m = msg(0);
        chain.process(&mut m);
        let old = chain.replace(0, Box::new(Counter { count: 0 })).unwrap();
        chain
            .engine_mut(0)
            .unwrap()
            .import_state(&old.export_state())
            .unwrap();
        assert_eq!(chain.export_states()[0], 1u64.to_le_bytes().to_vec());
    }

    #[test]
    fn batch_matches_per_message_processing() {
        let mut batched = EngineChain::from_engines(vec![
            Box::new(Increment { field: 0 }),
            Box::new(DropOdd { field: 0 }),
            Box::new(Counter { count: 0 }),
        ]);
        let mut sequential = EngineChain::from_engines(vec![
            Box::new(Increment { field: 0 }),
            Box::new(DropOdd { field: 0 }),
            Box::new(Counter { count: 0 }),
        ]);

        let mut batch: Vec<RpcMessage> = (0..8).map(msg).collect();
        let mut verdicts = Vec::new();
        batched.process_batch(&mut batch, &mut verdicts);

        let mut expect: Vec<RpcMessage> = (0..8).map(msg).collect();
        let expect_verdicts: Vec<Verdict> =
            expect.iter_mut().map(|m| sequential.process(m)).collect();

        assert_eq!(verdicts, expect_verdicts);
        assert_eq!(batch, expect);
        // The counter only sees surviving messages, same both ways.
        assert_eq!(batched.export_states(), sequential.export_states());
    }

    #[test]
    fn batch_on_empty_slice_clears_verdicts() {
        let mut chain = EngineChain::from_engines(vec![Box::new(Counter { count: 0 })]);
        let mut verdicts = vec![Verdict::Drop];
        chain.process_batch(&mut [], &mut verdicts);
        assert!(verdicts.is_empty());
    }

    #[test]
    fn empty_chain_forwards() {
        let mut chain = EngineChain::new();
        let mut m = msg(9);
        assert_eq!(chain.process(&mut m), Verdict::Forward);
        assert!(chain.is_empty());
    }
}
