//! The flat-identifier virtual link layer.
//!
//! Paper §3: "The network and the software stack under the application
//! should offer no protocols or abstractions by default except for a
//! (virtual) link layer that can deliver packets to endpoints based on a
//! flat identifier such as a MAC address."
//!
//! [`Frame`] is that packet: source and destination flat ids plus opaque
//! bytes. Two realizations are provided:
//!
//! * [`InProcNetwork`] — a process-local fabric over crossbeam channels, the
//!   default for experiments (both the ADN path and the baseline mesh path
//!   ride it, so fabric cost is identical for the comparison).
//! * [`TcpLink`] — length-delimited frames over TCP for actually crossing
//!   host boundaries; used by the distributed examples.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};

use crate::error::{RpcError, RpcResult};

/// Flat endpoint identifier (the "MAC address" of the virtual link layer).
pub type EndpointAddr = u64;

/// A link-layer frame: flat addressing plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender's flat id.
    pub src: EndpointAddr,
    /// Receiver's flat id.
    pub dst: EndpointAddr,
    /// Opaque bytes. The ADN path carries schema-driven message encodings;
    /// the baseline mesh path carries HTTP/2-lite byte streams.
    pub payload: Vec<u8>,
}

/// Anything that can push a frame toward a destination endpoint.
pub trait Link: Send + Sync {
    /// Delivers `frame` to `frame.dst`, or fails if the endpoint is unknown
    /// or disconnected.
    fn send(&self, frame: Frame) -> RpcResult<()>;

    /// Delivers a batch of frames, returning how many were accepted.
    /// Failures are per-frame: a dead destination costs only its own frames.
    /// The default forwards one at a time; implementations override to
    /// amortize locking and syscalls (see [`TcpLink`]'s vectored writes).
    fn send_batch(&self, frames: Vec<Frame>) -> usize {
        frames.into_iter().filter_map(|f| self.send(f).ok()).count()
    }
}

// ---------------------------------------------------------------------------
// In-process fabric
// ---------------------------------------------------------------------------

#[derive(Default)]
struct InProcState {
    endpoints: HashMap<EndpointAddr, Sender<Frame>>,
}

/// A process-local frame fabric. Endpoints attach with [`InProcNetwork::attach`]
/// and receive their frames on the returned channel.
///
/// Inbound queues are unbounded by default (the historical behavior, and
/// what the golden sim log pins). Overload-hardened deployments set a
/// capacity — per endpoint via [`InProcNetwork::attach_bounded`] or fabric-
/// wide via [`InProcNetwork::set_default_capacity`] — after which a full
/// queue drops the frame like a saturated NIC would: counted in
/// [`InProcNetwork::inbound_drops`], never an error to the sender (the
/// sender's retry/deadline machinery is the recovery path). Control
/// channels (processor `Ctl`, controller events) ride their own crossbeam
/// channels, not this fabric, so they are exempt by construction.
#[derive(Clone, Default)]
pub struct InProcNetwork {
    state: Arc<RwLock<InProcState>>,
    /// Capacity for future `attach` calls; 0 = unbounded.
    default_capacity: Arc<AtomicUsize>,
    /// Frames dropped at full inbound queues, fabric-wide.
    inbound_drops: Arc<AtomicU64>,
}

impl InProcNetwork {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the inbound-queue capacity applied by subsequent
    /// [`InProcNetwork::attach`] calls (`None` = unbounded). Existing
    /// endpoints keep the capacity they attached with.
    pub fn set_default_capacity(&self, capacity: Option<usize>) {
        self.default_capacity
            .store(capacity.unwrap_or(0), Ordering::Relaxed);
    }

    /// Frames dropped because an inbound queue was full, fabric-wide.
    pub fn inbound_drops(&self) -> u64 {
        self.inbound_drops.load(Ordering::Relaxed)
    }

    /// Attaches an endpoint, returning its frame receiver. Re-attaching an
    /// address replaces the previous endpoint (used by live migration: the
    /// new instance takes over the flat id). The inbound queue uses the
    /// fabric's default capacity (unbounded unless configured).
    pub fn attach(&self, addr: EndpointAddr) -> Receiver<Frame> {
        match self.default_capacity.load(Ordering::Relaxed) {
            0 => self.attach_with(addr, None),
            cap => self.attach_with(addr, Some(cap)),
        }
    }

    /// Attaches an endpoint with an explicit inbound-queue capacity.
    pub fn attach_bounded(&self, addr: EndpointAddr, capacity: usize) -> Receiver<Frame> {
        self.attach_with(addr, Some(capacity.max(1)))
    }

    fn attach_with(&self, addr: EndpointAddr, capacity: Option<usize>) -> Receiver<Frame> {
        let (tx, rx) = match capacity {
            Some(cap) => crossbeam::channel::bounded(cap),
            None => crossbeam::channel::unbounded(),
        };
        self.state.write().endpoints.insert(addr, tx);
        rx
    }

    /// Detaches an endpoint; its queued frames are dropped.
    pub fn detach(&self, addr: EndpointAddr) {
        self.state.write().endpoints.remove(&addr);
    }

    /// Whether an endpoint is currently attached.
    pub fn is_attached(&self, addr: EndpointAddr) -> bool {
        self.state.read().endpoints.contains_key(&addr)
    }

    /// Number of attached endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.state.read().endpoints.len()
    }
}

impl Link for InProcNetwork {
    fn send(&self, frame: Frame) -> RpcResult<()> {
        let state = self.state.read();
        let tx = state
            .endpoints
            .get(&frame.dst)
            .ok_or(RpcError::UnknownEndpoint(frame.dst))?;
        match tx.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                // A saturated queue behaves like a dropped packet, not a
                // send failure: count it and let the sender's retry and
                // deadline machinery recover.
                self.inbound_drops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Disconnected(_)) => Err(RpcError::Disconnected),
        }
    }

    /// One endpoint-table read lock for the whole batch.
    fn send_batch(&self, frames: Vec<Frame>) -> usize {
        let state = self.state.read();
        frames
            .into_iter()
            .filter_map(|frame| match state.endpoints.get(&frame.dst) {
                Some(tx) => match tx.try_send(frame) {
                    Ok(()) => Some(()),
                    Err(TrySendError::Full(_)) => {
                        self.inbound_drops.fetch_add(1, Ordering::Relaxed);
                        Some(()) // accepted by the fabric, dropped at the queue
                    }
                    Err(TrySendError::Disconnected(_)) => None,
                },
                None => None,
            })
            .count()
    }
}

// ---------------------------------------------------------------------------
// TCP link
// ---------------------------------------------------------------------------

/// Wire framing for TCP: 4-byte big-endian length, then src (8 bytes BE),
/// dst (8 bytes BE), then payload.
fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let len = 16 + frame.payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.extend_from_slice(&frame.src.to_be_bytes());
    buf.extend_from_slice(&frame.dst.to_be_bytes());
    buf.extend_from_slice(&frame.payload);
    stream.write_all(&buf)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len < 16 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame shorter than header",
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    let src = u64::from_be_bytes(buf[0..8].try_into().expect("8 bytes"));
    let dst = u64::from_be_bytes(buf[8..16].try_into().expect("8 bytes"));
    let payload = buf[16..].to_vec();
    Ok(Frame { src, dst, payload })
}

/// A TCP realization of the virtual link layer for one host.
///
/// Each host runs one `TcpLink`, binds a listener, and registers a routing
/// table mapping remote flat ids to socket addresses (in a real deployment
/// the controller distributes this table; here tests populate it directly).
/// Frames to local endpoints are delivered on the host's receive channel.
pub struct TcpLink {
    local_addr: SocketAddr,
    routes: RwLock<HashMap<EndpointAddr, SocketAddr>>,
    conns: Mutex<HashMap<SocketAddr, TcpStream>>,
    incoming_rx: Receiver<Frame>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    closed: Arc<AtomicBool>,
    inbound_drops: Arc<AtomicU64>,
}

impl TcpLink {
    /// Binds a listener on `bind` (use port 0 for an ephemeral port) and
    /// starts the accept loop with an unbounded inbound queue.
    pub fn bind(bind: &str) -> RpcResult<Arc<Self>> {
        Self::bind_with_capacity(bind, None)
    }

    /// Like [`TcpLink::bind`], but bounds the host's inbound frame queue.
    /// When the queue is full, reader threads drop the frame (counted in
    /// [`TcpLink::inbound_drops`]) instead of buffering without limit —
    /// the overload-control backpressure point for cross-host traffic.
    pub fn bind_with_capacity(bind: &str, capacity: Option<usize>) -> RpcResult<Arc<Self>> {
        let listener = TcpListener::bind(bind)?;
        let local_addr = listener.local_addr()?;
        let (incoming_tx, incoming_rx) = match capacity {
            Some(cap) => crossbeam::channel::bounded(cap.max(1)),
            None => crossbeam::channel::unbounded(),
        };
        let accepted: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let closed = Arc::new(AtomicBool::new(false));
        let inbound_drops = Arc::new(AtomicU64::new(0));

        let link = Arc::new(Self {
            local_addr,
            routes: RwLock::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            incoming_rx,
            accepted: accepted.clone(),
            closed: closed.clone(),
            inbound_drops: inbound_drops.clone(),
        });

        std::thread::Builder::new()
            .name(format!("tcp-link-accept-{local_addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if closed.load(Ordering::Relaxed) {
                        return; // listener drops; the port is released
                    }
                    let Ok(mut stream) = stream else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        accepted.lock().push(clone);
                    }
                    let tx = incoming_tx.clone();
                    let drops = inbound_drops.clone();
                    std::thread::Builder::new()
                        .name("tcp-link-read".to_owned())
                        .spawn(move || {
                            stream.set_nodelay(true).ok();
                            while let Ok(frame) = read_frame(&mut stream) {
                                match tx.try_send(frame) {
                                    Ok(()) => {}
                                    Err(TrySendError::Full(_)) => {
                                        drops.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(TrySendError::Disconnected(_)) => break,
                                }
                            }
                        })
                        .expect("spawn reader thread");
                }
            })
            .expect("spawn accept thread");

        Ok(link)
    }

    /// Frames dropped because the inbound queue was full.
    pub fn inbound_drops(&self) -> u64 {
        self.inbound_drops.load(Ordering::Relaxed)
    }

    /// Shuts the link down: stops accepting, severs every accepted and
    /// outbound connection, and releases the listening port. Peers' next
    /// sends to this host fail with an [`RpcError`]; a peer recovers by
    /// re-pointing its route at a live host.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        for stream in self.accepted.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, stream) in self.conns.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// The bound socket address (for distributing routes).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers (or updates) the socket address hosting a flat id.
    pub fn add_route(&self, endpoint: EndpointAddr, to: SocketAddr) {
        self.routes.write().insert(endpoint, to);
    }

    /// Frames addressed to this host's endpoints.
    pub fn incoming(&self) -> &Receiver<Frame> {
        &self.incoming_rx
    }

    fn connection_to(&self, peer: SocketAddr) -> RpcResult<TcpStream> {
        let mut conns = self.conns.lock();
        if let Some(stream) = conns.get(&peer) {
            return Ok(stream.try_clone()?);
        }
        let stream = TcpStream::connect_timeout(&peer, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        conns.insert(peer, stream.try_clone()?);
        Ok(stream)
    }

    /// Writes a same-peer group of frames with one vectored syscall:
    /// `[header, payload]` slice pairs, one 20-byte framing header per
    /// frame. A short vectored write flattens only the unwritten tail and
    /// finishes with `write_all`; payloads are never copied on the happy
    /// path.
    fn write_group(&self, peer: SocketAddr, frames: &[Frame]) -> std::io::Result<()> {
        use std::io::IoSlice;
        let headers: Vec<[u8; 20]> = frames
            .iter()
            .map(|f| {
                let mut h = [0u8; 20];
                h[0..4].copy_from_slice(&((16 + f.payload.len()) as u32).to_be_bytes());
                h[4..12].copy_from_slice(&f.src.to_be_bytes());
                h[12..20].copy_from_slice(&f.dst.to_be_bytes());
                h
            })
            .collect();
        let mut slices = Vec::with_capacity(frames.len() * 2);
        for (h, f) in headers.iter().zip(frames) {
            slices.push(IoSlice::new(h));
            slices.push(IoSlice::new(&f.payload));
        }
        let total: usize = slices.iter().map(|s| s.len()).sum();
        let mut stream = self
            .connection_to(peer)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut written = stream.write_vectored(&slices)?;
        if written < total {
            let mut rest = Vec::with_capacity(total - written);
            for s in &slices {
                if written >= s.len() {
                    written -= s.len();
                    continue;
                }
                rest.extend_from_slice(&s[written..]);
                written = 0;
            }
            stream.write_all(&rest)?;
        }
        Ok(())
    }
}

impl Link for TcpLink {
    fn send(&self, frame: Frame) -> RpcResult<()> {
        // Two attempts: a cached connection may be stale (peer restarted),
        // in which case the write error evicts it and the second attempt
        // re-resolves the route and dials fresh.
        let mut last_err = None;
        for _ in 0..2 {
            let peer = {
                let routes = self.routes.read();
                *routes
                    .get(&frame.dst)
                    .ok_or(RpcError::UnknownEndpoint(frame.dst))?
            };
            let mut stream = match self.connection_to(peer) {
                Ok(s) => s,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match write_frame(&mut stream, &frame) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Connection died; drop it so the retry redials.
                    self.conns.lock().remove(&peer);
                    last_err = Some(RpcError::Io(e));
                }
            }
        }
        Err(last_err.unwrap_or(RpcError::Disconnected))
    }

    /// Groups frames by resolved peer (preserving per-peer order) and
    /// writes each group with one vectored syscall. A group whose vectored
    /// write fails evicts the cached connection and falls back to
    /// per-frame [`TcpLink::send`], which redials — so one stale peer
    /// costs one redial, not the batch.
    fn send_batch(&self, frames: Vec<Frame>) -> usize {
        let mut groups: Vec<(SocketAddr, Vec<Frame>)> = Vec::new();
        {
            let routes = self.routes.read();
            for frame in frames {
                let Some(&peer) = routes.get(&frame.dst) else {
                    continue; // unrouted: same outcome as send()'s error
                };
                match groups.iter_mut().find(|(p, _)| *p == peer) {
                    Some((_, group)) => group.push(frame),
                    None => groups.push((peer, vec![frame])),
                }
            }
        }
        let mut sent = 0;
        for (peer, group) in groups {
            match self.write_group(peer, &group) {
                Ok(()) => sent += group.len(),
                Err(_) => {
                    self.conns.lock().remove(&peer);
                    sent += group.into_iter().filter_map(|f| self.send(f).ok()).count();
                }
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_delivers_to_attached_endpoint() {
        let net = InProcNetwork::new();
        let rx = net.attach(7);
        net.send(Frame {
            src: 1,
            dst: 7,
            payload: b"hi".to_vec(),
        })
        .unwrap();
        let frame = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(frame.payload, b"hi");
        assert_eq!(frame.src, 1);
    }

    #[test]
    fn inproc_unknown_endpoint_errors() {
        let net = InProcNetwork::new();
        let err = net
            .send(Frame {
                src: 1,
                dst: 99,
                payload: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, RpcError::UnknownEndpoint(99)));
    }

    #[test]
    fn inproc_reattach_replaces_endpoint() {
        let net = InProcNetwork::new();
        let _old = net.attach(5);
        let new = net.attach(5);
        net.send(Frame {
            src: 0,
            dst: 5,
            payload: b"x".to_vec(),
        })
        .unwrap();
        assert!(new.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn inproc_detach_removes_endpoint() {
        let net = InProcNetwork::new();
        let _rx = net.attach(3);
        assert!(net.is_attached(3));
        net.detach(3);
        assert!(!net.is_attached(3));
        assert_eq!(net.endpoint_count(), 0);
    }

    #[test]
    fn inproc_bounded_queue_drops_overflow_and_counts() {
        let net = InProcNetwork::new();
        let rx = net.attach_bounded(7, 2);
        for i in 0..5u8 {
            net.send(Frame {
                src: 1,
                dst: 7,
                payload: vec![i],
            })
            .unwrap();
        }
        assert_eq!(net.inbound_drops(), 3, "overflow beyond capacity counted");
        // The first `capacity` frames survive in order; the rest were shed.
        assert_eq!(rx.try_recv().unwrap().payload, vec![0]);
        assert_eq!(rx.try_recv().unwrap().payload, vec![1]);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn inproc_default_capacity_applies_to_later_attaches() {
        let net = InProcNetwork::new();
        let unbounded = net.attach(1);
        net.set_default_capacity(Some(1));
        let bounded = net.attach(2);
        for _ in 0..3 {
            net.send(Frame {
                src: 9,
                dst: 1,
                payload: vec![],
            })
            .unwrap();
            net.send(Frame {
                src: 9,
                dst: 2,
                payload: vec![],
            })
            .unwrap();
        }
        assert_eq!(unbounded.len(), 3, "pre-config endpoint stays unbounded");
        assert_eq!(bounded.len(), 1);
        assert_eq!(net.inbound_drops(), 2);
        // Batch sends count drops the same way.
        net.set_default_capacity(None);
        let frames: Vec<Frame> = (0..4)
            .map(|_| Frame {
                src: 9,
                dst: 2,
                payload: vec![],
            })
            .collect();
        assert_eq!(net.send_batch(frames), 4, "fabric accepted every frame");
        assert_eq!(net.inbound_drops(), 6);
    }

    #[test]
    fn tcp_bounded_queue_drops_overflow_and_counts() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind_with_capacity("127.0.0.1:0", Some(2)).unwrap();
        a.add_route(2, b.local_addr());
        for i in 0..20u8 {
            a.send(Frame {
                src: 1,
                dst: 2,
                payload: vec![i],
            })
            .unwrap();
        }
        // Reader-side drops are asynchronous; wait for the queue+counter to
        // account for every frame.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (b.incoming().len() as u64) + b.inbound_drops() < 20 {
            assert!(std::time::Instant::now() < deadline, "frames unaccounted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(b.inbound_drops() >= 18, "drops={}", b.inbound_drops());
        assert_eq!(b.incoming().try_recv().unwrap().payload, vec![0]);
    }

    #[test]
    fn tcp_roundtrip_over_loopback() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(200, b.local_addr());
        b.add_route(100, a.local_addr());

        a.send(Frame {
            src: 100,
            dst: 200,
            payload: b"ping".to_vec(),
        })
        .unwrap();
        let frame = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frame.payload, b"ping");

        b.send(Frame {
            src: 200,
            dst: 100,
            payload: b"pong".to_vec(),
        })
        .unwrap();
        let frame = a.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(frame.payload, b"pong");
    }

    #[test]
    fn tcp_many_frames_preserve_order_per_connection() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(2, b.local_addr());
        for i in 0..100u32 {
            a.send(Frame {
                src: 1,
                dst: 2,
                payload: i.to_be_bytes().to_vec(),
            })
            .unwrap();
        }
        for i in 0..100u32 {
            let frame = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(frame.payload, i.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn tcp_send_to_closed_peer_errors_then_reconnect_succeeds() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(2, b.local_addr());
        a.send(Frame {
            src: 1,
            dst: 2,
            payload: b"pre".to_vec(),
        })
        .unwrap();
        assert_eq!(
            b.incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .payload,
            b"pre".to_vec()
        );

        // Peer goes away entirely: connections severed, listener closed.
        b.close();
        // TCP buffering may absorb a few writes before the reset surfaces;
        // the send must eventually return an error — never panic or hang.
        let mut saw_err = false;
        for _ in 0..400 {
            if a.send(Frame {
                src: 1,
                dst: 2,
                payload: b"lost".to_vec(),
            })
            .is_err()
            {
                saw_err = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_err, "send to a closed peer must surface an RpcError");

        // Failover: re-point the flat id at a live replacement host; the
        // next send redials and delivery resumes.
        let b2 = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(2, b2.local_addr());
        a.send(Frame {
            src: 1,
            dst: 2,
            payload: b"post".to_vec(),
        })
        .unwrap();
        assert_eq!(
            b2.incoming()
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .payload,
            b"post".to_vec()
        );
    }

    #[test]
    fn inproc_send_batch_counts_per_frame() {
        let net = InProcNetwork::new();
        let rx = net.attach(7);
        let frames: Vec<Frame> = (0..5u64)
            .map(|i| Frame {
                src: 1,
                dst: if i == 2 { 99 } else { 7 },
                payload: vec![i as u8],
            })
            .collect();
        assert_eq!(net.send_batch(frames), 4);
        let got: Vec<u8> = (0..4).map(|_| rx.try_recv().unwrap().payload[0]).collect();
        assert_eq!(got, vec![0, 1, 3, 4], "order preserved, dead dst skipped");
    }

    #[test]
    fn tcp_send_batch_vectored_delivers_in_order() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind("127.0.0.1:0").unwrap();
        let c = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(2, b.local_addr());
        a.add_route(3, c.local_addr());
        // Interleaved destinations, including a large payload so the group
        // write exercises the short-write path on some platforms.
        let mut frames = Vec::new();
        for i in 0..50u32 {
            frames.push(Frame {
                src: 1,
                dst: 2 + (i % 2) as u64,
                payload: if i == 10 {
                    vec![7u8; 256 * 1024]
                } else {
                    i.to_be_bytes().to_vec()
                },
            });
        }
        assert_eq!(a.send_batch(frames), 50);
        let mut to_b = Vec::new();
        for _ in 0..25 {
            to_b.push(b.incoming().recv_timeout(Duration::from_secs(5)).unwrap());
        }
        let mut to_c = Vec::new();
        for _ in 0..25 {
            to_c.push(c.incoming().recv_timeout(Duration::from_secs(5)).unwrap());
        }
        for (k, f) in to_b.iter().enumerate() {
            let i = 2 * k as u32;
            if i == 10 {
                assert_eq!(f.payload.len(), 256 * 1024);
            } else {
                assert_eq!(f.payload, i.to_be_bytes().to_vec());
            }
        }
        for (k, f) in to_c.iter().enumerate() {
            let i = 2 * k as u32 + 1;
            assert_eq!(f.payload, i.to_be_bytes().to_vec());
        }
    }

    #[test]
    fn tcp_send_batch_dead_peer_only_loses_its_group() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        let b = TcpLink::bind("127.0.0.1:0").unwrap();
        a.add_route(2, b.local_addr());
        // Route 3 to a port nothing listens on.
        let dead = TcpLink::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr();
        dead.close();
        std::thread::sleep(Duration::from_millis(50));
        a.add_route(3, dead_addr);

        let frames: Vec<Frame> = (0..6u64)
            .map(|i| Frame {
                src: 1,
                dst: 2 + (i % 2),
                payload: vec![i as u8],
            })
            .collect();
        let sent = a.send_batch(frames);
        assert!(sent >= 3, "live peer's frames must survive, sent={sent}");
        for _ in 0..3 {
            let f = b.incoming().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(f.payload[0] % 2, 0);
        }
    }

    #[test]
    fn tcp_unknown_route_errors() {
        let a = TcpLink::bind("127.0.0.1:0").unwrap();
        assert!(matches!(
            a.send(Frame {
                src: 1,
                dst: 42,
                payload: vec![]
            }),
            Err(RpcError::UnknownEndpoint(42))
        ));
    }
}
