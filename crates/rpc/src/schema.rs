//! Application-declared RPC schemas.
//!
//! ADN has no standard protocol headers; the application's own message
//! schema is the only contract (paper §4 Q1: element reuse "needs careful
//! consideration because there are no standard headers"). A [`ServiceSchema`]
//! declares the methods a service exposes; each [`MethodDef`] names a request
//! and a response [`RpcSchema`] — an ordered list of typed fields.
//!
//! Field order is significant: compiled plans address fields by index, and
//! the wire format encodes fields in schema order with no tags.

use std::fmt;
use std::sync::Arc;

use crate::value::{Value, ValueType};

/// One field of an RPC message schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name as referenced by DSL programs (`input.<name>`).
    pub name: String,
    /// Field type.
    pub ty: ValueType,
}

impl FieldDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered, typed field list describing one message shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcSchema {
    fields: Vec<FieldDef>,
}

impl RpcSchema {
    /// Builds a schema; field names must be unique.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self, SchemaError> {
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                if fields[i].name == fields[j].name {
                    return Err(SchemaError::DuplicateField(fields[i].name.clone()));
                }
            }
        }
        Ok(Self { fields })
    }

    /// Builder-style schema construction used in tests and examples.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { fields: Vec::new() }
    }

    /// Ordered fields.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Type of a field by name.
    pub fn type_of(&self, name: &str) -> Option<ValueType> {
        self.field(name).map(|f| f.ty)
    }

    /// Default (zero) values for all fields, in order.
    pub fn default_values(&self) -> Vec<Value> {
        self.fields
            .iter()
            .map(|f| Value::default_of(f.ty))
            .collect()
    }

    /// Validates that `values` matches this schema positionally.
    pub fn check_values(&self, values: &[Value]) -> Result<(), SchemaError> {
        if values.len() != self.fields.len() {
            return Err(SchemaError::ArityMismatch {
                expected: self.fields.len(),
                actual: values.len(),
            });
        }
        for (f, v) in self.fields.iter().zip(values) {
            if v.value_type() != f.ty {
                return Err(SchemaError::TypeMismatch {
                    field: f.name.clone(),
                    expected: f.ty,
                    actual: v.value_type(),
                });
            }
        }
        Ok(())
    }
}

/// Incremental schema construction.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    fields: Vec<FieldDef>,
}

impl SchemaBuilder {
    /// Appends a field.
    pub fn field(mut self, name: impl Into<String>, ty: ValueType) -> Self {
        self.fields.push(FieldDef::new(name, ty));
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Result<RpcSchema, SchemaError> {
        RpcSchema::new(self.fields)
    }
}

/// One RPC method: a named request/response schema pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Method id used on the wire and in compiled plans.
    pub id: u16,
    /// Method name (`Service.Method` style left to the application).
    pub name: String,
    /// Request message schema.
    pub request: Arc<RpcSchema>,
    /// Response message schema.
    pub response: Arc<RpcSchema>,
}

/// The full schema of a service: its methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSchema {
    /// Service name.
    pub name: String,
    methods: Vec<MethodDef>,
}

impl ServiceSchema {
    /// Builds a service schema; method ids and names must be unique.
    pub fn new(name: impl Into<String>, methods: Vec<MethodDef>) -> Result<Self, SchemaError> {
        for i in 0..methods.len() {
            for j in (i + 1)..methods.len() {
                if methods[i].id == methods[j].id {
                    return Err(SchemaError::DuplicateMethodId(methods[i].id));
                }
                if methods[i].name == methods[j].name {
                    return Err(SchemaError::DuplicateField(methods[i].name.clone()));
                }
            }
        }
        Ok(Self {
            name: name.into(),
            methods,
        })
    }

    /// All methods.
    pub fn methods(&self) -> &[MethodDef] {
        &self.methods
    }

    /// Looks up a method by wire id.
    pub fn method_by_id(&self, id: u16) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.id == id)
    }

    /// Looks up a method by name.
    pub fn method_by_name(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Schema construction/validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two fields (or methods) share a name.
    DuplicateField(String),
    /// Two methods share a wire id.
    DuplicateMethodId(u16),
    /// Value list length does not match schema.
    ArityMismatch { expected: usize, actual: usize },
    /// A value's type does not match its field.
    TypeMismatch {
        field: String,
        expected: ValueType,
        actual: ValueType,
    },
    /// A named field does not exist.
    UnknownField(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateField(name) => write!(f, "duplicate field or method {name:?}"),
            SchemaError::DuplicateMethodId(id) => write!(f, "duplicate method id {id}"),
            SchemaError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} values, got {actual}")
            }
            SchemaError::TypeMismatch {
                field,
                expected,
                actual,
            } => write!(f, "field {field:?} expects {expected}, got {actual}"),
            SchemaError::UnknownField(name) => write!(f, "unknown field {name:?}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_schema() -> RpcSchema {
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_lookup() {
        let s = kv_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("username"), Some(1));
        assert_eq!(s.type_of("payload"), Some(ValueType::Bytes));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err = RpcSchema::builder()
            .field("a", ValueType::U64)
            .field("a", ValueType::Str)
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateField("a".into()));
    }

    #[test]
    fn check_values_validates_types_and_arity() {
        let s = kv_schema();
        assert!(s
            .check_values(&[Value::U64(1), Value::Str("u".into()), Value::Bytes(vec![])])
            .is_ok());
        assert!(matches!(
            s.check_values(&[Value::U64(1)]),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_values(&[
                Value::Str("x".into()),
                Value::Str("u".into()),
                Value::Bytes(vec![])
            ]),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn default_values_typecheck() {
        let s = kv_schema();
        assert!(s.check_values(&s.default_values()).is_ok());
    }

    #[test]
    fn service_schema_rejects_duplicate_ids() {
        let req = Arc::new(kv_schema());
        let resp = Arc::new(
            RpcSchema::builder()
                .field("status", ValueType::U64)
                .build()
                .unwrap(),
        );
        let m = |id: u16, name: &str| MethodDef {
            id,
            name: name.into(),
            request: req.clone(),
            response: resp.clone(),
        };
        assert!(ServiceSchema::new("S", vec![m(1, "Get"), m(1, "Put")]).is_err());
        let ok = ServiceSchema::new("S", vec![m(1, "Get"), m(2, "Put")]).unwrap();
        assert_eq!(ok.method_by_id(2).unwrap().name, "Put");
        assert_eq!(ok.method_by_name("Get").unwrap().id, 1);
    }
}
