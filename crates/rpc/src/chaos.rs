//! Deterministic failure injection at the virtual link layer.
//!
//! [`ChaosLink`] wraps any [`Link`] and perturbs the frame stream: seeded
//! random drops, duplicates, one-frame reorders, delayed delivery, and named
//! partitions that blackhole (src, dst) pairs until healed. Policies are
//! togglable per pair at runtime, so a test can degrade exactly one path
//! (say client → processor) while the rest of the fabric stays clean.
//!
//! All randomness comes from one seeded [`StdRng`], so a given seed and
//! send sequence reproduces the same fault schedule — chaos tests are
//! deterministic modulo thread scheduling.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adn_wire::clock::Clock;
use parking_lot::{Mutex, RwLock};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::error::RpcResult;
use crate::transport::{EndpointAddr, Frame, Link};

/// Fault probabilities applied to frames on a path. Effects are mutually
/// exclusive per frame, checked in order: drop, delay, reorder, duplicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Probability the frame is silently discarded.
    pub drop_prob: f64,
    /// Probability the frame is delivered twice.
    pub dup_prob: f64,
    /// Probability the frame is held back one send and delivered after the
    /// next frame (a one-frame reorder).
    pub reorder_prob: f64,
    /// Probability the frame is delivered late, after `delay`.
    pub delay_prob: f64,
    /// Lateness applied to delayed frames.
    pub delay: Duration,
}

impl ChaosPolicy {
    /// No faults: frames pass through untouched.
    pub fn lossless() -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Drops only, at probability `p`.
    pub fn drops(p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::lossless()
        }
    }

    /// Duplicates only, at probability `p`.
    pub fn duplicates(p: f64) -> Self {
        Self {
            dup_prob: p,
            ..Self::lossless()
        }
    }
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        Self::lossless()
    }
}

/// Counters for injected faults (snapshot via [`ChaosLink::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames delivered unperturbed.
    pub passed: u64,
    /// Frames discarded by drop injection.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back for a one-frame reorder.
    pub reordered: u64,
    /// Frames delivered late.
    pub delayed: u64,
    /// Frames blackholed by an active partition.
    pub partitioned: u64,
}

#[derive(Debug, Default)]
struct Counters {
    passed: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    partitioned: AtomicU64,
}

/// A [`Link`] wrapper that injects faults per [`ChaosPolicy`].
///
/// Partition semantics: a named partition is a set of (a, b) endpoint pairs;
/// frames between a and b **in either direction** are blackholed (the send
/// still returns `Ok`, like a lossy wire) until [`ChaosLink::heal`] removes
/// the partition.
pub struct ChaosLink {
    inner: Arc<dyn Link>,
    default_policy: RwLock<ChaosPolicy>,
    pair_policies: RwLock<HashMap<(EndpointAddr, EndpointAddr), ChaosPolicy>>,
    partitions: RwLock<HashMap<String, HashSet<(EndpointAddr, EndpointAddr)>>>,
    rng: Mutex<StdRng>,
    stash: Mutex<Option<Frame>>,
    counters: Counters,
    /// Time source for the delayed-delivery path; the delay thread sleeps
    /// on this clock, so under a virtual clock the hold is virtual too.
    clock: Arc<dyn Clock>,
}

impl ChaosLink {
    /// Wraps `inner` with a lossless default policy.
    pub fn new(inner: Arc<dyn Link>, seed: u64) -> Arc<Self> {
        Self::with_policy(inner, seed, ChaosPolicy::lossless())
    }

    /// Wraps `inner` with `policy` as the default for every path.
    pub fn with_policy(inner: Arc<dyn Link>, seed: u64, policy: ChaosPolicy) -> Arc<Self> {
        Self::with_policy_and_clock(inner, seed, policy, adn_wire::clock::system())
    }

    /// [`ChaosLink::with_policy`] with an explicit time source for the
    /// delayed-delivery path.
    pub fn with_policy_and_clock(
        inner: Arc<dyn Link>,
        seed: u64,
        policy: ChaosPolicy,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        Arc::new(Self {
            inner,
            default_policy: RwLock::new(policy),
            pair_policies: RwLock::new(HashMap::new()),
            partitions: RwLock::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stash: Mutex::new(None),
            counters: Counters::default(),
            clock,
        })
    }

    /// Replaces the default policy applied to paths without an override.
    pub fn set_default_policy(&self, policy: ChaosPolicy) {
        *self.default_policy.write() = policy;
    }

    /// Sets a policy override for the (src, dst) path (one direction).
    pub fn set_pair_policy(&self, src: EndpointAddr, dst: EndpointAddr, policy: ChaosPolicy) {
        self.pair_policies.write().insert((src, dst), policy);
    }

    /// Removes a path override; the path reverts to the default policy.
    pub fn clear_pair_policy(&self, src: EndpointAddr, dst: EndpointAddr) {
        self.pair_policies.write().remove(&(src, dst));
    }

    /// Installs (or extends) a named partition blackholing every listed
    /// pair, both directions.
    pub fn partition(&self, name: &str, pairs: &[(EndpointAddr, EndpointAddr)]) {
        self.partitions
            .write()
            .entry(name.to_owned())
            .or_default()
            .extend(pairs.iter().copied());
    }

    /// Removes a named partition; traffic between its pairs resumes.
    pub fn heal(&self, name: &str) {
        self.partitions.write().remove(name);
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            passed: self.counters.passed.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            duplicated: self.counters.duplicated.load(Ordering::Relaxed),
            reordered: self.counters.reordered.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            partitioned: self.counters.partitioned.load(Ordering::Relaxed),
        }
    }

    fn is_partitioned(&self, src: EndpointAddr, dst: EndpointAddr) -> bool {
        self.partitions
            .read()
            .values()
            .any(|pairs| pairs.contains(&(src, dst)) || pairs.contains(&(dst, src)))
    }

    fn policy_for(&self, src: EndpointAddr, dst: EndpointAddr) -> ChaosPolicy {
        self.pair_policies
            .read()
            .get(&(src, dst))
            .copied()
            .unwrap_or(*self.default_policy.read())
    }

    /// Delivers any frame still held by the reorder stash (useful at the
    /// end of a test so no frame stays parked forever).
    pub fn flush(&self) {
        if let Some(held) = self.stash.lock().take() {
            let _ = self.inner.send(held);
        }
    }
}

impl Link for ChaosLink {
    fn send(&self, frame: Frame) -> RpcResult<()> {
        if self.is_partitioned(frame.src, frame.dst) {
            self.counters.partitioned.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // blackhole, like a lossy wire
        }
        let policy = self.policy_for(frame.src, frame.dst);
        // One roll sequence under a single lock keeps the schedule
        // reproducible for a given seed and send order.
        let (dropped, delay, reorder, dup) = {
            let mut rng = self.rng.lock();
            (
                rng.gen_bool(policy.drop_prob),
                rng.gen_bool(policy.delay_prob),
                rng.gen_bool(policy.reorder_prob),
                rng.gen_bool(policy.dup_prob),
            )
        };
        if dropped {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if delay && policy.delay > Duration::ZERO {
            self.counters.delayed.fetch_add(1, Ordering::Relaxed);
            let inner = self.inner.clone();
            let delay = policy.delay;
            let clock = self.clock.clone();
            std::thread::Builder::new()
                .name("chaos-delay".to_owned())
                .spawn(move || {
                    clock.sleep(delay);
                    let _ = inner.send(frame);
                })
                .expect("spawn chaos delay thread");
            return Ok(());
        }
        if reorder {
            self.counters.reordered.fetch_add(1, Ordering::Relaxed);
            let mut stash = self.stash.lock();
            match stash.take() {
                None => {
                    *stash = Some(frame);
                    return Ok(());
                }
                Some(held) => {
                    drop(stash);
                    // Already holding a frame: deliver the new one first,
                    // then the held one — the reorder resolves now.
                    self.inner.send(frame)?;
                    let _ = self.inner.send(held);
                    return Ok(());
                }
            }
        }
        // Normal delivery; flush any stashed frame *after* this one so the
        // stashed frame is observably reordered.
        let held = self.stash.lock().take();
        let dup_frame = dup.then(|| frame.clone());
        self.inner.send(frame)?;
        self.counters.passed.fetch_add(1, Ordering::Relaxed);
        if let Some(copy) = dup_frame {
            self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
            let _ = self.inner.send(copy);
        }
        if let Some(held) = held {
            let _ = self.inner.send(held);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcNetwork;

    fn frame(src: u64, dst: u64, tag: u8) -> Frame {
        Frame {
            src,
            dst,
            payload: vec![tag],
        }
    }

    #[test]
    fn lossless_passes_everything() {
        let net = InProcNetwork::new();
        let rx = net.attach(2);
        let chaos = ChaosLink::new(Arc::new(net), 1);
        for i in 0..10u8 {
            chaos.send(frame(1, 2, i)).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(1)).unwrap().payload,
                [i]
            );
        }
        assert_eq!(chaos.stats().passed, 10);
        assert_eq!(chaos.stats().dropped, 0);
    }

    #[test]
    fn full_drop_discards_everything() {
        let net = InProcNetwork::new();
        let rx = net.attach(2);
        let chaos = ChaosLink::with_policy(Arc::new(net), 1, ChaosPolicy::drops(1.0));
        for i in 0..5u8 {
            chaos.send(frame(1, 2, i)).unwrap();
        }
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(chaos.stats().dropped, 5);
    }

    #[test]
    fn drop_rate_is_seed_deterministic() {
        let run = |seed: u64| {
            let net = InProcNetwork::new();
            let _rx = net.attach(2);
            let chaos = ChaosLink::with_policy(Arc::new(net), seed, ChaosPolicy::drops(0.3));
            for i in 0..100u8 {
                chaos.send(frame(1, 2, i)).unwrap();
            }
            chaos.stats().dropped
        };
        assert_eq!(run(42), run(42));
        // Some drops happened, but not all frames dropped.
        let dropped = run(42);
        assert!(dropped > 0 && dropped < 100, "dropped={dropped}");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let net = InProcNetwork::new();
        let rx = net.attach(2);
        let chaos = ChaosLink::with_policy(Arc::new(net), 1, ChaosPolicy::duplicates(1.0));
        chaos.send(frame(1, 2, 7)).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().payload,
            [7]
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().payload,
            [7]
        );
        assert_eq!(chaos.stats().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let net = InProcNetwork::new();
        let rx = net.attach(2);
        let chaos = ChaosLink::new(Arc::new(net), 1);
        // Only the first frame reorders: hold it, deliver the second first.
        chaos.set_pair_policy(
            1,
            2,
            ChaosPolicy {
                reorder_prob: 1.0,
                ..ChaosPolicy::lossless()
            },
        );
        chaos.send(frame(1, 2, 0)).unwrap();
        chaos.set_pair_policy(1, 2, ChaosPolicy::lossless());
        chaos.send(frame(1, 2, 1)).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().payload,
            [1]
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().payload,
            [0]
        );
        assert_eq!(chaos.stats().reordered, 1);
    }

    #[test]
    fn delay_arrives_late() {
        let net = InProcNetwork::new();
        let rx = net.attach(2);
        let chaos = ChaosLink::new(Arc::new(net), 1);
        chaos.set_pair_policy(
            1,
            2,
            ChaosPolicy {
                delay_prob: 1.0,
                delay: Duration::from_millis(30),
                ..ChaosPolicy::lossless()
            },
        );
        let start = std::time::Instant::now();
        chaos.send(frame(1, 2, 9)).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.payload, [9]);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(chaos.stats().delayed, 1);
    }

    #[test]
    fn partition_blackholes_both_directions_until_healed() {
        let net = InProcNetwork::new();
        let rx1 = net.attach(1);
        let rx2 = net.attach(2);
        let chaos = ChaosLink::new(Arc::new(net), 1);
        chaos.partition("split", &[(1, 2)]);
        chaos.send(frame(1, 2, 0)).unwrap();
        chaos.send(frame(2, 1, 0)).unwrap();
        assert!(rx2.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(rx1.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(chaos.stats().partitioned, 2);

        chaos.heal("split");
        chaos.send(frame(1, 2, 1)).unwrap();
        assert_eq!(
            rx2.recv_timeout(Duration::from_secs(1)).unwrap().payload,
            [1]
        );
    }

    #[test]
    fn pair_policy_overrides_default() {
        let net = InProcNetwork::new();
        let rx2 = net.attach(2);
        let rx3 = net.attach(3);
        // Default drops everything; the 1→3 path is exempted.
        let chaos = ChaosLink::with_policy(Arc::new(net), 1, ChaosPolicy::drops(1.0));
        chaos.set_pair_policy(1, 3, ChaosPolicy::lossless());
        chaos.send(frame(1, 2, 0)).unwrap();
        chaos.send(frame(1, 3, 0)).unwrap();
        assert!(rx2.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(rx3.recv_timeout(Duration::from_secs(1)).is_ok());

        chaos.clear_pair_policy(1, 3);
        chaos.send(frame(1, 3, 1)).unwrap();
        assert!(rx3.recv_timeout(Duration::from_millis(50)).is_err());
    }
}
