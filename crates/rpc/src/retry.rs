//! Resilience primitives for the RPC runtime: retry policies with
//! exponential backoff and jitter, per-destination circuit breakers, and the
//! bounded dedup window that keeps retried requests at-most-once on the
//! server and processor side.
//!
//! The paper's reconfiguration story (§5.2) assumes the chain keeps serving
//! while the controller moves elements around. These primitives are what a
//! client and the data plane need so that the degraded window — frames lost,
//! a processor dead, a partition healing — is survived without duplicate
//! side-effects in stateful elements.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::time::Duration;

use adn_wire::header::Priority;
use rand::{rngs::StdRng, Rng};

/// How a resilient client behaves toward a destination whose circuit
/// breaker is open (the chain path is degraded, e.g. a dead processor that
/// the controller has not yet replaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Fail fast with [`crate::RpcError::CircuitOpen`]; no traffic flows
    /// until the path recovers. Safe default: policy elements (ACL, quota)
    /// are never bypassed.
    #[default]
    FailClosed,
    /// Bypass the configured first hop and send straight to the logical
    /// destination. Keeps the application alive at the cost of skipping
    /// off-path chain elements for the degraded window.
    FailOpen,
}

/// Retry schedule for [`crate::runtime::RpcClient::call_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Per-attempt response wait before the attempt counts as failed.
    pub attempt_timeout: Duration,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff growth cap (jitter is added on top).
    pub max_backoff: Duration,
    /// Overall per-call deadline across all attempts and backoffs.
    pub deadline: Duration,
    /// Whether to stamp the remaining deadline budget (and `priority`)
    /// in-band on every attempt, so downstream hops can drop work whose
    /// caller already gave up and shed lowest-priority-first under
    /// overload. Off by default: unstamped messages are byte-identical to
    /// the pre-extension wire format.
    pub propagate_deadline: bool,
    /// Priority class stamped alongside the budget when
    /// `propagate_deadline` is on.
    pub priority: Priority,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            attempt_timeout: Duration::from_secs(1),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            deadline: Duration::from_secs(10),
            propagate_deadline: false,
            priority: Priority::Normal,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after `failures` failed attempts (1-based):
    /// exponential growth capped at `max_backoff`, plus up to 50% seeded
    /// jitter so synchronized retriers de-correlate.
    pub fn backoff(&self, failures: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << failures.clamp(1, 16).saturating_sub(1));
        let capped = exp.min(self.max_backoff);
        let half_ns = capped.as_nanos() as u64 / 2;
        let jitter = if half_ns == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(rng.gen_range(0..half_ns))
        };
        capped + jitter
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// How long the breaker stays open before a half-open probe is allowed.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Per-destination circuit breaker: after `threshold` consecutive failures
/// it opens and rejects calls for `cooldown`; the first call afterwards is
/// a half-open probe — success closes the breaker, failure re-opens it.
///
/// Timestamps are [`Duration`]s read off a [`adn_wire::clock::Clock`]
/// (time since the clock's epoch), not `Instant`s, so the breaker's
/// half-open window follows virtual time under the simulator.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    consecutive_failures: u32,
    open_until: Option<Duration>,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            consecutive_failures: 0,
            open_until: None,
        }
    }

    /// Whether a call may proceed at `now` (closed, or half-open probe).
    pub fn allow(&self, now: Duration) -> bool {
        match self.open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// Whether the breaker is currently rejecting calls.
    pub fn is_open(&self, now: Duration) -> bool {
        !self.allow(now)
    }

    /// Records a successful call: closes the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
    }

    /// Records a failed call (timeout or send error); opens the breaker
    /// once the consecutive-failure threshold is reached.
    pub fn record_failure(&mut self, now: Duration) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.policy.threshold {
            self.open_until = Some(now + self.policy.cooldown);
        }
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// A bounded insertion-ordered map: the dedup window used by servers and
/// processors to recognize retransmitted requests. Oldest entries evict
/// first once `cap` is exceeded.
#[derive(Debug)]
pub struct DedupWindow<K, V> {
    cap: usize,
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Hash + Eq + Clone, V> DedupWindow<K, V> {
    /// A window retaining at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts (or replaces) an entry, evicting the oldest beyond capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let b1 = policy.backoff(1, &mut rng);
        let b4 = policy.backoff(4, &mut rng);
        let b10 = policy.backoff(10, &mut rng);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(16));
        assert!(b4 >= Duration::from_millis(80), "{b4:?}");
        // Cap plus at most 50% jitter.
        assert!(b10 <= Duration::from_millis(120), "{b10:?}");
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for i in 1..6 {
            assert_eq!(policy.backoff(i, &mut a), policy.backoff(i, &mut b));
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens() {
        let mut breaker = CircuitBreaker::new(BreakerPolicy {
            threshold: 3,
            cooldown: Duration::from_millis(50),
        });
        // Timestamps are plain durations-since-epoch, driven here in
        // controlled jumps exactly as a virtual clock would produce them.
        let t0 = Duration::from_secs(1);
        assert!(breaker.allow(t0));
        breaker.record_failure(t0);
        breaker.record_failure(t0);
        assert!(breaker.allow(t0), "below threshold stays closed");
        breaker.record_failure(t0);
        assert!(breaker.is_open(t0));
        // Half-open probe after cooldown.
        let later = t0 + Duration::from_millis(60);
        assert!(breaker.allow(later));
        // Probe failure re-opens immediately.
        breaker.record_failure(later);
        assert!(breaker.is_open(later));
        // Probe success closes.
        breaker.record_success();
        assert!(breaker.allow(later));
        assert_eq!(breaker.consecutive_failures(), 0);
    }

    #[test]
    fn breaker_half_open_window_follows_virtual_clock() {
        use adn_wire::clock::{Clock, VirtualClock};
        let clock = VirtualClock::new();
        let mut breaker = CircuitBreaker::new(BreakerPolicy {
            threshold: 1,
            cooldown: Duration::from_secs(30),
        });
        breaker.record_failure(clock.now());
        assert!(breaker.is_open(clock.now()));
        // Jump to just before the cooldown edge, then across it: the probe
        // window opens at exactly epoch + cooldown, with no wall time spent.
        clock.advance(Duration::from_secs(30) - Duration::from_nanos(1));
        assert!(breaker.is_open(clock.now()));
        clock.advance(Duration::from_nanos(1));
        assert!(breaker.allow(clock.now()), "probe allowed at the edge");
        breaker.record_failure(clock.now());
        assert!(breaker.is_open(clock.now()), "failed probe re-opens");
    }

    #[test]
    fn dedup_window_evicts_oldest() {
        let mut window: DedupWindow<u64, u64> = DedupWindow::new(3);
        for i in 0..5u64 {
            window.insert(i, i * 10);
        }
        assert_eq!(window.len(), 3);
        assert!(!window.contains(&0));
        assert!(!window.contains(&1));
        assert_eq!(window.get(&4), Some(&40));
    }

    #[test]
    fn dedup_window_replacement_keeps_size() {
        let mut window: DedupWindow<u64, &str> = DedupWindow::new(2);
        window.insert(1, "a");
        window.insert(1, "b");
        assert_eq!(window.len(), 1);
        assert_eq!(window.get(&1), Some(&"b"));
        assert!(!window.is_empty());
    }
}
