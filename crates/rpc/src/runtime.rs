//! Client/server RPC runtimes over the virtual link layer.
//!
//! The runtime realizes "Configuration 1" of the paper's Figure 2 natively:
//! engine chains run inside the RPC library on the client's egress and the
//! server's ingress. Other configurations (kernel/SmartNIC/switch offload,
//! scale-out) are realized by the `adn-dataplane` crate, which hosts chains
//! on standalone processor endpoints; this runtime stays unchanged — it just
//! addresses frames to whatever flat id the controller configured.
//!
//! A client supports many outstanding calls (the paper's workload drives 128
//! concurrent RPCs from a single thread) via [`RpcClient::send_call`] /
//! [`PendingCall::wait`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::engine::{EngineChain, Verdict};
use crate::error::{RpcError, RpcResult};
use crate::message::{MessageKind, RpcMessage, RpcStatus};
use crate::schema::ServiceSchema;
use crate::transport::{EndpointAddr, Frame, Link};
use crate::wire_format;

/// Default per-call deadline.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A server-side request handler: consumes a request, produces a response.
pub type Handler = Box<dyn FnMut(&RpcMessage) -> RpcMessage + Send>;

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// An in-flight call; resolve it with [`PendingCall::wait`].
pub struct PendingCall {
    call_id: u64,
    rx: Receiver<RpcMessage>,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
}

impl PendingCall {
    /// The correlation id of this call.
    pub fn call_id(&self) -> u64 {
        self.call_id
    }

    /// Blocks until the response arrives or `timeout` elapses. An aborted
    /// status (set by a network element or the server) becomes
    /// [`RpcError::Aborted`].
    pub fn wait(self, timeout: Duration) -> RpcResult<RpcMessage> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => match &resp.status {
                RpcStatus::Ok => Ok(resp),
                RpcStatus::Aborted { code, message } => Err(RpcError::Aborted {
                    code: *code,
                    message: message.clone(),
                }),
            },
            Err(_) => {
                self.pending.lock().remove(&self.call_id);
                Err(RpcError::Timeout {
                    call_id: self.call_id,
                })
            }
        }
    }
}

/// An RPC client endpoint with an egress/ingress engine chain.
pub struct RpcClient {
    addr: EndpointAddr,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    chain: Arc<Mutex<EngineChain>>,
    /// First-hop override: when set, frames are sent to this endpoint
    /// instead of `msg.dst` (the controller points clients at the first
    /// off-host processor of the chain; `msg.dst` keeps the logical
    /// destination for downstream routing).
    via: Mutex<Option<EndpointAddr>>,
    next_call_id: AtomicU64,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
    shutdown: Arc<AtomicBool>,
}

impl RpcClient {
    /// Creates a client at flat id `addr`, reading frames from `frames`
    /// (obtained by attaching `addr` to the fabric). Spawns the dispatcher
    /// thread that completes pending calls as responses arrive.
    pub fn new(
        addr: EndpointAddr,
        link: Arc<dyn Link>,
        frames: Receiver<Frame>,
        service: Arc<ServiceSchema>,
        chain: EngineChain,
    ) -> Arc<Self> {
        let client = Arc::new(Self {
            addr,
            link,
            service,
            chain: Arc::new(Mutex::new(chain)),
            via: Mutex::new(None),
            next_call_id: AtomicU64::new(1),
            pending: Arc::new(Mutex::new(HashMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
        });

        let dispatcher = client.clone();
        std::thread::Builder::new()
            .name(format!("rpc-client-{addr}"))
            .spawn(move || dispatcher.dispatch_loop(frames))
            .expect("spawn client dispatcher");
        client
    }

    /// This client's flat id.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// The service schema this client speaks.
    pub fn service(&self) -> &Arc<ServiceSchema> {
        &self.service
    }

    fn dispatch_loop(&self, frames: Receiver<Frame>) {
        while !self.shutdown.load(Ordering::Relaxed) {
            let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => f,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            };
            let mut msg = match wire_format::decode_message_exact(&frame.payload, &self.service) {
                Ok(m) => m,
                Err(_) => continue, // malformed frame: count and drop
            };
            if msg.kind != MessageKind::Response {
                continue;
            }
            // Ingress chain processes the response (e.g. decompression,
            // response logging) before the caller sees it.
            let verdict = self.chain.lock().process(&mut msg);
            match verdict {
                Verdict::Forward => {}
                Verdict::Drop => continue,
                Verdict::Abort { code, message } => msg.abort(code, message),
            }
            if let Some(tx) = self.pending.lock().remove(&msg.call_id) {
                let _ = tx.send(msg);
            }
        }
    }

    /// Allocates a call id.
    pub fn next_call_id(&self) -> u64 {
        self.next_call_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a call: runs the egress chain, serializes, sends. Returns the
    /// pending handle immediately so callers can pipeline many RPCs.
    ///
    /// If an egress element aborts the request, the abort is reflected
    /// locally without touching the network (the handle resolves to
    /// [`RpcError::Aborted`]). A `Drop` verdict resolves to an abort with
    /// code 14 (unavailable) — in a real network the message would vanish
    /// and the deadline would fire; resolving early keeps closed-loop
    /// workloads running.
    pub fn send_call(&self, mut msg: RpcMessage, to: EndpointAddr) -> RpcResult<PendingCall> {
        msg.call_id = self.next_call_id();
        msg.kind = MessageKind::Request;
        msg.src = self.addr;
        msg.dst = to;

        let (tx, rx) = crossbeam::channel::bounded(1);
        let handle = PendingCall {
            call_id: msg.call_id,
            rx,
            pending: self.pending.clone(),
        };

        let verdict = self.chain.lock().process(&mut msg);
        match verdict {
            Verdict::Forward => {}
            Verdict::Drop => {
                let mut aborted = msg.clone();
                aborted.kind = MessageKind::Response;
                aborted.abort(14, "dropped by network element");
                let _ = tx.send(aborted);
                return Ok(handle);
            }
            Verdict::Abort { code, message } => {
                let mut aborted = msg.clone();
                aborted.kind = MessageKind::Response;
                aborted.abort(code, message);
                let _ = tx.send(aborted);
                return Ok(handle);
            }
        }

        self.pending.lock().insert(msg.call_id, tx);
        let payload = wire_format::encode_message_to_vec(&msg)?;
        // dst may have been rewritten by an egress load balancer; the
        // frame goes to the configured first hop when one is set.
        let dst = self.via.lock().unwrap_or(msg.dst);
        self.link.send(Frame {
            src: self.addr,
            dst,
            payload,
        })?;
        Ok(handle)
    }

    /// Convenience: send one call and wait for its response.
    pub fn call(&self, msg: RpcMessage, to: EndpointAddr) -> RpcResult<RpcMessage> {
        self.send_call(msg, to)?.wait(DEFAULT_TIMEOUT)
    }

    /// Number of calls awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.pending.lock().len()
    }

    /// Swaps the engine chain (used by the controller for reconfiguration).
    pub fn install_chain(&self, chain: EngineChain) -> EngineChain {
        std::mem::replace(&mut self.chain.lock(), chain)
    }

    /// Runs `f` against the installed chain (state export/import during
    /// hot logic updates). Blocks message processing for the duration.
    pub fn with_chain<R>(&self, f: impl FnOnce(&mut EngineChain) -> R) -> R {
        f(&mut self.chain.lock())
    }

    /// Sets or clears the first-hop override for outgoing frames.
    pub fn set_via(&self, via: Option<EndpointAddr>) {
        *self.via.lock() = via;
    }

    /// Current first-hop override.
    pub fn via(&self) -> Option<EndpointAddr> {
        *self.via.lock()
    }

    /// Stops the dispatcher thread.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Handle for a running server; dropping it (or calling [`ServerHandle::stop`])
/// stops the serve loop.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    addr: EndpointAddr,
    chain: Arc<Mutex<EngineChain>>,
}

impl ServerHandle {
    /// The server's flat id.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Swaps the server's engine chain (controller reconfiguration),
    /// returning the old chain.
    pub fn install_chain(&self, chain: EngineChain) -> EngineChain {
        std::mem::replace(&mut self.chain.lock(), chain)
    }

    /// Exports the chain's per-engine state images.
    pub fn export_chain_state(&self) -> Vec<Vec<u8>> {
        self.chain.lock().export_states()
    }

    /// Runs `f` against the installed chain (state export/import during
    /// hot logic updates). Blocks request handling for the duration.
    pub fn with_chain<R>(&self, f: impl FnOnce(&mut EngineChain) -> R) -> R {
        f(&mut self.chain.lock())
    }

    /// Signals the serve loop to exit and waits for it.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Configuration for [`spawn_server`].
pub struct ServerConfig {
    /// Flat id the server answers on.
    pub addr: EndpointAddr,
    /// Service schema.
    pub service: Arc<ServiceSchema>,
    /// Ingress/egress engine chain (requests in, responses out).
    pub chain: EngineChain,
}

/// Spawns a server thread: for each incoming request frame it runs the
/// ingress chain, invokes the handler (unless the chain aborted/dropped),
/// runs the response back through the chain, and replies.
pub fn spawn_server(
    config: ServerConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
    mut handler: Handler,
) -> ServerHandle {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = shutdown.clone();
    let ServerConfig {
        addr,
        service,
        chain,
    } = config;
    let chain = Arc::new(Mutex::new(chain));
    let loop_chain = chain.clone();

    let join = std::thread::Builder::new()
        .name(format!("rpc-server-{addr}"))
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                    Ok(f) => f,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                let mut req = match wire_format::decode_message_exact(&frame.payload, &service) {
                    Ok(m) => m,
                    Err(_) => continue,
                };
                if req.kind != MessageKind::Request {
                    continue;
                }

                let mut resp = match loop_chain.lock().process(&mut req) {
                    Verdict::Forward => handler(&req),
                    Verdict::Drop => continue, // silent: caller's deadline fires
                    Verdict::Abort { code, message } => {
                        // Reflect an aborted response without running the app.
                        let method = match service.method_by_id(req.method_id) {
                            Some(m) => m,
                            None => continue,
                        };
                        let mut r = RpcMessage::response_to(&req, method.response.clone());
                        r.abort(code, message);
                        r
                    }
                };
                resp.call_id = req.call_id;
                resp.kind = MessageKind::Response;
                resp.src = addr;
                resp.dst = req.src;

                // Responses pass back through the chain (e.g. logging both
                // directions, compressing responses) unless already aborted.
                if resp.status.is_ok() {
                    match loop_chain.lock().process(&mut resp) {
                        Verdict::Forward => {}
                        Verdict::Drop => continue,
                        Verdict::Abort { code, message } => resp.abort(code, message),
                    }
                }

                let Ok(payload) = wire_format::encode_message_to_vec(&resp) else {
                    continue;
                };
                let dst = resp.dst;
                let _ = link.send(Frame {
                    src: addr,
                    dst,
                    payload,
                });
            }
        })
        .expect("spawn server thread");

    ServerHandle {
        shutdown,
        join: Some(join),
        addr,
        chain,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::engine::Engine;
    use crate::schema::{MethodDef, RpcSchema};
    use crate::transport::InProcNetwork;
    use crate::value::{Value, ValueType};

    fn echo_service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("note", ValueType::Str)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("note", ValueType::Str)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "Echo",
                vec![MethodDef {
                    id: 1,
                    name: "Echo".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    fn echo_handler(service: Arc<ServiceSchema>) -> Handler {
        Box::new(move |req: &RpcMessage| {
            let method = service.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, method.response.clone());
            resp.set("x", req.get("x").unwrap().clone());
            resp.set("note", req.get("note").unwrap().clone());
            resp
        })
    }

    fn setup(
        chain_client: EngineChain,
        chain_server: EngineChain,
    ) -> (Arc<RpcClient>, ServerHandle, Arc<ServiceSchema>) {
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());

        let server_frames = net.attach(2);
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: chain_server,
            },
            link.clone(),
            server_frames,
            echo_handler(service.clone()),
        );

        let client_frames = net.attach(1);
        let client = RpcClient::new(1, link, client_frames, service.clone(), chain_client);
        (client, server, service)
    }

    fn request(service: &ServiceSchema, x: u64) -> RpcMessage {
        let m = service.method_by_id(1).unwrap();
        RpcMessage::request(0, 1, m.request.clone())
            .with("x", x)
            .with("note", "hello")
    }

    #[test]
    fn call_roundtrips() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let resp = client.call(request(&service, 41), 2).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(41)));
        assert_eq!(resp.get("note"), Some(&Value::Str("hello".into())));
    }

    #[test]
    fn concurrent_calls_complete() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let mut handles = Vec::new();
        for i in 0..128 {
            handles.push(client.send_call(request(&service, i), 2).unwrap());
        }
        // Some calls may already have completed; just exercise the counter.
        let _ = client.outstanding();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get("x"), Some(&Value::U64(i as u64)));
        }
        assert_eq!(client.outstanding(), 0);
    }

    struct AbortAll;
    impl Engine for AbortAll {
        fn name(&self) -> &str {
            "abort_all"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                Verdict::abort_permission_denied()
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn client_egress_abort_is_local() {
        let (client, _server, service) = setup(
            EngineChain::from_engines(vec![Box::new(AbortAll)]),
            EngineChain::new(),
        );
        let err = client.call(request(&service, 1), 2).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
    }

    #[test]
    fn server_ingress_abort_reflects_to_caller() {
        let (client, _server, service) = setup(
            EngineChain::new(),
            EngineChain::from_engines(vec![Box::new(AbortAll)]),
        );
        let err = client.call(request(&service, 1), 2).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
    }

    #[test]
    fn unknown_destination_fails_fast() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let err = client.call(request(&service, 1), 999).unwrap_err();
        assert!(matches!(err, RpcError::UnknownEndpoint(999)));
    }

    struct Stamp;
    impl Engine for Stamp {
        fn name(&self) -> &str {
            "stamp"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Response {
                msg.set("note", Value::Str("stamped".into()));
            }
            Verdict::Forward
        }
    }

    #[test]
    fn client_chain_sees_responses() {
        let (client, _server, service) = setup(
            EngineChain::from_engines(vec![Box::new(Stamp)]),
            EngineChain::new(),
        );
        let resp = client.call(request(&service, 1), 2).unwrap();
        assert_eq!(resp.get("note"), Some(&Value::Str("stamped".into())));
    }

    #[test]
    fn via_overrides_frame_destination() {
        // Client targets logical dst 2 but frames detour via endpoint 9,
        // where nothing listens — the call must time out; clearing the via
        // restores direct delivery.
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        client.set_via(Some(9));
        assert_eq!(client.via(), Some(9));
        let err = match client.send_call(request(&service, 1), 2) {
            Err(e) => e,
            Ok(pending) => pending.wait(Duration::from_millis(200)).unwrap_err(),
        };
        assert!(matches!(
            err,
            RpcError::UnknownEndpoint(9) | RpcError::Timeout { .. }
        ));
        client.set_via(None);
        assert!(client.call(request(&service, 1), 2).is_ok());
    }

    #[test]
    fn install_chain_swaps_behavior() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        assert!(client.call(request(&service, 1), 2).is_ok());
        client.install_chain(EngineChain::from_engines(vec![Box::new(AbortAll)]));
        assert!(client.call(request(&service, 1), 2).is_err());
    }
}
