//! Client/server RPC runtimes over the virtual link layer.
//!
//! The runtime realizes "Configuration 1" of the paper's Figure 2 natively:
//! engine chains run inside the RPC library on the client's egress and the
//! server's ingress. Other configurations (kernel/SmartNIC/switch offload,
//! scale-out) are realized by the `adn-dataplane` crate, which hosts chains
//! on standalone processor endpoints; this runtime stays unchanged — it just
//! addresses frames to whatever flat id the controller configured.
//!
//! A client supports many outstanding calls (the paper's workload drives 128
//! concurrent RPCs from a single thread) via [`RpcClient::send_call`] /
//! [`PendingCall::wait`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adn_wire::clock::Clock;
use adn_wire::header::{OverloadContext, TraceContext};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};

use crate::engine::{EngineChain, Verdict};
use crate::error::{RpcError, RpcResult};
use crate::message::{MessageKind, RpcMessage, RpcStatus};
use crate::retry::{BreakerPolicy, CircuitBreaker, DedupWindow, DegradedMode, RetryPolicy};
use crate::schema::ServiceSchema;
use crate::transport::{EndpointAddr, Frame, Link};
use crate::wire_format;

/// Default per-call deadline.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Retransmissions a server (or processor) can recognize: entries retained
/// in the at-most-once dedup window.
pub const SERVER_DEDUP_WINDOW: usize = 4096;

/// A server-side request handler: consumes a request, produces a response.
pub type Handler = Box<dyn FnMut(&RpcMessage) -> RpcMessage + Send>;

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ClientStats {
    malformed_frames: AtomicU64,
    orphan_responses: AtomicU64,
    retries: AtomicU64,
    breaker_rejections: AtomicU64,
    fail_open_bypasses: AtomicU64,
}

/// Point-in-time copy of a client's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStatsSnapshot {
    /// Frames that failed to decode against the service schema.
    pub malformed_frames: u64,
    /// Well-formed responses with no pending call (late duplicates).
    pub orphan_responses: u64,
    /// Retransmissions performed by [`RpcClient::call_resilient`].
    pub retries: u64,
    /// Calls rejected fast because a circuit breaker was open.
    pub breaker_rejections: u64,
    /// Calls sent directly to the logical destination under fail-open.
    pub fail_open_bypasses: u64,
}

/// An in-flight call; resolve it with [`PendingCall::wait`].
pub struct PendingCall {
    call_id: u64,
    rx: Receiver<RpcMessage>,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
}

impl PendingCall {
    /// The correlation id of this call.
    pub fn call_id(&self) -> u64 {
        self.call_id
    }

    /// Blocks until the response arrives or `timeout` elapses. An aborted
    /// status (set by a network element or the server) becomes
    /// [`RpcError::Aborted`].
    pub fn wait(self, timeout: Duration) -> RpcResult<RpcMessage> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => match &resp.status {
                RpcStatus::Ok => Ok(resp),
                RpcStatus::Aborted { code, message } => Err(RpcError::Aborted {
                    code: *code,
                    message: message.clone(),
                }),
                RpcStatus::Shed => Err(RpcError::Shed {
                    call_id: resp.call_id,
                }),
            },
            Err(_) => {
                self.pending.lock().remove(&self.call_id);
                Err(RpcError::Timeout {
                    call_id: self.call_id,
                })
            }
        }
    }
}

/// An RPC client endpoint with an egress/ingress engine chain.
pub struct RpcClient {
    addr: EndpointAddr,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    chain: Arc<Mutex<EngineChain>>,
    /// First-hop override: when set, frames are sent to this endpoint
    /// instead of `msg.dst` (the controller points clients at the first
    /// off-host processor of the chain; `msg.dst` keeps the logical
    /// destination for downstream routing).
    via: Mutex<Option<EndpointAddr>>,
    next_call_id: AtomicU64,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
    shutdown: Arc<AtomicBool>,
    stats: ClientStats,
    /// Per-first-hop circuit breakers for resilient calls.
    breakers: Mutex<HashMap<EndpointAddr, CircuitBreaker>>,
    breaker_policy: Mutex<BreakerPolicy>,
    degraded: Mutex<DegradedMode>,
    retry_rng: Mutex<StdRng>,
    /// Trace-sampling rate in parts per million; 0 keeps the hot path at
    /// one atomic load + one branch. Set per-app by the controller.
    trace_ppm: AtomicU32,
    /// Time source for retry deadlines, backoffs, and breaker windows.
    /// Production clients run on the wall clock; the simulator substitutes
    /// virtual time so a 10 s deadline costs zero wall time.
    clock: Arc<dyn Clock>,
}

/// splitmix64, for deterministic per-call sampling and trace ids.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RpcClient {
    /// Creates a client at flat id `addr`, reading frames from `frames`
    /// (obtained by attaching `addr` to the fabric). Spawns the dispatcher
    /// thread that completes pending calls as responses arrive.
    pub fn new(
        addr: EndpointAddr,
        link: Arc<dyn Link>,
        frames: Receiver<Frame>,
        service: Arc<ServiceSchema>,
        chain: EngineChain,
    ) -> Arc<Self> {
        Self::with_clock(
            addr,
            link,
            frames,
            service,
            chain,
            adn_wire::clock::system(),
        )
    }

    /// [`RpcClient::new`] with an explicit time source. Deterministic tests
    /// pass a [`adn_wire::clock::VirtualClock`] and drive it in jumps.
    pub fn with_clock(
        addr: EndpointAddr,
        link: Arc<dyn Link>,
        frames: Receiver<Frame>,
        service: Arc<ServiceSchema>,
        chain: EngineChain,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        let client = Arc::new(Self {
            addr,
            link,
            service,
            chain: Arc::new(Mutex::new(chain)),
            via: Mutex::new(None),
            next_call_id: AtomicU64::new(1),
            pending: Arc::new(Mutex::new(HashMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: ClientStats::default(),
            breakers: Mutex::new(HashMap::new()),
            breaker_policy: Mutex::new(BreakerPolicy::default()),
            degraded: Mutex::new(DegradedMode::default()),
            retry_rng: Mutex::new(StdRng::seed_from_u64(addr)),
            trace_ppm: AtomicU32::new(0),
            clock,
        });

        let dispatcher = client.clone();
        std::thread::Builder::new()
            .name(format!("rpc-client-{addr}"))
            .spawn(move || dispatcher.dispatch_loop(frames))
            .expect("spawn client dispatcher");
        client
    }

    /// This client's flat id.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// The service schema this client speaks.
    pub fn service(&self) -> &Arc<ServiceSchema> {
        &self.service
    }

    fn dispatch_loop(&self, frames: Receiver<Frame>) {
        while !self.shutdown.load(Ordering::Relaxed) {
            let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => f,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            };
            let mut msg = match wire_format::decode_message_exact(&frame.payload, &self.service) {
                Ok(m) => m,
                Err(_) => {
                    self.stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if msg.kind != MessageKind::Response {
                continue;
            }
            // Ingress chain processes the response (e.g. decompression,
            // response logging) before the caller sees it.
            let verdict = self.chain.lock().process(&mut msg);
            match verdict {
                Verdict::Forward => {}
                Verdict::Drop => continue,
                Verdict::Abort { code, message } => msg.abort(code, message),
                Verdict::Shed => msg.status = RpcStatus::Shed,
            }
            match self.pending.lock().remove(&msg.call_id) {
                Some(tx) => {
                    let _ = tx.send(msg);
                }
                // No pending call: a late duplicate of an already-resolved
                // response (retransmission echo). Count and drop.
                None => {
                    self.stats.orphan_responses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Allocates a call id.
    pub fn next_call_id(&self) -> u64 {
        self.next_call_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Sets the fraction (0.0–1.0) of calls that carry an in-band trace
    /// context. The controller drives this per app.
    pub fn set_trace_sampling(&self, rate: f64) {
        let ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        self.trace_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Current trace-sampling rate as a fraction.
    pub fn trace_sampling(&self) -> f64 {
        self.trace_ppm.load(Ordering::Relaxed) as f64 / 1_000_000.0
    }

    /// Mints a root trace context for `call_id` when sampling selects it.
    /// Deterministic on (client address, call id): a retransmitted call id
    /// reuses the same trace id.
    #[inline]
    fn maybe_trace(&self, call_id: u64) -> Option<TraceContext> {
        let ppm = self.trace_ppm.load(Ordering::Relaxed);
        if ppm == 0 {
            return None;
        }
        let seed = mix64(self.addr.rotate_left(32) ^ call_id);
        if ppm >= 1_000_000 || seed % 1_000_000 < ppm as u64 {
            Some(TraceContext::root(mix64(seed)))
        } else {
            None
        }
    }

    /// Starts a call: runs the egress chain, serializes, sends. Returns the
    /// pending handle immediately so callers can pipeline many RPCs.
    ///
    /// If an egress element aborts the request, the abort is reflected
    /// locally without touching the network (the handle resolves to
    /// [`RpcError::Aborted`]). A `Drop` verdict resolves to an abort with
    /// code 14 (unavailable) — in a real network the message would vanish
    /// and the deadline would fire; resolving early keeps closed-loop
    /// workloads running.
    pub fn send_call(&self, mut msg: RpcMessage, to: EndpointAddr) -> RpcResult<PendingCall> {
        msg.call_id = self.next_call_id();
        msg.kind = MessageKind::Request;
        msg.src = self.addr;
        msg.dst = to;
        if msg.trace.is_none() {
            msg.trace = self.maybe_trace(msg.call_id);
        }

        let (tx, rx) = crossbeam::channel::bounded(1);
        let handle = PendingCall {
            call_id: msg.call_id,
            rx,
            pending: self.pending.clone(),
        };

        let verdict = self.chain.lock().process(&mut msg);
        match verdict {
            Verdict::Forward => {}
            Verdict::Drop => {
                let mut aborted = msg.clone();
                aborted.kind = MessageKind::Response;
                aborted.abort(14, "dropped by network element");
                let _ = tx.send(aborted);
                return Ok(handle);
            }
            Verdict::Abort { code, message } => {
                let mut aborted = msg.clone();
                aborted.kind = MessageKind::Response;
                aborted.abort(code, message);
                let _ = tx.send(aborted);
                return Ok(handle);
            }
            Verdict::Shed => {
                let mut shed = msg.clone();
                shed.kind = MessageKind::Response;
                shed.status = RpcStatus::Shed;
                let _ = tx.send(shed);
                return Ok(handle);
            }
        }

        self.pending.lock().insert(msg.call_id, tx);
        let payload = wire_format::encode_message_to_vec(&msg)?;
        // dst may have been rewritten by an egress load balancer; the
        // frame goes to the configured first hop when one is set.
        let dst = self.via.lock().unwrap_or(msg.dst);
        self.link.send(Frame {
            src: self.addr,
            dst,
            payload,
        })?;
        Ok(handle)
    }

    /// Convenience: send one call and wait for its response.
    pub fn call(&self, msg: RpcMessage, to: EndpointAddr) -> RpcResult<RpcMessage> {
        self.send_call(msg, to)?.wait(DEFAULT_TIMEOUT)
    }

    /// Calls with retries: the request is sent at-least-once over a lossy
    /// fabric, retransmitting on timeout with exponential backoff + jitter
    /// under `policy.deadline`. The server-side dedup window makes the
    /// retries at-most-once, so together the call is exactly-once unless the
    /// deadline expires.
    ///
    /// The egress chain runs **once**; retries retransmit the identical
    /// encoded frame (same call id), so client-side stateful elements see
    /// one logical call. A per-first-hop circuit breaker fails fast with
    /// [`RpcError::CircuitOpen`] after consecutive failures; under
    /// [`DegradedMode::FailOpen`] an open breaker instead bypasses the
    /// configured `via` hop and sends straight to the logical destination
    /// (skipping off-path chain elements for the degraded window).
    ///
    /// An [`RpcError::Aborted`] response is a definitive completion (the
    /// chain or server judged the call) and is never retried.
    pub fn call_resilient(
        &self,
        mut msg: RpcMessage,
        to: EndpointAddr,
        policy: &RetryPolicy,
    ) -> RpcResult<RpcMessage> {
        msg.call_id = self.next_call_id();
        msg.kind = MessageKind::Request;
        msg.src = self.addr;
        msg.dst = to;
        if msg.trace.is_none() {
            msg.trace = self.maybe_trace(msg.call_id);
        }
        if policy.propagate_deadline && msg.deadline.is_none() {
            msg.deadline = Some(OverloadContext::root(
                policy.deadline.as_nanos().min(u64::MAX as u128) as u64,
                policy.priority,
            ));
        }

        match self.chain.lock().process(&mut msg) {
            Verdict::Forward => {}
            Verdict::Drop => {
                return Err(RpcError::Aborted {
                    code: 14,
                    message: "dropped by network element".to_owned(),
                })
            }
            Verdict::Abort { code, message } => return Err(RpcError::Aborted { code, message }),
            Verdict::Shed => {
                return Err(RpcError::Shed {
                    call_id: msg.call_id,
                })
            }
        }
        let mut payload = wire_format::encode_message_to_vec(&msg)?;
        let configured_hop = self.via.lock().unwrap_or(msg.dst);
        let call_id = msg.call_id;
        let deadline = self.clock.now() + policy.deadline;
        let mut failures = 0u32;

        loop {
            let now = self.clock.now();
            // Each attempt carries the budget that actually remains, so
            // backoffs already spent are visible downstream: a retry's
            // budget is always strictly smaller than the original's, and a
            // dedup replay of the cached response can never refresh it.
            if msg.deadline.is_some() {
                msg.deadline = Some(OverloadContext::root(
                    deadline
                        .saturating_sub(now)
                        .as_nanos()
                        .min(u64::MAX as u128) as u64,
                    policy.priority,
                ));
                payload = wire_format::encode_message_to_vec(&msg)?;
            }
            let mut first_hop = configured_hop;
            let allowed = self
                .breakers
                .lock()
                .entry(configured_hop)
                .or_insert_with(|| CircuitBreaker::new(*self.breaker_policy.lock()))
                .allow(now);
            if !allowed {
                let fail_open = *self.degraded.lock() == DegradedMode::FailOpen;
                if fail_open && configured_hop != msg.dst {
                    self.stats
                        .fail_open_bypasses
                        .fetch_add(1, Ordering::Relaxed);
                    first_hop = msg.dst;
                } else {
                    self.stats
                        .breaker_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(RpcError::CircuitOpen {
                        endpoint: configured_hop,
                    });
                }
            }

            let (tx, rx) = crossbeam::channel::bounded(1);
            self.pending.lock().insert(call_id, tx);
            let attempt: Result<RpcMessage, Option<RpcError>> = match self.link.send(Frame {
                src: self.addr,
                dst: first_hop,
                payload: payload.clone(),
            }) {
                // A send error is a failed attempt, not a hard error: a
                // dead first hop may be replaced before the deadline.
                Err(e) => Err(Some(e)),
                Ok(()) => {
                    let wait = policy
                        .attempt_timeout
                        .min(deadline.saturating_sub(self.clock.now()));
                    rx.recv_timeout(wait).map_err(|_| None)
                }
            };
            self.pending.lock().remove(&call_id);

            match attempt {
                Ok(resp) => {
                    if first_hop == configured_hop {
                        if let Some(b) = self.breakers.lock().get_mut(&configured_hop) {
                            b.record_success();
                        }
                    }
                    return match resp.status {
                        RpcStatus::Ok => Ok(resp),
                        RpcStatus::Aborted { code, ref message } => Err(RpcError::Aborted {
                            code,
                            message: message.clone(),
                        }),
                        // An overloaded hop refused the call before running
                        // it. Definitive, like an abort: retrying into the
                        // collapse only deepens it — the caller backs off.
                        RpcStatus::Shed => Err(RpcError::Shed { call_id }),
                    };
                }
                Err(maybe_err) => {
                    failures += 1;
                    if first_hop == configured_hop {
                        if let Some(b) = self.breakers.lock().get_mut(&configured_hop) {
                            b.record_failure(self.clock.now());
                        }
                    }
                    let backoff = policy.backoff(failures, &mut self.retry_rng.lock());
                    let out_of_attempts = failures >= policy.max_attempts;
                    let out_of_budget = self.clock.now() + backoff >= deadline;
                    if out_of_attempts || out_of_budget {
                        return Err(match maybe_err {
                            Some(e) => e,
                            None if out_of_attempts => RpcError::Timeout { call_id },
                            // The deadline budget, not the attempt count,
                            // ended the call: report it as such so callers
                            // can distinguish "slow hop" from "no budget".
                            None => RpcError::Deadline { call_id },
                        });
                    }
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.clock.sleep(backoff);
                    // The pre-sleep guard reasons about the *planned*
                    // backoff; an oversleeping clock (wall-time scheduling
                    // hiccups) can still land at or past the deadline, and
                    // a zero-budget attempt would be doomed — its response
                    // wait clamps to zero. Fail fast instead of sending it.
                    if self.clock.now() >= deadline {
                        return Err(RpcError::Deadline { call_id });
                    }
                }
            }
        }
    }

    /// Point-in-time copy of this client's counters.
    pub fn stats(&self) -> ClientStatsSnapshot {
        ClientStatsSnapshot {
            malformed_frames: self.stats.malformed_frames.load(Ordering::Relaxed),
            orphan_responses: self.stats.orphan_responses.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            breaker_rejections: self.stats.breaker_rejections.load(Ordering::Relaxed),
            fail_open_bypasses: self.stats.fail_open_bypasses.load(Ordering::Relaxed),
        }
    }

    /// Replaces the circuit-breaker tuning and resets all breakers.
    pub fn set_breaker_policy(&self, policy: BreakerPolicy) {
        *self.breaker_policy.lock() = policy;
        self.breakers.lock().clear();
    }

    /// Sets the behavior toward destinations whose breaker is open.
    pub fn set_degraded_mode(&self, mode: DegradedMode) {
        *self.degraded.lock() = mode;
    }

    /// Current degraded-window behavior.
    pub fn degraded_mode(&self) -> DegradedMode {
        *self.degraded.lock()
    }

    /// Whether the breaker toward `endpoint` is currently rejecting calls.
    pub fn breaker_open(&self, endpoint: EndpointAddr) -> bool {
        self.breakers
            .lock()
            .get(&endpoint)
            .is_some_and(|b| b.is_open(self.clock.now()))
    }

    /// Number of calls awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.pending.lock().len()
    }

    /// Swaps the engine chain (used by the controller for reconfiguration).
    pub fn install_chain(&self, chain: EngineChain) -> EngineChain {
        std::mem::replace(&mut self.chain.lock(), chain)
    }

    /// Runs `f` against the installed chain (state export/import during
    /// hot logic updates). Blocks message processing for the duration.
    pub fn with_chain<R>(&self, f: impl FnOnce(&mut EngineChain) -> R) -> R {
        f(&mut self.chain.lock())
    }

    /// Sets or clears the first-hop override for outgoing frames.
    pub fn set_via(&self, via: Option<EndpointAddr>) {
        *self.via.lock() = via;
    }

    /// Current first-hop override.
    pub fn via(&self) -> Option<EndpointAddr> {
        *self.via.lock()
    }

    /// Stops the dispatcher thread.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ServerStats {
    handled: AtomicU64,
    malformed_frames: AtomicU64,
    dedup_hits: AtomicU64,
    expired_drops: AtomicU64,
    shed: AtomicU64,
}

/// Point-in-time copy of a server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Requests that reached the handler (each logical call at most once).
    pub handled: u64,
    /// Frames that failed to decode against the service schema.
    pub malformed_frames: u64,
    /// Retransmitted requests answered from the dedup window without
    /// re-running the chain or the handler.
    pub dedup_hits: u64,
    /// Requests dropped before the chain because their propagated deadline
    /// budget was already exhausted (the caller gave up).
    pub expired_drops: u64,
    /// Requests refused with a fast-fail [`RpcStatus::Shed`] response by a
    /// chain shed verdict.
    pub shed: u64,
}

/// Handle for a running server; dropping it (or calling [`ServerHandle::stop`])
/// stops the serve loop.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    addr: EndpointAddr,
    chain: Arc<Mutex<EngineChain>>,
    stats: Arc<ServerStats>,
}

impl ServerHandle {
    /// The server's flat id.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Point-in-time copy of this server's counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            handled: self.stats.handled.load(Ordering::Relaxed),
            malformed_frames: self.stats.malformed_frames.load(Ordering::Relaxed),
            dedup_hits: self.stats.dedup_hits.load(Ordering::Relaxed),
            expired_drops: self.stats.expired_drops.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
        }
    }

    /// Swaps the server's engine chain (controller reconfiguration),
    /// returning the old chain.
    pub fn install_chain(&self, chain: EngineChain) -> EngineChain {
        std::mem::replace(&mut self.chain.lock(), chain)
    }

    /// Exports the chain's per-engine state images.
    pub fn export_chain_state(&self) -> Vec<Vec<u8>> {
        self.chain.lock().export_states()
    }

    /// Runs `f` against the installed chain (state export/import during
    /// hot logic updates). Blocks request handling for the duration.
    pub fn with_chain<R>(&self, f: impl FnOnce(&mut EngineChain) -> R) -> R {
        f(&mut self.chain.lock())
    }

    /// Signals the serve loop to exit and waits for it.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Configuration for [`spawn_server`].
pub struct ServerConfig {
    /// Flat id the server answers on.
    pub addr: EndpointAddr,
    /// Service schema.
    pub service: Arc<ServiceSchema>,
    /// Ingress/egress engine chain (requests in, responses out).
    pub chain: EngineChain,
}

/// Spawns a server thread: for each incoming request frame it runs the
/// ingress chain, invokes the handler (unless the chain aborted/dropped),
/// runs the response back through the chain, and replies.
///
/// Retransmitted requests — same (src, call id) within the dedup window —
/// are answered by replaying the cached response frame without re-running
/// the chain or the handler, so resilient-client retries are at-most-once
/// even through stateful elements.
pub fn spawn_server(
    config: ServerConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
    mut handler: Handler,
) -> ServerHandle {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = shutdown.clone();
    let ServerConfig {
        addr,
        service,
        chain,
    } = config;
    let chain = Arc::new(Mutex::new(chain));
    let loop_chain = chain.clone();
    let stats = Arc::new(ServerStats::default());
    let loop_stats = stats.clone();

    let join = std::thread::Builder::new()
        .name(format!("rpc-server-{addr}"))
        .spawn(move || {
            // (requester, call id) → cached outbound frame; `None` records
            // a Drop verdict so retransmissions stay silently dropped.
            let mut dedup: DedupWindow<(EndpointAddr, u64), Option<Frame>> =
                DedupWindow::new(SERVER_DEDUP_WINDOW);
            while !stop.load(Ordering::Relaxed) {
                let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                    Ok(f) => f,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                let mut req = match wire_format::decode_message_exact(&frame.payload, &service) {
                    Ok(m) => m,
                    Err(_) => {
                        loop_stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };
                if req.kind != MessageKind::Request {
                    continue;
                }
                let dedup_key = (req.src, req.call_id);
                if let Some(cached) = dedup.get(&dedup_key) {
                    loop_stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(reply) = cached {
                        let _ = link.send(reply.clone());
                    }
                    continue;
                }
                // The caller already gave up on this work: executing it
                // wastes capacity exactly when capacity matters most.
                // Counted, never silent — and not cached, so a (pointless)
                // retry of the same id is judged afresh.
                if req.deadline.as_ref().is_some_and(|d| d.expired()) {
                    loop_stats.expired_drops.fetch_add(1, Ordering::Relaxed);
                    continue;
                }

                let mut resp = match loop_chain.lock().process(&mut req) {
                    Verdict::Forward => {
                        loop_stats.handled.fetch_add(1, Ordering::Relaxed);
                        handler(&req)
                    }
                    Verdict::Drop => {
                        // Silent: caller's deadline fires. Remember the
                        // verdict so retries don't re-run the chain.
                        dedup.insert(dedup_key, None);
                        continue;
                    }
                    Verdict::Abort { code, message } => {
                        // Reflect an aborted response without running the app.
                        let method = match service.method_by_id(req.method_id) {
                            Some(m) => m,
                            None => {
                                dedup.insert(dedup_key, None);
                                continue;
                            }
                        };
                        let mut r = RpcMessage::response_to(&req, method.response.clone());
                        r.abort(code, message);
                        r
                    }
                    Verdict::Shed => {
                        // Fast-fail refusal, pre-execution. Not cached: the
                        // request never ran, so a later retry is a fresh
                        // admission decision.
                        loop_stats.shed.fetch_add(1, Ordering::Relaxed);
                        let Some(method) = service.method_by_id(req.method_id) else {
                            continue;
                        };
                        let mut r = RpcMessage::response_to(&req, method.response.clone());
                        r.status = RpcStatus::Shed;
                        r.src = addr;
                        r.dst = req.src;
                        if let Ok(payload) = wire_format::encode_message_to_vec(&r) {
                            let _ = link.send(Frame {
                                src: addr,
                                dst: r.dst,
                                payload,
                            });
                        }
                        continue;
                    }
                };
                resp.call_id = req.call_id;
                resp.kind = MessageKind::Response;
                resp.src = addr;
                resp.dst = req.src;

                // Responses pass back through the chain (e.g. logging both
                // directions, compressing responses) unless already aborted.
                if resp.status.is_ok() {
                    match loop_chain.lock().process(&mut resp) {
                        Verdict::Forward => {}
                        Verdict::Drop => {
                            dedup.insert(dedup_key, None);
                            continue;
                        }
                        Verdict::Abort { code, message } => resp.abort(code, message),
                        Verdict::Shed => resp.status = RpcStatus::Shed,
                    }
                }

                let Ok(payload) = wire_format::encode_message_to_vec(&resp) else {
                    dedup.insert(dedup_key, None);
                    continue;
                };
                let reply = Frame {
                    src: addr,
                    dst: resp.dst,
                    payload,
                };
                dedup.insert(dedup_key, Some(reply.clone()));
                let _ = link.send(reply);
            }
        })
        .expect("spawn server thread");

    ServerHandle {
        shutdown,
        join: Some(join),
        addr,
        chain,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::engine::Engine;
    use crate::schema::{MethodDef, RpcSchema};
    use crate::transport::InProcNetwork;
    use crate::value::{Value, ValueType};

    fn echo_service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("note", ValueType::Str)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("x", ValueType::U64)
                .field("note", ValueType::Str)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "Echo",
                vec![MethodDef {
                    id: 1,
                    name: "Echo".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    fn echo_handler(service: Arc<ServiceSchema>) -> Handler {
        Box::new(move |req: &RpcMessage| {
            let method = service.method_by_id(req.method_id).unwrap();
            let mut resp = RpcMessage::response_to(req, method.response.clone());
            resp.set("x", req.get("x").unwrap().clone());
            resp.set("note", req.get("note").unwrap().clone());
            resp
        })
    }

    fn setup(
        chain_client: EngineChain,
        chain_server: EngineChain,
    ) -> (Arc<RpcClient>, ServerHandle, Arc<ServiceSchema>) {
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());

        let server_frames = net.attach(2);
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: chain_server,
            },
            link.clone(),
            server_frames,
            echo_handler(service.clone()),
        );

        let client_frames = net.attach(1);
        let client = RpcClient::new(1, link, client_frames, service.clone(), chain_client);
        (client, server, service)
    }

    fn request(service: &ServiceSchema, x: u64) -> RpcMessage {
        let m = service.method_by_id(1).unwrap();
        RpcMessage::request(0, 1, m.request.clone())
            .with("x", x)
            .with("note", "hello")
    }

    #[test]
    fn call_roundtrips() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let resp = client.call(request(&service, 41), 2).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(41)));
        assert_eq!(resp.get("note"), Some(&Value::Str("hello".into())));
    }

    #[test]
    fn concurrent_calls_complete() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let mut handles = Vec::new();
        for i in 0..128 {
            handles.push(client.send_call(request(&service, i), 2).unwrap());
        }
        // Some calls may already have completed; just exercise the counter.
        let _ = client.outstanding();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get("x"), Some(&Value::U64(i as u64)));
        }
        assert_eq!(client.outstanding(), 0);
    }

    struct AbortAll;
    impl Engine for AbortAll {
        fn name(&self) -> &str {
            "abort_all"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                Verdict::abort_permission_denied()
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn client_egress_abort_is_local() {
        let (client, _server, service) = setup(
            EngineChain::from_engines(vec![Box::new(AbortAll)]),
            EngineChain::new(),
        );
        let err = client.call(request(&service, 1), 2).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
    }

    #[test]
    fn server_ingress_abort_reflects_to_caller() {
        let (client, _server, service) = setup(
            EngineChain::new(),
            EngineChain::from_engines(vec![Box::new(AbortAll)]),
        );
        let err = client.call(request(&service, 1), 2).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
    }

    #[test]
    fn unknown_destination_fails_fast() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        let err = client.call(request(&service, 1), 999).unwrap_err();
        assert!(matches!(err, RpcError::UnknownEndpoint(999)));
    }

    struct Stamp;
    impl Engine for Stamp {
        fn name(&self) -> &str {
            "stamp"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Response {
                msg.set("note", Value::Str("stamped".into()));
            }
            Verdict::Forward
        }
    }

    #[test]
    fn client_chain_sees_responses() {
        let (client, _server, service) = setup(
            EngineChain::from_engines(vec![Box::new(Stamp)]),
            EngineChain::new(),
        );
        let resp = client.call(request(&service, 1), 2).unwrap();
        assert_eq!(resp.get("note"), Some(&Value::Str("stamped".into())));
    }

    #[test]
    fn via_overrides_frame_destination() {
        // Client targets logical dst 2 but frames detour via endpoint 9,
        // where nothing listens — the call must time out; clearing the via
        // restores direct delivery.
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        client.set_via(Some(9));
        assert_eq!(client.via(), Some(9));
        let err = match client.send_call(request(&service, 1), 2) {
            Err(e) => e,
            Ok(pending) => pending.wait(Duration::from_millis(200)).unwrap_err(),
        };
        assert!(matches!(
            err,
            RpcError::UnknownEndpoint(9) | RpcError::Timeout { .. }
        ));
        client.set_via(None);
        assert!(client.call(request(&service, 1), 2).is_ok());
    }

    #[test]
    fn install_chain_swaps_behavior() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        assert!(client.call(request(&service, 1), 2).is_ok());
        client.install_chain(EngineChain::from_engines(vec![Box::new(AbortAll)]));
        assert!(client.call(request(&service, 1), 2).is_err());
    }

    #[test]
    fn malformed_frames_are_counted_and_dropped() {
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            echo_handler(service.clone()),
        );
        let client = RpcClient::new(1, link, net.attach(1), service.clone(), EngineChain::new());

        // Garbage frames at both endpoints, before any real traffic.
        net.send(Frame {
            src: 9,
            dst: 2,
            payload: vec![0xde, 0xad],
        })
        .unwrap();
        net.send(Frame {
            src: 9,
            dst: 1,
            payload: vec![0xbe, 0xef],
        })
        .unwrap();

        // Frames are consumed in order, so once this call completes both
        // loops have seen (and survived) the garbage.
        let resp = client.call(request(&service, 1), 2).unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(1)));
        assert_eq!(server.stats().malformed_frames, 1);
        assert_eq!(server.stats().handled, 1);
        assert_eq!(client.stats().malformed_frames, 1);
    }

    #[test]
    fn resilient_call_retries_through_drops() {
        use crate::chaos::{ChaosLink, ChaosPolicy};
        let net = InProcNetwork::new();
        let service = echo_service();
        let chaos = ChaosLink::with_policy(Arc::new(net.clone()), 11, ChaosPolicy::drops(0.4));
        let link: Arc<dyn Link> = chaos;
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            echo_handler(service.clone()),
        );
        let client = RpcClient::new(1, link, net.attach(1), service.clone(), EngineChain::new());
        // Heavy sustained loss trips the default breaker by design; this
        // test is about retries, so make the breaker tolerant.
        client.set_breaker_policy(BreakerPolicy {
            threshold: 1000,
            cooldown: Duration::from_millis(10),
        });
        let policy = RetryPolicy {
            max_attempts: 32,
            attempt_timeout: Duration::from_millis(100),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(30),
            ..Default::default()
        };
        for i in 0..30u64 {
            let resp = client
                .call_resilient(request(&service, i), 2, &policy)
                .unwrap();
            assert_eq!(resp.get("x"), Some(&Value::U64(i)));
        }
        assert!(client.stats().retries > 0, "40% drops must force retries");
    }

    #[test]
    fn server_dedup_prevents_duplicate_side_effects() {
        use crate::chaos::{ChaosLink, ChaosPolicy};
        use std::sync::atomic::AtomicU64;
        let net = InProcNetwork::new();
        let service = echo_service();
        // Every frame delivered twice, both directions.
        let chaos = ChaosLink::with_policy(Arc::new(net.clone()), 3, ChaosPolicy::duplicates(1.0));
        let link: Arc<dyn Link> = chaos;
        let effects = Arc::new(AtomicU64::new(0));
        let handler_effects = effects.clone();
        let handler_service = service.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |req| {
                handler_effects.fetch_add(1, Ordering::Relaxed);
                let m = handler_service.method_by_id(req.method_id).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("x", req.get("x").unwrap().clone());
                resp.set("note", req.get("note").unwrap().clone());
                resp
            }),
        );
        let client = RpcClient::new(1, link, net.attach(1), service.clone(), EngineChain::new());
        for i in 0..30u64 {
            client.call(request(&service, i), 2).unwrap();
        }
        assert_eq!(
            effects.load(Ordering::Relaxed),
            30,
            "duplicated requests must not re-run the handler"
        );
        assert!(server.stats().dedup_hits >= 1);
    }

    #[test]
    fn sampled_calls_carry_trace_end_to_end() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        assert_eq!(client.trace_sampling(), 0.0);
        let resp = client.call(request(&service, 1), 2).unwrap();
        assert_eq!(resp.trace, None, "sampling off: no context on the wire");

        client.set_trace_sampling(1.0);
        assert_eq!(client.trace_sampling(), 1.0);
        let resp = client.call(request(&service, 2), 2).unwrap();
        let ctx = resp.trace.expect("sampled call echoes its trace context");
        assert_eq!(ctx.parent_span, 0);
        assert!(ctx.budget);

        // Distinct calls get distinct trace ids.
        let again = client.call(request(&service, 3), 2).unwrap();
        assert_ne!(again.trace.unwrap().trace_id, ctx.trace_id);
    }

    #[test]
    fn resilient_call_does_not_retry_aborts() {
        let (client, _server, service) = setup(
            EngineChain::new(),
            EngineChain::from_engines(vec![Box::new(AbortAll)]),
        );
        let err = client
            .call_resilient(request(&service, 1), 2, &RetryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
        assert_eq!(client.stats().retries, 0, "aborts are definitive");
    }

    #[test]
    fn breaker_opens_and_fail_open_bypasses_via() {
        let (client, _server, service) = setup(EngineChain::new(), EngineChain::new());
        client.set_breaker_policy(BreakerPolicy {
            threshold: 2,
            cooldown: Duration::from_secs(60),
        });
        // Point the first hop at a dead endpoint: sends fail fast.
        client.set_via(Some(9));
        let policy = RetryPolicy {
            max_attempts: 2,
            attempt_timeout: Duration::from_millis(50),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(1),
            ..Default::default()
        };
        let err = client
            .call_resilient(request(&service, 1), 2, &policy)
            .unwrap_err();
        assert!(matches!(err, RpcError::UnknownEndpoint(9)));
        assert!(client.breaker_open(9), "two failures reach the threshold");

        // Fail-closed (default): the next call is rejected without touching
        // the network.
        let err = client
            .call_resilient(request(&service, 2), 2, &policy)
            .unwrap_err();
        assert!(matches!(err, RpcError::CircuitOpen { endpoint: 9 }));
        assert!(client.stats().breaker_rejections >= 1);

        // Fail-open: bypass the dead via and reach the logical destination.
        client.set_degraded_mode(DegradedMode::FailOpen);
        let resp = client
            .call_resilient(request(&service, 3), 2, &policy)
            .unwrap();
        assert_eq!(resp.get("x"), Some(&Value::U64(3)));
        assert!(client.stats().fail_open_bypasses >= 1);
    }

    #[test]
    fn propagated_deadline_reaches_server_and_echoes_back() {
        use adn_wire::header::Priority;
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let seen = Arc::new(Mutex::new(None));
        let handler_seen = seen.clone();
        let handler_service = service.clone();
        let _server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |req| {
                *handler_seen.lock() = req.deadline;
                let m = handler_service.method_by_id(req.method_id).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("x", req.get("x").unwrap().clone());
                resp.set("note", req.get("note").unwrap().clone());
                resp
            }),
        );
        let client = RpcClient::new(1, link, net.attach(1), service.clone(), EngineChain::new());
        let policy = RetryPolicy {
            deadline: Duration::from_secs(3),
            propagate_deadline: true,
            priority: Priority::Important,
            ..Default::default()
        };
        let resp = client
            .call_resilient(request(&service, 1), 2, &policy)
            .unwrap();
        let ctx = seen.lock().expect("server saw the overload context");
        assert_eq!(ctx.priority, Priority::Important);
        assert!(ctx.budget_ns > 0 && ctx.budget_ns <= 3_000_000_000);
        assert_eq!(resp.deadline, Some(ctx), "response echoes the context");

        // Default policy: nothing stamped, nothing echoed.
        let resp = client
            .call_resilient(request(&service, 2), 2, &RetryPolicy::default())
            .unwrap();
        assert_eq!(resp.deadline, None);
    }

    #[test]
    fn exhausted_budget_after_backoff_fails_fast_without_doomed_attempt() {
        use adn_wire::clock::VirtualClock;
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let clock = VirtualClock::shared();
        let client = RpcClient::with_clock(
            1,
            link,
            net.attach(1),
            service.clone(),
            EngineChain::new(),
            clock.clone(),
        );
        // Attach the destination so sends succeed, but serve nothing: every
        // attempt ends in a response timeout (1 ms wall each; the virtual
        // deadline budget is consumed by the 300–450 ms virtual backoffs).
        let _sink = net.attach(2);
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            attempt_timeout: Duration::from_millis(1),
            base_backoff: Duration::from_millis(300),
            max_backoff: Duration::from_millis(300),
            deadline: Duration::from_millis(1000),
            ..Default::default()
        };
        let err = client
            .call_resilient(request(&service, 1), 2, &policy)
            .unwrap_err();
        // Backoffs land at 300–450, 600–900, 900–1350 ms of virtual time:
        // once the next backoff would cross the 1000 ms budget, the loop
        // must fail fast with Deadline — not Timeout, and never a doomed
        // zero-wait attempt issued past the deadline.
        assert!(matches!(err, RpcError::Deadline { .. }), "{err:?}");
        assert!(client.stats().retries >= 1, "at least one real retry ran");
        assert!(
            clock.now() < Duration::from_millis(1000),
            "no attempt may start at or past the deadline: {:?}",
            clock.now()
        );
    }

    #[test]
    fn server_drops_expired_requests_before_the_chain() {
        use adn_wire::header::Priority;
        use std::sync::atomic::AtomicU64;
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let effects = Arc::new(AtomicU64::new(0));
        let handler_effects = effects.clone();
        let handler_service = service.clone();
        let server = spawn_server(
            ServerConfig {
                addr: 2,
                service: service.clone(),
                chain: EngineChain::new(),
            },
            link.clone(),
            net.attach(2),
            Box::new(move |req| {
                handler_effects.fetch_add(1, Ordering::Relaxed);
                let m = handler_service.method_by_id(req.method_id).unwrap();
                RpcMessage::response_to(req, m.response.clone())
            }),
        );
        // Hand-build an already-expired request frame.
        let mut msg = request(&service, 1);
        msg.call_id = 7;
        msg.src = 1;
        msg.dst = 2;
        msg.deadline = Some(OverloadContext::root(0, Priority::Normal));
        let payload = wire_format::encode_message_to_vec(&msg).unwrap();
        net.send(Frame {
            src: 1,
            dst: 2,
            payload,
        })
        .unwrap();
        // A live request afterwards proves the loop processed both.
        let client = RpcClient::new(1, link, net.attach(1), service.clone(), EngineChain::new());
        client.call(request(&service, 2), 2).unwrap();
        assert_eq!(effects.load(Ordering::Relaxed), 1, "expired never ran");
        assert_eq!(server.stats().expired_drops, 1);
    }

    struct ShedAll;
    impl Engine for ShedAll {
        fn name(&self) -> &str {
            "shed_all"
        }
        fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
            if msg.kind == MessageKind::Request {
                Verdict::Shed
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn shed_verdict_fast_fails_without_retries() {
        let (client, server, service) = setup(
            EngineChain::new(),
            EngineChain::from_engines(vec![Box::new(ShedAll)]),
        );
        let err = client
            .call_resilient(request(&service, 1), 2, &RetryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, RpcError::Shed { .. }), "{err:?}");
        assert_eq!(client.stats().retries, 0, "shed is definitive");
        assert_eq!(server.stats().shed, 1);
        assert_eq!(server.stats().handled, 0);
    }

    #[test]
    fn retry_deadline_and_backoff_follow_virtual_clock() {
        use adn_wire::clock::VirtualClock;
        let net = InProcNetwork::new();
        let service = echo_service();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let clock = VirtualClock::shared();
        let frames = net.attach(1);
        let client = RpcClient::with_clock(
            1,
            link,
            frames,
            service.clone(),
            EngineChain::new(),
            clock.clone(),
        );
        // Dead first hop: every attempt fails at the send, so no wall-clock
        // response wait happens and every timed quantity — the backoffs and
        // the overall deadline — runs on the virtual clock.
        client.set_via(Some(9));
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            attempt_timeout: Duration::from_secs(1),
            base_backoff: Duration::from_secs(10),
            max_backoff: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            ..Default::default()
        };
        let wall = std::time::Instant::now();
        let err = client
            .call_resilient(request(&service, 1), 2, &policy)
            .unwrap_err();
        assert!(matches!(err, RpcError::UnknownEndpoint(9)));
        // Backoff sleeps advanced virtual time past the 60 s deadline
        // (10–15 s per retry with jitter) without real sleeping.
        assert!(clock.now() >= Duration::from_secs(40), "{:?}", clock.now());
        assert!(clock.now() < Duration::from_secs(80), "{:?}", clock.now());
        assert!(client.stats().retries >= 3);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "a 60 s virtual deadline must not consume wall time"
        );
    }
}
